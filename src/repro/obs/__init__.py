"""Observability: the metrics registry and tracing spans.

The telemetry spine threaded through the engine ladder and the serving
stack (full tour: the "Observability" section of
``docs/ARCHITECTURE.md``):

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket latency
  histograms; per-worker registries snapshot to picklable data, merge
  bucket-wise (:func:`merge_snapshots`) and render as Prometheus text
  exposition (:func:`render_prometheus`) for ``GET /metrics``;
* :class:`Tracer` — context-manager spans forming per-request trees,
  exportable as JSON (``repro serve --trace FILE``); disabled tracers
  cost roughly one attribute check per stage.

Both are dependency-free and always-on-capable: every instrumented
component defaults to the shared :data:`NULL_REGISTRY` /
:data:`NULL_TRACER` no-ops, so telemetry is opt-in per component but
never needs conditional code at call sites.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Ewma,
    MetricsRegistry,
    NULL_REGISTRY,
    merge_snapshots,
    quantile_from_buckets,
    render_prometheus,
)
from .trace import NULL_TRACER, Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Ewma",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "merge_snapshots",
    "quantile_from_buckets",
    "render_prometheus",
]
