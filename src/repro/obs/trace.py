"""Lightweight tracing spans: per-request trees, JSON-exportable.

A :class:`Tracer` hands out context-manager spans that nest through a
thread-local stack; whatever closes with no parent becomes a *root*
and is retained (bounded) for export.  The serving layer wraps each
request and its stages (prepare → ground → compile → sweep …) so a
trace shows exactly which tier absorbed which request and where the
time went::

    tracer = Tracer(enabled=True)
    with tracer.span("evaluate", shape="R(v0), S(v0, v1)"):
        with tracer.span("ground"):
            ...
    tracer.export()   # [{"name": "evaluate", "seconds": ..., ...}]

The disabled path is the default and is near-free: ``span()`` returns
one shared no-op object after a single attribute check, so permanent
instrumentation costs ~an attribute load + call per stage when tracing
is off (``NULL_TRACER`` is the module-wide disabled instance).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["NULL_TRACER", "Span", "Tracer"]


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def annotate(self, **attributes) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One timed, named region with attributes and child spans."""

    __slots__ = ("name", "attributes", "start", "end", "children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self.end = 0.0
        self.children: List["Span"] = []

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def annotate(self, **attributes) -> None:
        """Attach attributes after the fact (e.g. the chosen tier)."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.end = time.perf_counter()
        self._tracer._pop(self)

    def to_dict(self) -> dict:
        """JSON-ready representation of this span's subtree."""
        out: Dict[str, object] = {
            "name": self.name,
            "seconds": round(self.seconds, 9),
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f} ms)"


class Tracer:
    """Hands out spans; retains finished root spans for export.

    Args:
        enabled: when False (the cheap default), :meth:`span` returns
            a shared no-op immediately.
        max_roots: bound on retained root spans — tracing a long
            serving run must not grow memory without limit; oldest
            roots are dropped first.
    """

    def __init__(self, enabled: bool = False, max_roots: int = 1024) -> None:
        if max_roots <= 0:
            raise ValueError(f"max_roots must be positive, got {max_roots}")
        self.enabled = enabled
        self.roots: Deque[Span] = deque(maxlen=max_roots)
        self._local = threading.local()
        self._lock = threading.Lock()

    def span(self, name: str, **attributes):
        """A context manager timing one named region.

        Spans opened while another span of the same thread is active
        become its children; a span closing with no parent is a root
        and is retained for :meth:`export`.
        """
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attributes)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate exotic exits (a span closed out of order drops the
        # frames above it) — tracing must never take the request down.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    def export(self) -> List[dict]:
        """JSON-ready list of retained root span trees (oldest first)."""
        with self._lock:
            return [span.to_dict() for span in self.roots]

    def clear(self) -> None:
        with self._lock:
            self.roots.clear()


#: The shared disabled tracer — default for instrumented components.
NULL_TRACER = Tracer(enabled=False)
