"""A dependency-free metrics registry: counters, gauges, histograms.

The telemetry spine of the serving stack.  Three metric kinds, all
labeled, all thread-safe, all *mergeable* — a worker process snapshots
its registry as plain picklable data, the pool folds worker snapshots
together bucket-wise, and the HTTP front renders the merged snapshot
in Prometheus text exposition format for ``GET /metrics``:

* :class:`Counter` — monotone event counts (requests by tier, fallback
  reasons, samples drawn);
* :class:`Gauge` — a settable level (in-flight requests, the last
  Monte Carlo interval half-width);
* :class:`Histogram` — fixed-bucket latency distributions.  Buckets
  are cumulative-on-render (Prometheus ``le`` semantics) but stored as
  per-bucket counts so that merging two histograms is an element-wise
  sum — associative and commutative, which is what lets per-worker
  histograms aggregate into pool-level ones in any order.  p50/p95/p99
  come from linear interpolation inside the owning bucket
  (:meth:`Histogram.quantile`).

Design constraints, in order: no third-party dependencies, cheap
enough to leave on in production (one lock acquisition per event), and
a disabled mode (``MetricsRegistry(enabled=False)``) whose metric
handles are shared no-ops — the knob ``benchmarks/bench_obs.py`` uses
to pin the instrumentation overhead.

>>> registry = MetricsRegistry()
>>> requests = registry.counter("demo_requests_total", "requests", ("tier",))
>>> requests.labels("safe-plan").inc()
>>> requests.labels("safe-plan").inc(2)
>>> latency = registry.histogram("demo_seconds", "latency")
>>> for ms in (1, 2, 3, 4):
...     latency.observe(ms / 1000.0)
>>> print(render_prometheus(registry.snapshot()).splitlines()[2])
demo_requests_total{tier="safe-plan"} 3
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Ewma",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
    "render_prometheus",
]

#: Default latency buckets (seconds): 100µs to 10s, roughly 1-2.5-5
#: per decade.  Chosen to straddle the stack's bimodal costs — safe
#: plans in the sub-millisecond range, compiled evaluations around
#: milliseconds, Monte Carlo fallbacks from tens of milliseconds up.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Ewma:
    """An exponentially weighted moving average, optionally seeded.

    The serving stack's smoothing primitive: the pool's adaptive
    scatter cost model and the overload detector both track noisy
    per-batch measurements through one of these.  ``observe`` folds a
    sample in and returns the new level; an unseeded average snaps to
    its first sample instead of warming up from zero (a queue-wait
    average that spent its first hundred batches climbing from 0.0
    would mask a cold-start overload).

    Not a registry metric (it has no labels and doesn't render); gauge
    the ``.value`` if it should be scraped.

    >>> average = Ewma(alpha=0.5)
    >>> average.observe(1.0)
    1.0
    >>> average.observe(0.0)
    0.5
    """

    __slots__ = ("alpha", "value", "_seeded")

    def __init__(self, alpha: float = 0.2,
                 initial: Optional[float] = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value = 0.0 if initial is None else float(initial)
        self._seeded = initial is not None

    def observe(self, sample: float) -> float:
        if self._seeded:
            self.value += self.alpha * (sample - self.value)
        else:
            self.value = float(sample)
            self._seeded = True
        return self.value


class Counter:
    """One monotone counter (a single labeled child of a family)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A settable level; ``inc``/``dec`` for tracked quantities."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """A fixed-bucket histogram with mergeable per-bucket counts.

    ``bounds`` are the finite bucket upper bounds (inclusive, sorted
    strictly increasing); one extra overflow bucket catches everything
    above the last bound (rendered as ``le="+Inf"``).
    """

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"bucket bounds must be non-empty and strictly "
                f"increasing, got {bounds}"
            )
        self._lock = threading.Lock()
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by in-bucket interpolation.

        Values in the overflow bucket are reported as the last finite
        bound (the estimate saturates there — fixed buckets cannot see
        beyond their range).  Returns ``nan`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self.counts)
            total = self.count
        if total == 0:
            return math.nan
        target = q * total
        cumulative = 0.0
        lower = 0.0
        for index, count in enumerate(counts):
            upper = (
                self.bounds[index]
                if index < len(self.bounds)
                else self.bounds[-1]
            )
            if count and cumulative + count >= target:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                fraction = (target - cumulative) / count
                return lower + fraction * (upper - lower)
            cumulative += count
            lower = upper
        return self.bounds[-1]


class _NullMetric:
    """Shared no-op child for a disabled registry — every mutator is a
    constant-time method on one singleton, so instrumented code paths
    cost a dictionary-free call when telemetry is off."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, *values) -> "_NullMetric":
        return self


_NULL_METRIC = _NullMetric()

_KINDS = {"counter": Counter, "gauge": Gauge}


class MetricFamily:
    """A named metric with a fixed label set and one child per value
    combination.  Unlabeled families proxy straight to their single
    child, so ``family.inc()`` / ``family.observe(x)`` just work."""

    __slots__ = (
        "kind", "name", "help", "labelnames", "buckets", "_children", "_lock",
    )

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, *values) -> object:
        key = tuple(str(value) for value in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {key}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "histogram":
                        child = Histogram(self.buckets)
                    else:
                        child = _KINDS[self.kind]()
                    self._children[key] = child
        return child

    # Unlabeled convenience passthroughs ------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def quantile(self, q: float) -> float:
        return self.labels().quantile(q)


class MetricsRegistry:
    """A process-local collection of metric families.

    ``enabled=False`` returns shared no-op handles from every factory
    method and snapshots to an empty dict — instrumented code does not
    need to branch on whether telemetry is on.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family("counter", name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family("gauge", name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(
            "histogram", name, help_text, labelnames, tuple(buckets)
        )

    def _family(
        self,
        kind: str,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (
                    family.kind != kind
                    or family.labelnames != labelnames
                    or family.buckets != buckets
                ):
                    raise ValueError(
                        f"metric {name!r} re-registered with a different "
                        f"kind/labels/buckets"
                    )
                return family
            family = MetricFamily(kind, name, help_text, labelnames, buckets)
            self._families[name] = family
            return family

    def snapshot(self) -> dict:
        """A plain picklable copy of every family's current values.

        The shape is the merge/render interchange format::

            {name: {"kind": ..., "help": ..., "labels": (...),
                    "buckets": (...) | None,
                    "values": {labelvalues: number | histogram-dict}}}
        """
        out: dict = {}
        for name, family in list(self._families.items()):
            values: dict = {}
            for key, child in list(family._children.items()):
                if family.kind == "histogram":
                    with child._lock:
                        values[key] = {
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                        }
                else:
                    values[key] = child.value
            out[name] = {
                "kind": family.kind,
                "help": family.help,
                "labels": family.labelnames,
                "buckets": family.buckets,
                "values": values,
            }
        return out


#: A shared disabled registry — the default ``metrics`` argument of
#: instrumented components, so "no registry supplied" costs nothing.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold registry snapshots together: counters and histogram buckets
    sum element-wise, gauges sum (the pool-level reading of a
    per-worker level — e.g. total in-flight across workers).

    Element-wise summation makes the merge associative and commutative
    — ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` for any
    grouping or ordering, which ``tests/test_obs.py`` pins.
    Histograms under the same name must share bucket bounds.
    """
    merged: dict = {}
    for snapshot in snapshots:
        for name, family in snapshot.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "kind": family["kind"],
                    "help": family["help"],
                    "labels": family["labels"],
                    "buckets": family["buckets"],
                    "values": {
                        key: (dict(value) if isinstance(value, dict) else value)
                        for key, value in family["values"].items()
                    },
                }
                continue
            if (
                target["kind"] != family["kind"]
                or target["buckets"] != family["buckets"]
            ):
                raise ValueError(
                    f"cannot merge metric {name!r}: mismatched "
                    f"kind or bucket layout"
                )
            for key, value in family["values"].items():
                existing = target["values"].get(key)
                if existing is None:
                    target["values"][key] = (
                        dict(value) if isinstance(value, dict) else value
                    )
                elif isinstance(value, dict):
                    existing["counts"] = [
                        a + b
                        for a, b in zip(existing["counts"], value["counts"])
                    ]
                    existing["sum"] += value["sum"]
                    existing["count"] += value["count"]
                else:
                    target["values"][key] = existing + value
    return merged


def quantile_from_buckets(
    counts: Sequence[int], bounds: Sequence[float], q: float
) -> float:
    """:meth:`Histogram.quantile` over raw snapshot data (merged
    histograms are snapshots, not live :class:`Histogram` objects)."""
    total = sum(counts)
    if total == 0:
        return math.nan
    target = q * total
    cumulative = 0.0
    lower = 0.0
    for index, count in enumerate(counts):
        upper = bounds[index] if index < len(bounds) else bounds[-1]
        if count and cumulative + count >= target:
            if index >= len(bounds):
                return bounds[-1]
            fraction = (target - cumulative) / count
            return lower + fraction * (upper - lower)
        cumulative += count
        lower = upper
    return bounds[-1]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return _format_value(float(bound))


def _labels_text(names: Sequence[str], values: Sequence[str],
                 extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(snapshot: dict) -> str:
    """Render a (possibly merged) snapshot as Prometheus text
    exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers,
    one sample line per child, cumulative ``le`` buckets plus ``_sum``
    and ``_count`` for histograms."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family["kind"]
        labelnames = family["labels"]
        lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(family["values"]):
            value = family["values"][key]
            if kind != "histogram":
                lines.append(
                    f"{name}{_labels_text(labelnames, key)} "
                    f"{_format_value(value)}"
                )
                continue
            cumulative = 0
            for index, bound in enumerate(family["buckets"]):
                cumulative += value["counts"][index]
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_text(labelnames, key, [('le', _format_bound(bound))])}"
                    f" {cumulative}"
                )
            lines.append(
                f"{name}_bucket"
                f"{_labels_text(labelnames, key, [('le', '+Inf')])}"
                f" {value['count']}"
            )
            lines.append(
                f"{name}_sum{_labels_text(labelnames, key)} "
                f"{_format_value(value['sum'])}"
            )
            lines.append(
                f"{name}_count{_labels_text(labelnames, key)} "
                f"{value['count']}"
            )
    return "\n".join(lines) + "\n" if lines else ""
