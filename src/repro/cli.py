"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``classify "R(x), S(x,y)"`` — run the dichotomy classifier, print the
  verdict with its witness.
* ``evaluate "R(x), S(x,y)" data.json`` — evaluate over a database
  given as JSON ``{"R": [[[1], 0.5], ...], ...}``; routes through the
  MystiQ-style router and reports the routing decision (including why
  safer engines were skipped).
* ``answers "Q(x) :- R(x), S(x,y)" data.json --top 5`` — rank the
  answer tuples of a non-Boolean query by probability, one routing
  decision per answer.

Every query argument accepts unions of conjunctive queries: Boolean
disjuncts separated by ``|`` (``"R(x) | S(x,y), T(y)"``), or several
datalog rules for one answer relation separated by ``;`` or newlines
(``"Q(x) :- R(x); Q(y) :- S(y,y)"``).  Safe unions — self-joins
included — evaluate exactly through the lifted tier; unsafe ones fall
through to the compiled / Monte Carlo tiers like any #P-hard query.
* ``compile "R(x), S(x,y), T(y)" data.json`` — compile the query's
  lineage into an OBDD or d-DNNF circuit and report circuit size, the
  variable ordering used, and the exact probability.
* ``serve data.json --requests workload.json`` — replay a workload of
  requests through one long-lived :class:`repro.serve.QuerySession`,
  exercising the prepared-query and circuit caches across calls.  The
  workload is a JSON list of request objects::

      [{"op": "evaluate", "query": "R(x), S(x,y), T(y)"},
       {"op": "answers", "query": "Q(x) :- R(x), S(x,y)", "top": 3},
       {"op": "update", "relation": "R", "row": [1], "probability": 0.9},
       {"op": "batch", "queries": ["R(x), S(x,y)", "R(x), S(x,y), T(y)"]}]

  ``update`` inserts or re-weights one tuple (probability-only changes
  refresh cached circuits without recompiling); the final line reports
  the session's cache statistics.  The workload may also be JSON Lines
  (one request object per line); a malformed file reports the
  offending request — with its line number in the JSON Lines case —
  and exits non-zero.  ``--trace FILE`` additionally records one span
  tree per request (prepare/ground/compile/sweep stages with timings)
  and writes the JSON trace to ``FILE``.
* ``serve data.json --listen 8080 --workers 4`` — the concurrent
  serving front instead of a replay: an asyncio JSON-over-HTTP server
  (:mod:`repro.serve.server`) over a :class:`repro.serve.ServerPool`
  sharding query shapes across worker processes.  ``POST /evaluate``,
  ``/answers``, ``/batch``, ``/update``; ``GET /stats``, ``/healthz``,
  ``/metrics`` (Prometheus text exposition merged across workers).
  ``--verbose`` prints an access-log line per request.  Ctrl-C drains
  in-flight requests and stops the workers gracefully.
* ``stats http://127.0.0.1:8080`` — fetch a running server's ``/stats``
  summary (``--json`` for the full counters, ``--metrics`` for the raw
  Prometheus exposition).
* ``zoo`` — print the paper's query table with our verdicts.

Databases load through :func:`repro.db.io.load_database`, which accepts
both the list format above and the ``from_dict``-style mapping format
``{"R": {"[1]": 0.5}}`` and reports malformed files with a validating
error instead of a traceback.  Files mentioning the same row twice are
rejected as probable data bugs; every database-loading subcommand takes
``--allow-duplicates`` to load them last-wins instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import classify
from .core.parser import QueryParseError, parse
from .db.database import ProbabilisticDatabase
from .db.io import DatabaseFormatError, load_database
from .engines import RouterEngine


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dalvi-Suciu dichotomy toolkit (PODS 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser("classify", help="PTIME or #P-hard?")
    p_classify.add_argument("query", help='e.g. "R(x), S(x,y)"')
    p_classify.add_argument(
        "--constants", default="",
        help="comma-separated identifiers to read as constants",
    )

    p_eval = sub.add_parser("evaluate", help="compute p(q) over a database")
    p_eval.add_argument("query")
    p_eval.add_argument(
        "database",
        help='JSON file: {"R": [[[1], 0.5], [[2], 0.3]], "S": ...}',
    )
    p_eval.add_argument("--constants", default="")
    p_eval.add_argument(
        "--samples", type=int, default=20000,
        help="Monte Carlo samples for unsafe queries",
    )
    p_eval.add_argument(
        "--exact", action="store_true",
        help="use the exact oracle instead of Monte Carlo for unsafe queries",
    )
    _add_duplicates_flag(p_eval)

    p_answers = sub.add_parser(
        "answers", help="ranked answer tuples of a non-Boolean query"
    )
    p_answers.add_argument("query", help='e.g. "Q(x) :- R(x), S(x,y)"')
    p_answers.add_argument(
        "database",
        help='JSON file: {"R": [[[1], 0.5], ...]} or {"R": {"[1]": 0.5}}',
    )
    p_answers.add_argument("--constants", default="")
    p_answers.add_argument(
        "--top", type=int, default=None, metavar="K",
        help="only the K most probable answers (multisimulation prunes "
             "Monte Carlo work for the rest)",
    )
    p_answers.add_argument(
        "--samples", type=int, default=20000,
        help="Monte Carlo sample cap per answer for unsafe residuals",
    )
    p_answers.add_argument(
        "--exact", action="store_true",
        help="use the exact oracle instead of Monte Carlo for unsafe residuals",
    )
    _add_duplicates_flag(p_answers)

    p_compile = sub.add_parser(
        "compile", help="compile the lineage into a circuit and evaluate"
    )
    p_compile.add_argument("query")
    p_compile.add_argument(
        "database",
        help='JSON file: {"R": [[[1], 0.5], [[2], 0.3]], "S": ...}',
    )
    p_compile.add_argument("--constants", default="")
    p_compile.add_argument(
        "--mode", choices=("obdd", "dnnf", "auto"), default="auto",
        help="compilation target (default: auto = OBDD, d-DNNF fallback)",
    )
    p_compile.add_argument(
        "--ordering", default="auto",
        help="OBDD variable ordering: lineage, min-width, hierarchy, "
             "auto, or best (try all, keep the smallest)",
    )
    p_compile.add_argument(
        "--max-nodes", type=int, default=None,
        help="node budget; compilation aborts when exceeded",
    )
    p_compile.add_argument(
        "--show-circuit", action="store_true",
        help="also print the circuit nodes (small circuits only)",
    )
    p_compile.add_argument(
        "--compare-oracle", action="store_true",
        help="also run the Shannon-expansion WMC oracle for comparison "
             "(exponential worst case; only for lineages it can handle)",
    )
    _add_duplicates_flag(p_compile)

    p_serve = sub.add_parser(
        "serve", help="replay a request workload through a QuerySession"
    )
    p_serve.add_argument(
        "database",
        help='JSON file: {"R": [[[1], 0.5], ...]} or {"R": {"[1]": 0.5}}',
    )
    p_serve.add_argument(
        "--requests", metavar="FILE",
        help="replay a workload: JSON list of request objects, or JSON "
             "Lines with one object per line (see module docstring)",
    )
    p_serve.add_argument(
        "--listen", metavar="[HOST:]PORT",
        help="serve JSON-over-HTTP on this address instead of replaying "
             "a workload file",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes for --listen (0 = in-process, default 2); "
             "query shapes are hash-sharded across workers",
    )
    p_serve.add_argument("--constants", default="")
    p_serve.add_argument(
        "--samples", type=int, default=20000,
        help="Monte Carlo sample cap for unsafe residuals",
    )
    p_serve.add_argument(
        "--exact", action="store_true",
        help="use the exact oracle instead of Monte Carlo for unsafe queries",
    )
    p_serve.add_argument(
        "--compile-budget", type=int, default=10_000, metavar="NODES",
        help="circuit node budget for the compiled tier (default 10000)",
    )
    p_serve.add_argument(
        "--scatter-policy", choices=("adaptive", "always", "never"),
        default="adaptive",
        help="HTTP mode only: when Monte Carlo lineage batches ship to "
             "worker processes — 'adaptive' uses a measured cost model, "
             "'always'/'never' force scatter or front-inline (default "
             "adaptive)",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="HTTP mode only: default per-request deadline; expired "
             "requests are purged and return 504 (clients override "
             "per-request via the X-Deadline-Ms header; default none)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="HTTP mode only: times a timed-out request is re-dispatched "
             "with capped backoff before 504 (default 1)",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=1024, metavar="N",
        help="HTTP mode only: global in-flight request cap; over-limit "
             "requests are shed fast with 503 + Retry-After (default "
             "1024; 0 sheds everything, for drills)",
    )
    p_serve.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="HTTP mode only: per-shard admission bound in the pool; "
             "requests beyond it are shed with 503 instead of queued "
             "(default unbounded)",
    )
    p_serve.add_argument(
        "--idle-timeout", type=float, default=300.0, metavar="SECONDS",
        help="HTTP mode only: close keep-alive connections idle this "
             "long (default 300; <= 0 disables)",
    )
    p_serve.add_argument(
        "--overload-threshold", type=float, default=None, metavar="SECONDS",
        help="HTTP mode only: queue-wait EWMA above which the pool "
             "clamps Monte Carlo sample budgets until load drains "
             "(default off)",
    )
    p_serve.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="HTTP mode only: arm deterministic worker fault injection, "
             "e.g. 'seed=7,kill=0.01,stall=0.02,stall_ms=500' — chaos "
             "drills against the supervision layer (see "
             "repro.serve.faults)",
    )
    p_serve.add_argument(
        "--trace", metavar="FILE",
        help="replay mode only: record a span tree per request "
             "(prepare/ground/compile/sweep stages) and write the JSON "
             "trace to FILE when the workload finishes",
    )
    p_serve.add_argument(
        "--verbose", action="store_true",
        help="HTTP mode only: print one access-log line per request "
             "(method, path, status, duration)",
    )
    _add_duplicates_flag(p_serve)

    p_stats = sub.add_parser(
        "stats", help="fetch /stats or /metrics from a running server"
    )
    p_stats.add_argument(
        "url", help="server base URL, e.g. http://127.0.0.1:8080"
    )
    p_stats.add_argument(
        "--metrics", action="store_true",
        help="print the raw Prometheus /metrics exposition instead of "
             "the /stats summary",
    )
    p_stats.add_argument(
        "--json", action="store_true",
        help="print the full /stats JSON instead of the summary line",
    )

    sub.add_parser("zoo", help="classify every query named in the paper")
    return parser


def _add_duplicates_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--allow-duplicates", action="store_true",
        help="load duplicate database rows last-wins instead of erroring",
    )


def _load_db(args) -> ProbabilisticDatabase:
    on_duplicate = "overwrite" if args.allow_duplicates else "error"
    return load_database(args.database, on_duplicate=on_duplicate)


def _constants(spec: str) -> tuple:
    return tuple(token.strip() for token in spec.split(",") if token.strip())


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    try:
        if args.command == "classify":
            result = classify(parse(args.query, constants=_constants(args.constants)))
            print(result.describe())
            return 0

        if args.command == "evaluate":
            query = parse(args.query, constants=_constants(args.constants))
            db = _load_db(args)
            router = RouterEngine(exact_fallback=args.exact, mc_samples=args.samples)
            probability = router.probability(query, db)
            decision = router.history[-1]
            print(f"p(q) = {probability:.10f}")
            print(f"engine: {decision.engine} ({decision.seconds * 1e3:.1f} ms)")
            if decision.fallback_reason:
                print(f"fallback: {decision.fallback_reason}")
            return 0

        if args.command == "answers":
            return _run_answers(args)

        if args.command == "compile":
            return _run_compile(args)

        if args.command == "serve":
            return _run_serve(args)

        if args.command == "stats":
            return _run_stats(args)
    except (DatabaseFormatError, QueryParseError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.command == "zoo":
        from .queries import zoo

        for entry in zoo():
            claimed = "PTIME" if entry.claimed_ptime else "#P-hard"
            try:
                verdict = entry.classify().verdict.value
            except Exception as error:  # pragma: no cover
                verdict = f"error({type(error).__name__})"
            flag = "" if (verdict == claimed) == (not entry.disputed) else "  [!]"
            print(f"{entry.name:34s} paper={claimed:8s} ours={verdict}{flag}")
        return 0

    return 1  # pragma: no cover


def _run_answers(args) -> int:
    query = parse(args.query, constants=_constants(args.constants))
    db = _load_db(args)
    router = RouterEngine(exact_fallback=args.exact, mc_samples=args.samples)
    results = router.answers(query, db, k=args.top)
    if not results:
        print("no answers")
        return 0
    decisions = {
        decision.answer: decision
        for decision in router.history
        if decision.answer is not None
    }
    width = max(len(_answer_text(answer)) for answer, _ in results)
    print(f"{'#':>3}  {'answer':<{width}}  {'probability':>12}  engine")
    for rank, (answer, probability) in enumerate(results, start=1):
        decision = decisions.get(answer)
        engine = decision.engine if decision else router.name
        extra = ""
        if decision and decision.interval is not None:
            extra = f" ±{decision.interval:.6f}"
        print(
            f"{rank:>3}  {_answer_text(answer):<{width}}  "
            f"{probability:>12.8f}  {engine}{extra}"
        )
    reasons = {
        decision.fallback_reason
        for decision in decisions.values()
        if decision.fallback_reason
    }
    for reason in sorted(reasons):
        print(f"fallback: {reason}")
    return 0


def _answer_text(answer: tuple) -> str:
    return "(" + ", ".join(repr(v) for v in answer) + ")"


def _run_serve(args) -> int:
    if (args.requests is None) == (args.listen is None):
        print(
            "error: serve needs exactly one of --requests FILE (replay a "
            "workload) or --listen [HOST:]PORT (start the HTTP server)",
            file=sys.stderr,
        )
        return 2
    if args.trace is not None and args.listen is not None:
        print(
            "error: --trace records a workload replay; for a live server "
            "scrape GET /metrics instead",
            file=sys.stderr,
        )
        return 2
    db = _load_db(args)
    if args.listen is not None:
        return _run_serve_http(args, db)

    from .obs import Tracer
    from .serve import QuerySession

    requests = _load_requests(args.requests)
    tracer = Tracer(enabled=True) if args.trace is not None else None
    session = QuerySession(
        db,
        exact_fallback=args.exact,
        mc_samples=args.samples,
        compile_budget=args.compile_budget,
        tracer=tracer,
    )
    constants = _constants(args.constants)
    for label, request in requests:
        try:
            _serve_request(session, request, constants)
        except (QueryParseError, DatabaseFormatError, ValueError,
                TypeError) as error:
            print(
                f"error: {args.requests}, {label}: {error}\n"
                f"  offending request: {json.dumps(request)}",
                file=sys.stderr,
            )
            return 2
    if tracer is not None:
        spans = tracer.export()
        with open(args.trace, "w") as handle:
            json.dump(spans, handle, indent=2)
            handle.write("\n")
        print(f"trace: {len(spans)} root spans -> {args.trace}")
    print(f"session: {session.stats.describe()}")
    return 0


def _run_stats(args) -> int:
    import urllib.request

    base = args.url.rstrip("/")
    if not base.startswith(("http://", "https://")):
        base = "http://" + base
    path = "/metrics" if args.metrics else "/stats"
    with urllib.request.urlopen(base + path, timeout=30) as reply:
        body = reply.read()
    if args.metrics:
        sys.stdout.write(body.decode("utf-8"))
        return 0
    payload = json.loads(body)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(payload.get("text") or json.dumps(payload))
    return 0


def _load_requests(path: str) -> List[tuple]:
    """Parse a workload file into ``(label, request)`` pairs.

    Accepts a JSON list of request objects, or JSON Lines (one object
    per line).  Malformed content raises :class:`DatabaseFormatError`
    naming the offending line, so the CLI exits non-zero instead of
    silently succeeding on a half-read file.
    """
    with open(path) as handle:
        text = handle.read()
    if not text.strip():
        raise DatabaseFormatError(f"{path}: empty request file")
    if text.lstrip()[0] == "[":
        try:
            requests = json.loads(text)
        except json.JSONDecodeError as error:
            raise DatabaseFormatError(
                f"{path}: not valid JSON: {error}"
            ) from error
        if not isinstance(requests, list):
            raise DatabaseFormatError(
                f"{path}: expected a JSON list of request objects, "
                f"got {type(requests).__name__}"
            )
        return [
            (f"request {number}", request)
            for number, request in enumerate(requests, start=1)
        ]
    pairs = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            raise DatabaseFormatError(
                f"{path}, line {number}: not valid JSON: {error}\n"
                f"  offending line: {line.strip()}"
            ) from error
        pairs.append((f"line {number}", request))
    return pairs


def _run_serve_http(args, db) -> int:
    from .serve import ServerPool, SessionConfig, serve_forever

    host, _, port_text = args.listen.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"error: --listen expects [HOST:]PORT, got {args.listen!r}",
            file=sys.stderr,
        )
        return 2
    if args.workers < 0:
        print(f"error: --workers must be >= 0, got {args.workers}",
              file=sys.stderr)
        return 2
    pool = ServerPool(
        db,
        workers=args.workers,
        config=SessionConfig(
            exact_fallback=args.exact,
            mc_samples=args.samples,
            compile_budget=args.compile_budget,
            faults=args.faults,
        ),
        scatter_policy=args.scatter_policy,
        request_timeout=args.request_timeout,
        request_retries=args.retries,
        max_queue_depth=args.max_queue_depth,
        overload_threshold=args.overload_threshold,
    )
    access_log = None
    if args.verbose:
        def access_log(line: str) -> None:
            print(line, flush=True)

    idle_timeout = args.idle_timeout
    if idle_timeout is not None and idle_timeout <= 0:
        idle_timeout = None
    serve_forever(
        pool,
        host,
        port,
        access_log=access_log,
        max_inflight=args.max_inflight,
        idle_timeout=idle_timeout,
    )
    return 0


def _request_field(request: dict, name: str):
    if name not in request:
        raise ValueError(
            f"op {request['op']!r} is missing the {name!r} field"
        )
    return request[name]


def _request_query(request: dict) -> str:
    text = _request_field(request, "query")
    if not isinstance(text, str):
        raise ValueError(f"query must be a string, got {text!r}")
    return text


def _serve_request(session, request, constants) -> None:
    if not isinstance(request, dict) or "op" not in request:
        raise ValueError(f'expected an object with an "op" key, got {request!r}')
    op = request["op"]
    if op == "evaluate":
        text = _request_query(request)
        value = session.evaluate(parse(text, constants=constants))
        print(f"evaluate {text!r}: p = {value:.10f}")
    elif op == "answers":
        text = _request_query(request)
        query = parse(text, constants=constants)
        top = request.get("top")
        if top is not None and (
            isinstance(top, bool) or not isinstance(top, int) or top < 0
        ):
            raise ValueError(
                f"answers top must be a non-negative integer, got {top!r}"
            )
        ranked = session.answers(query, k=top)
        print(f"answers {text!r}: {len(ranked)} answers")
        for rank, (answer, value) in enumerate(ranked, start=1):
            print(f"  {rank:>3}  {_answer_text(answer)}  {value:.8f}")
    elif op == "update":
        row = _request_field(request, "row")
        if not isinstance(row, (list, tuple)) or not all(
            isinstance(value, (int, str, float)) for value in row
        ):
            raise ValueError(
                f"update row must be an array of scalars, got {row!r}"
            )
        relation = _request_field(request, "relation")
        probability = _request_field(request, "probability")
        if isinstance(probability, bool) or not isinstance(
            probability, (int, float)
        ):
            raise ValueError(
                f"update probability must be a number, got {probability!r}"
            )
        session.update(relation, tuple(row), probability)
        print(f"update {relation}{tuple(row)} <- {probability}")
    elif op == "batch":
        queries = _request_field(request, "queries")
        if not isinstance(queries, list) or not all(
            isinstance(text, str) for text in queries
        ):
            raise ValueError(
                f"batch queries must be an array of query strings, "
                f"got {queries!r}"
            )
        parsed = [parse(text, constants=constants) for text in queries]
        values = session.evaluate_many(parsed)
        print(f"batch of {len(values)}:")
        for text, value in zip(queries, values):
            print(f"  {text!r}: p = {value:.10f}")
    else:
        raise ValueError(
            f"unknown op {op!r}; expected evaluate/answers/update/batch"
        )


def _run_compile(args) -> int:
    import time

    from .compile.cache import CircuitCache
    from .compile.obdd import CompiledOBDD
    from .engines.compiled import CompiledEngine
    from .lineage.grounding import ground_lineage
    from .lineage.wmc import shannon_expansion_count

    from .core.query import ConjunctiveQuery

    query = parse(args.query, constants=_constants(args.constants))
    db = _load_db(args)
    lineage = ground_lineage(query, db)
    if not isinstance(query, ConjunctiveQuery):
        # Unions compile order-free from their DNF lineage; the query
        # argument only guides the CQ ordering heuristics.
        query = None
    print(f"lineage: {lineage.clause_count()} clauses over "
          f"{lineage.variable_count} tuple events")
    if lineage.certainly_true or lineage.is_false:
        print(f"p(q) = {1.0 if lineage.certainly_true else 0.0:.10f} (trivial)")
        return 0
    from .engines.base import UnsupportedQueryError

    engine = CompiledEngine(
        mode=args.mode, ordering=args.ordering, max_nodes=args.max_nodes,
        cache=CircuitCache(),
    )
    start = time.perf_counter()
    try:
        artifact = engine.compile_lineage(lineage, query)
    except (UnsupportedQueryError, ValueError) as error:
        print(f"compilation failed: {error}", file=sys.stderr)
        return 1
    compile_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    probability = float(artifact.probability(lineage.weights))
    evaluate_ms = (time.perf_counter() - start) * 1e3
    report = engine.last_report
    print(report.describe())
    print(f"compile: {compile_ms:.2f} ms, evaluate: {evaluate_ms:.3f} ms")
    if args.compare_oracle:
        print(f"WMC oracle would expand {shannon_expansion_count(lineage)} "
              f"nodes per query")
    print(f"p(q) = {min(max(probability, 0.0), 1.0):.10f}")
    if args.show_circuit:
        if isinstance(artifact, CompiledOBDD):
            circuit, root = artifact.obdd.to_circuit(artifact.root)
        else:
            circuit, root = artifact.circuit, artifact.root
        print(circuit.describe(root))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
