"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``classify "R(x), S(x,y)"`` — run the dichotomy classifier, print the
  verdict with its witness.
* ``evaluate "R(x), S(x,y)" data.json`` — evaluate over a database
  given as JSON ``{"R": [[[1], 0.5], ...], ...}``; routes through the
  MystiQ-style router.
* ``zoo`` — print the paper's query table with our verdicts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import classify
from .core.parser import parse
from .db.database import ProbabilisticDatabase
from .engines import RouterEngine


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dalvi-Suciu dichotomy toolkit (PODS 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser("classify", help="PTIME or #P-hard?")
    p_classify.add_argument("query", help='e.g. "R(x), S(x,y)"')
    p_classify.add_argument(
        "--constants", default="",
        help="comma-separated identifiers to read as constants",
    )

    p_eval = sub.add_parser("evaluate", help="compute p(q) over a database")
    p_eval.add_argument("query")
    p_eval.add_argument(
        "database",
        help='JSON file: {"R": [[[1], 0.5], [[2], 0.3]], "S": ...}',
    )
    p_eval.add_argument("--constants", default="")
    p_eval.add_argument(
        "--samples", type=int, default=20000,
        help="Monte Carlo samples for unsafe queries",
    )
    p_eval.add_argument(
        "--exact", action="store_true",
        help="use the exact oracle instead of Monte Carlo for unsafe queries",
    )

    sub.add_parser("zoo", help="classify every query named in the paper")
    return parser


def _load_database(path: str) -> ProbabilisticDatabase:
    with open(path) as handle:
        raw = json.load(handle)
    db = ProbabilisticDatabase()
    for relation, rows in raw.items():
        for row, probability in rows:
            db.add(relation, tuple(row), probability)
    return db


def _constants(spec: str) -> tuple:
    return tuple(token.strip() for token in spec.split(",") if token.strip())


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "classify":
        result = classify(parse(args.query, constants=_constants(args.constants)))
        print(result.describe())
        return 0

    if args.command == "evaluate":
        query = parse(args.query, constants=_constants(args.constants))
        db = _load_database(args.database)
        router = RouterEngine(exact_fallback=args.exact, mc_samples=args.samples)
        probability = router.probability(query, db)
        decision = router.history[-1]
        print(f"p(q) = {probability:.10f}")
        print(f"engine: {decision.engine} ({decision.seconds * 1e3:.1f} ms)")
        return 0

    if args.command == "zoo":
        from .queries import zoo

        for entry in zoo():
            claimed = "PTIME" if entry.claimed_ptime else "#P-hard"
            try:
                verdict = entry.classify().verdict.value
            except Exception as error:  # pragma: no cover
                verdict = f"error({type(error).__name__})"
            flag = "" if (verdict == claimed) == (not entry.disputed) else "  [!]"
            print(f"{entry.name:34s} paper={claimed:8s} ours={verdict}{flag}")
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
