"""The ``H_k`` chain-query family (Theorem 1.5, Appendix C).

``H_k`` is the canonical family of *hierarchical* #P-hard queries::

    H_k = R(x), S0(x,y),
          S0(u1,v1), S1(u1,v1),
          ...
          S_{k-1}(uk,vk), S_k(uk,vk),
          S_k(x',y'), T(y')

The inversion travels along the chain of ``S_i`` unifications from
``x ⊐ y`` to ``x' ⊏ y'``; its length is ``k``, and the general hardness
proof (Theorem 4.4) reduces from exactly this family.
"""

from __future__ import annotations

from typing import List

from ..core.atoms import atom
from ..core.query import ConjunctiveQuery


def chain_relation(index: int) -> str:
    """Name of the ``i``-th chain relation."""
    return f"S{index}"


def hk_query(k: int) -> ConjunctiveQuery:
    """Build ``H_k`` for ``k >= 0`` (``H_0 = R(x),S0(x,y),S0(x',y'),T(y')``)."""
    if k < 0:
        raise ValueError("k must be nonnegative")
    atoms = [atom("R", "x"), atom(chain_relation(0), "x", "y")]
    for i in range(1, k + 1):
        atoms.append(atom(chain_relation(i - 1), f"u{i}", f"v{i}"))
        atoms.append(atom(chain_relation(i), f"u{i}", f"v{i}"))
    atoms.append(atom(chain_relation(k), "xp", "yp"))
    atoms.append(atom("T", "yp"))
    return ConjunctiveQuery(atoms)


def hk_component_queries(k: int) -> List[ConjunctiveQuery]:
    """The queries ``φ_0 .. φ_{k+1}`` of Appendix C.

    ``H_k`` is their conjunction; every *proper* sub-conjunction is
    inversion-free (hence PTIME), which is what drives the
    inclusion–exclusion step of the hardness proof.
    """
    components: List[ConjunctiveQuery] = [
        ConjunctiveQuery([atom("R", "x"), atom(chain_relation(0), "x", "y")])
    ]
    for i in range(1, k + 1):
        components.append(
            ConjunctiveQuery(
                [
                    atom(chain_relation(i - 1), "u", "v"),
                    atom(chain_relation(i), "u", "v"),
                ]
            )
        )
    components.append(
        ConjunctiveQuery(
            [atom(chain_relation(k), "xp", "yp"), atom("T", "yp")]
        )
    )
    return components
