"""Bipartite 2DNF formulas and exact model counting.

All of the paper's hardness proofs reduce from computing the
probability (equivalently, counting satisfying assignments) of a
*bipartite positive 2DNF*::

    Φ = ∨_{h=1..t}  (x_{i_h} ∧ y_{j_h})

with disjoint variable sets X, Y — the canonical #P-complete problem
(Provan–Ball / Valiant).  This module gives the formula object, exact
brute-force counting (the test oracle for the reductions), the
probability under independent variable marginals, and the assignment
census ``T_{i,j}`` that Appendix C's Vandermonde argument recovers.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Bipartite2DNF:
    """``Φ = ∨ (x_i ∧ y_j)`` with optional per-variable marginals."""

    num_x: int
    num_y: int
    clauses: Tuple[Tuple[int, int], ...]
    x_probs: Tuple[float, ...] = field(default=())
    y_probs: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        for i, j in self.clauses:
            if not (0 <= i < self.num_x and 0 <= j < self.num_y):
                raise ValueError(f"clause ({i},{j}) out of range")
        if not self.x_probs:
            object.__setattr__(self, "x_probs", (0.5,) * self.num_x)
        if not self.y_probs:
            object.__setattr__(self, "y_probs", (0.5,) * self.num_y)
        if len(self.x_probs) != self.num_x or len(self.y_probs) != self.num_y:
            raise ValueError("marginal vectors must match variable counts")

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def evaluate(self, x_assign: Sequence[bool], y_assign: Sequence[bool]) -> bool:
        """Truth value under an assignment."""
        return any(x_assign[i] and y_assign[j] for i, j in self.clauses)

    def count_satisfying(self) -> int:
        """Exact #SAT by enumeration (use only for small formulas)."""
        total = 0
        for x_assign in itertools.product((False, True), repeat=self.num_x):
            for y_assign in itertools.product((False, True), repeat=self.num_y):
                if self.evaluate(x_assign, y_assign):
                    total += 1
        return total

    def probability(self) -> float:
        """Exact ``P(Φ)`` under the independent variable marginals."""
        total = 0.0
        for x_assign in itertools.product((False, True), repeat=self.num_x):
            weight_x = 1.0
            for value, prob in zip(x_assign, self.x_probs):
                weight_x *= prob if value else (1.0 - prob)
            for y_assign in itertools.product((False, True), repeat=self.num_y):
                if not self.evaluate(x_assign, y_assign):
                    continue
                weight = weight_x
                for value, prob in zip(y_assign, self.y_probs):
                    weight *= prob if value else (1.0 - prob)
                total += weight
        return total

    def assignment_census(self) -> Dict[Tuple[int, int], int]:
        """``T_{i,j}``: assignments with ``i`` clauses both-true and
        ``j`` clauses none-true (Appendix C's unknowns)."""
        census: Dict[Tuple[int, int], int] = {}
        for x_assign in itertools.product((False, True), repeat=self.num_x):
            for y_assign in itertools.product((False, True), repeat=self.num_y):
                both = sum(
                    1 for i, j in self.clauses if x_assign[i] and y_assign[j]
                )
                none = sum(
                    1
                    for i, j in self.clauses
                    if not x_assign[i] and not y_assign[j]
                )
                key = (both, none)
                census[key] = census.get(key, 0) + 1
        return census


def random_formula(
    num_x: int,
    num_y: int,
    num_clauses: int,
    seed: Optional[int] = None,
    random_marginals: bool = False,
) -> Bipartite2DNF:
    """A random bipartite 2DNF with distinct clauses."""
    rng = random.Random(seed)
    space = [(i, j) for i in range(num_x) for j in range(num_y)]
    if num_clauses > len(space):
        raise ValueError("more clauses requested than distinct pairs exist")
    clauses = tuple(rng.sample(space, num_clauses))
    if random_marginals:
        x_probs = tuple(rng.uniform(0.2, 0.8) for _ in range(num_x))
        y_probs = tuple(rng.uniform(0.2, 0.8) for _ in range(num_y))
        return Bipartite2DNF(num_x, num_y, clauses, x_probs, y_probs)
    return Bipartite2DNF(num_x, num_y, clauses)
