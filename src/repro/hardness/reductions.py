"""Executable versions of the paper's #P-hardness reductions.

Each construction maps a bipartite 2DNF formula to a probabilistic
database instance such that a query probability equals (or linearly
reveals) the formula probability.  The test suite closes the loop by
evaluating the query with the exact oracle and comparing against
brute-force formula counting — the reductions are *run*, not just
stated.

Implemented:

* :func:`p3_instance` / :func:`triangle_instance` — Proposition B.3
  (paths of length 3 on 4-partite graphs; triangles on triangled
  graphs).
* :func:`b5_instance` — the Theorem B.5 pattern construction behind
  Theorem 1.4's "non-hierarchical ⇒ #P-hard".
* :func:`hk_instance` / :func:`count_via_hk` — Appendix C: the
  Vandermonde-style reduction that turns an ``H_k`` evaluator into a
  #2DNF counter.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.atoms import atom
from ..core.hierarchy import find_non_hierarchical_witness
from ..core.homomorphism import minimize
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..db.database import ProbabilisticDatabase
from ..lineage.boolean import Lineage, make_lineage
from ..lineage.grounding import ground_lineage
from ..lineage.wmc import exact_probability
from .hk import chain_relation, hk_component_queries, hk_query
from .twodnf import Bipartite2DNF

# ----------------------------------------------------------------------
# Proposition B.3
# ----------------------------------------------------------------------

#: ``P3``: does the graph contain a path of length 3?
P3_QUERY = ConjunctiveQuery(
    [atom("E", "x", "y"), atom("E", "y", "z"), atom("E", "z", "u")]
)

#: ``T``: does the graph contain a (directed) triangle?
TRIANGLE_QUERY = ConjunctiveQuery(
    [atom("E", "x", "y"), atom("E", "y", "z"), atom("E", "z", "x")]
)


def p3_instance(formula: Bipartite2DNF) -> ProbabilisticDatabase:
    """The 4-partite graph of Proposition B.3.

    ``P(P3) = P(Φ)``: a length-3 path must go u → x_i → y_j → v,
    which exists iff some clause has both variables true.
    """
    db = ProbabilisticDatabase()
    edges = db.relation("E")
    for i, prob in enumerate(formula.x_probs):
        edges.add(("u", f"x{i}"), prob)
    for i, j in formula.clauses:
        edges.add((f"x{i}", f"y{j}"), 1)
    for j, prob in enumerate(formula.y_probs):
        edges.add((f"y{j}", "v"), prob)
    return db


def triangle_instance(formula: Bipartite2DNF) -> ProbabilisticDatabase:
    """The triangled graph of Proposition B.3 (u, v merged into v0)."""
    db = ProbabilisticDatabase()
    edges = db.relation("E")
    for i, prob in enumerate(formula.x_probs):
        edges.add(("v0", f"x{i}"), prob)
    for i, j in formula.clauses:
        edges.add((f"x{i}", f"y{j}"), 1)
    for j, prob in enumerate(formula.y_probs):
        edges.add((f"y{j}", "v0"), prob)
    return db


# ----------------------------------------------------------------------
# Theorem B.5 — the non-hierarchical pattern
# ----------------------------------------------------------------------


def b5_instance(
    query: ConjunctiveQuery, formula: Bipartite2DNF
) -> ProbabilisticDatabase:
    """The Theorem B.5 structure for a three-sub-goal pattern query.

    ``query`` must minimize to exactly three sub-goals
    ``R1(v̄1), R2(v̄2), R3(v̄3)`` with a crossing pair ``x, y``
    (``x ∈ v̄1, v̄2``, ``y ∈ v̄2, v̄3``, ``x ∉ v̄3``, ``y ∉ v̄1``).
    Tuples: ``v̄1[x→x_i]`` with ``P(x_i)``; ``v̄2[x→x_i, y→y_j]`` per
    clause with probability 1; ``v̄3[y→y_j]`` with ``P(y_j)``.  The
    remaining variables act as themselves (fresh domain constants).
    Then ``P(query) = P(Φ)``.
    """
    core = minimize(query)
    witness = find_non_hierarchical_witness(core)
    if witness is None or len(core.atoms) != 3:
        raise ValueError(
            "b5_instance needs a minimal three-sub-goal non-hierarchical "
            f"pattern, got: {core}"
        )
    x, y = witness.x, witness.y
    atom_x = core.atoms[witness.only_x]
    atom_xy = core.atoms[witness.shared]
    atom_y = core.atoms[witness.only_y]

    def ground(pattern, binding: Dict[Variable, object]) -> Tuple:
        row = []
        for term in pattern.terms:
            if isinstance(term, Constant):
                row.append(term.value)
            elif term in binding:
                row.append(binding[term])
            else:
                row.append(f"var:{term.name}")
        return tuple(row)

    db = ProbabilisticDatabase()
    for i, prob in enumerate(formula.x_probs):
        db.add(atom_x.relation, ground(atom_x, {x: f"x{i}"}), prob)
    for i, j in formula.clauses:
        db.add(atom_xy.relation, ground(atom_xy, {x: f"x{i}", y: f"y{j}"}), 1)
    for j, prob in enumerate(formula.y_probs):
        db.add(atom_y.relation, ground(atom_y, {y: f"y{j}"}), prob)
    return db


# ----------------------------------------------------------------------
# Appendix C — counting via an H_k evaluator
# ----------------------------------------------------------------------


def hk_instance(
    formula: Bipartite2DNF, k: int, p1: float, p2: float
) -> ProbabilisticDatabase:
    """The Appendix C instance for ``H_k``.

    ``R(x_i)`` and ``T(y_j)`` carry the variable marginals (1/2 in the
    proof); every clause edge gets a tuple in each chain relation —
    probability ``p1`` in ``S_0`` and ``S_k``, ``p2`` in the middle
    relations.
    """
    db = ProbabilisticDatabase()
    for i, prob in enumerate(formula.x_probs):
        db.add("R", (f"x{i}",), prob)
    for j, prob in enumerate(formula.y_probs):
        db.add("T", (f"y{j}",), prob)
    for level in range(k + 1):
        prob = p1 if level in (0, k) else p2
        for i, j in formula.clauses:
            db.add(chain_relation(level), (f"x{i}", f"y{j}"), prob)
    return db


def union_probability(
    queries: Sequence[ConjunctiveQuery], db: ProbabilisticDatabase
) -> float:
    """Exact probability of a union of CQs via merged lineage."""
    clauses: List = []
    weights: Dict = {}
    certain = False
    for query in queries:
        lineage = ground_lineage(query, db)
        if lineage.certainly_true:
            certain = True
            break
        clauses.extend(lineage.clauses)
        weights.update(lineage.weights)
    if certain:
        return 1.0
    return exact_probability(make_lineage(clauses, weights))


def edge_case_probabilities(
    k: int, p1: float, p2: float
) -> Tuple[float, float, float]:
    """Per-clause-edge survival probabilities (A, B, C).

    For one clause edge, the chain bits ``s_0..s_k`` (inclusion of the
    edge in ``S_0..S_k``) must avoid every component query:
    no consecutive pair may be jointly present, ``s_0`` is forbidden
    when the clause's x-variable is true, ``s_k`` when its y-variable
    is true.  Returns ``A`` (both true), ``B`` (neither true),
    ``C`` (exactly one true).
    """
    probs = [p1 if level in (0, k) else p2 for level in range(k + 1)]

    def survival(force_first_zero: bool, force_last_zero: bool) -> float:
        # DP over the chain: state = previous bit value.
        states = {False: 1.0, True: 0.0}
        for level, prob in enumerate(probs):
            forced_zero = (level == 0 and force_first_zero) or (
                level == k and force_last_zero
            )
            next_states = {False: 0.0, True: 0.0}
            for prev, weight in states.items():
                if weight == 0.0:
                    continue
                # bit = 0
                next_states[False] += weight * (1.0 - prob)
                # bit = 1 (forbidden after a 1, or when forced out)
                if not forced_zero and not prev:
                    next_states[True] += weight * prob
            states = next_states
        return states[False] + states[True]

    return (
        survival(True, True),
        survival(False, False),
        survival(True, False),
    )


def count_via_hk(
    formula: Bipartite2DNF,
    k: int,
    probability_of_union=None,
) -> int:
    """Count satisfying assignments of ``Φ`` using an ``H_k`` evaluator.

    This is Appendix C run forward: evaluate
    ``P(φ_0 ∨ ... ∨ φ_{k+1})`` on the constructed instances for a grid
    of ``(p1, p2)`` values, solve the linear system for the census
    ``T_{i,j}``, and read off ``#SAT = 2^{m+n} - Σ_j T_{0,j}``.

    Args:
        formula: must use the proof's 1/2 marginals.
        k: which ``H_k`` to reduce from.
        probability_of_union: evaluation callback
            ``(queries, db) -> float``; defaults to the exact oracle.
            Injecting a callback demonstrates that *any* ``H_k``
            evaluator suffices — the essence of #P-hardness.
    """
    if set(formula.x_probs) != {0.5} or set(formula.y_probs) != {0.5}:
        raise ValueError("the Appendix C reduction uses 1/2 marginals")
    if k < 2:
        # For k = 0 the endpoint relations coincide and for k = 1 there
        # are no middle relations, so the edge-case probabilities
        # collapse to functions of the single parameter p1 and the
        # census system is rank-deficient: Appendix C's Vandermonde
        # argument needs k >= 2 as written.  H_0 / H_1 hardness follows
        # from the authors' prior work [4] and Theorem 1.5's statement.
        raise ValueError("the Vandermonde reduction needs k >= 2")
    evaluator = probability_of_union or union_probability
    components = hk_component_queries(k)
    t = formula.num_clauses
    unknowns = [(i, j) for i in range(t + 1) for j in range(t + 1 - i)]

    rows: List[List[float]] = []
    values: List[float] = []
    grid = _sample_grid(len(unknowns))
    for p1, p2 in grid:
        a, b, c = edge_case_probabilities(k, p1, p2)
        db = hk_instance(formula, k, p1, p2)
        none_true = 1.0 - evaluator(components, db)
        values.append(none_true * 2 ** (formula.num_x + formula.num_y))
        rows.append([a**i * b**j * c ** (t - i - j) for i, j in unknowns])

    solution, *_ = np.linalg.lstsq(
        np.array(rows), np.array(values), rcond=None
    )
    census = {key: int(round(value)) for key, value in zip(unknowns, solution)}
    total = 2 ** (formula.num_x + formula.num_y)
    unsatisfied = sum(count for (i, _j), count in census.items() if i == 0)
    return total - unsatisfied


def _sample_grid(minimum_points: int) -> List[Tuple[float, float]]:
    """Well-spread (p1, p2) sample points for the linear solve.

    Every point gets a *distinct* ``p1`` (for ``k = 1`` only ``p1``
    matters, so diversity must not rely on ``p2``); ``p2`` follows a
    golden-ratio ladder so two-parameter instances are spread too.
    """
    count = max(minimum_points * 3, 30)
    p1_values = np.linspace(0.08, 0.92, count)
    golden = 0.6180339887498949
    return [
        (float(p1), float(0.1 + 0.8 * ((index * golden) % 1.0)))
        for index, p1 in enumerate(p1_values)
    ]
