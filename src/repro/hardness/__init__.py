"""Hardness substrate: 2DNF counting, the H_k family, reductions."""

from .hk import chain_relation, hk_component_queries, hk_query
from .reductions import (
    P3_QUERY,
    TRIANGLE_QUERY,
    b5_instance,
    count_via_hk,
    edge_case_probabilities,
    hk_instance,
    p3_instance,
    triangle_instance,
    union_probability,
)
from .twodnf import Bipartite2DNF, random_formula

__all__ = [
    "Bipartite2DNF",
    "P3_QUERY",
    "TRIANGLE_QUERY",
    "b5_instance",
    "chain_relation",
    "count_via_hk",
    "edge_case_probabilities",
    "hk_component_queries",
    "hk_instance",
    "hk_query",
    "p3_instance",
    "random_formula",
    "triangle_instance",
    "union_probability",
]
