"""Grounding: matching a query (CQ or union) against a database.

``find_matches`` enumerates all satisfying assignments of one
conjunctive query's variables by backtracking joins over the stored
tuples (with per-column indexes); ``ground_lineage`` turns the matches
into a DNF :class:`~repro.lineage.boolean.Lineage`.  For answer-tuple
queries, ``ground_answer_lineages`` runs the *same single matching
pass* and groups the clauses by head valuation — one lineage per
answer tuple, instead of re-running ``find_matches`` once per answer.

The join order and per-atom lookup choices come from the cost-based
planner in :mod:`repro.lineage.planner`: a join graph over the
clause's positive sub-goals, selectivity estimates from relation
cardinalities and per-column distinct counts, greedy ordering,
semijoin filters and (for deterministic evaluation) early projections.
The seed's syntactic left-to-right order survives behind
``plan="legacy"`` — the differential harness in
``tests/test_grounding_planner.py`` pins both modes to identical
lineages.  Every entry point accepts an optional
:class:`~repro.lineage.planner.GroundingPlanner` carrying the plan
cache and the obs metrics; by default the shared
:data:`~repro.lineage.planner.DEFAULT_PLANNER` is used.

The lineage-level entry points (`ground_lineage`,
`ground_answer_lineages`, `answer_tuples`, `answers_holding`,
`query_holds`) also accept a :class:`~repro.core.union.UnionQuery`: a
UCQ lineage is still a DNF, so each disjunct is matched independently
and the clauses merge into one lineage (per answer), which is why the
compiled, Monte Carlo and brute-force tiers ride on unions unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.atoms import Atom
from ..core.predicates import Comparison
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..core.union import AnyQuery, UnionQuery, disjuncts_of
from ..db.database import GroundTuple, ProbabilisticDatabase, TupleKey
from ..db.relation import canonical_row_key
from .boolean import Lineage, Literal, make_lineage
from .planner import (
    DEFAULT_PLANNER,
    GroundingError,
    GroundingPlan,
    GroundingPlanner,
    StepPlan,
)

Assignment = Dict[Variable, object]

#: ``plan=`` argument: a mode name or a pre-built plan.
PlanLike = Union[None, str, GroundingPlan]


def find_matches(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    *,
    plan: PlanLike = None,
    planner: Optional[GroundingPlanner] = None,
) -> List[Assignment]:
    """All assignments making every *positive* sub-goal a stored tuple
    and satisfying all arithmetic predicates.

    Negated sub-goals do not restrict matching here (their tuples need
    not exist); they are interpreted by the lineage construction.
    Variables occurring only in negated sub-goals are rejected — the
    query would not be range-restricted.

    ``plan`` selects the join order: ``None`` defers to the planner
    (cost-based by default), ``"legacy"`` forces the seed's syntactic
    order, ``"cost"`` forces the join-graph planner, and a pre-built
    :class:`~repro.lineage.planner.GroundingPlan` is executed as-is.
    """
    if isinstance(query, UnionQuery):
        raise TypeError(
            "find_matches works per disjunct; iterate UnionQuery.disjuncts "
            "or use the lineage-level entry points"
        )
    resolved, planner = _resolve_plan(query, db, plan, planner)
    matches, candidates = _planned_matches(resolved, db)
    planner.observe_candidates(candidates, resolved.mode)
    return matches


def query_holds(
    query: AnyQuery,
    db: ProbabilisticDatabase,
    *,
    planner: Optional[GroundingPlanner] = None,
) -> bool:
    """True iff the query has at least one match (deterministic check).

    A union holds when any disjunct holds.
    """
    return any(_cq_holds(d, db, planner) for d in disjuncts_of(query))


def _cq_holds(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    planner: Optional[GroundingPlanner] = None,
) -> bool:
    resolved, planner = _resolve_plan(
        query, db, None, planner, distinct=True
    )
    if resolved.unsatisfiable:
        return False
    lookups, assignment, counter = _prepare_execution(resolved, db)
    if lookups is None:
        return _predicates_hold(query.predicates, assignment) and \
            _negatives_absent(query, db, assignment)
    steps = resolved.steps

    def backtrack(step: int) -> bool:
        if step == len(steps):
            return _negatives_absent(query, db, assignment)
        lookup = lookups[step]
        rows = lookup.candidates(assignment)
        counter[0] += len(rows)
        atom = steps[step].atom
        predicates = steps[step].predicates
        for row in rows:
            added = _bind(atom, row, assignment)
            if added is None:
                continue
            if predicates and not _predicates_hold(predicates, assignment):
                _undo(assignment, added)
                continue
            if backtrack(step + 1):
                return True
            _undo(assignment, added)
        return False

    try:
        return backtrack(0)
    finally:
        planner.observe_candidates(counter[0], resolved.mode)


def ground_lineage(
    query: AnyQuery,
    db: ProbabilisticDatabase,
    *,
    planner: Optional[GroundingPlanner] = None,
) -> Lineage:
    """The DNF lineage of ``query`` over ``db``.

    For every match: certain positive tuples (p = 1) are dropped from
    the clause, impossible ones never match; a negated sub-goal over an
    absent tuple is vacuously true, over a certain tuple it kills the
    match, otherwise it contributes a negative literal.

    A union contributes the clauses of every disjunct into one shared
    DNF (`make_lineage` dedupes and absorbs across disjuncts), so a
    UCQ lineage is indistinguishable from a CQ lineage downstream.

    ``query`` is treated as Boolean (an explicit head is ignored); use
    :func:`ground_answer_lineages` for per-answer lineages.
    """
    weights: Dict[TupleKey, float] = {}
    clauses: List[List[Literal]] = []
    for disjunct in disjuncts_of(query):
        for assignment in find_matches(disjunct, db, planner=planner):
            clause = _match_clause(disjunct, db, assignment, weights)
            if clause is not None:
                clauses.append(clause)
    return make_lineage(clauses, weights)


def ground_answer_lineages(
    query: AnyQuery,
    db: ProbabilisticDatabase,
    *,
    planner: Optional[GroundingPlanner] = None,
) -> Dict[GroundTuple, Lineage]:
    """Per-answer lineages from one shared matching pass.

    Runs ``find_matches`` exactly once per disjunct, groups the matches
    by head valuation — for a union, *across* disjuncts, each bound
    through its own head — and builds one DNF lineage per answer tuple
    over one shared weight map.  Answers whose every match is dead
    (impossible tuples) get a false lineage.  The result is ordered
    canonically by answer tuple.
    """
    if query.head is None:
        raise ValueError(f"query has no head variables: {query}")
    weights: Dict[TupleKey, float] = {}
    grouped: Dict[GroundTuple, List[List[Literal]]] = {}
    for disjunct in disjuncts_of(query):
        head = disjunct.head
        for assignment in find_matches(disjunct, db, planner=planner):
            answer = tuple(
                term.value if isinstance(term, Constant) else assignment[term]
                for term in head
            )
            clauses = grouped.setdefault(answer, [])
            clause = _match_clause(disjunct, db, assignment, weights)
            if clause is not None:
                clauses.append(clause)
    return {
        answer: make_lineage(grouped[answer], weights)
        for answer in sorted(grouped, key=canonical_row_key)
    }


def answer_tuples(
    query: AnyQuery,
    db: ProbabilisticDatabase,
    *,
    planner: Optional[GroundingPlanner] = None,
) -> List[GroundTuple]:
    """Candidate answer tuples: head valuations with at least one
    match whose lineage is not identically false."""
    return [
        answer
        for answer, lineage in ground_answer_lineages(
            query, db, planner=planner
        ).items()
        if not lineage.is_false
    ]


def answers_holding(
    query: AnyQuery,
    db: ProbabilisticDatabase,
    *,
    planner: Optional[GroundingPlanner] = None,
) -> Set[GroundTuple]:
    """Answer tuples true on ``db`` read as a *deterministic* instance
    (negated sub-goals must be absent).  A union's answers are the
    union of its disjuncts' answers.  Used by world enumeration.

    Runs in *distinct* mode: the planner may deduplicate candidate
    rows on the columns that matter downstream (early projection) —
    sound here because only the set of head valuations is returned.
    """
    if query.head is None:
        raise ValueError(f"query has no head variables: {query}")
    answers: Set[GroundTuple] = set()
    for disjunct in disjuncts_of(query):
        head = disjunct.head
        resolved, resolved_planner = _resolve_plan(
            disjunct, db, None, planner, distinct=True
        )
        matches, candidates = _planned_matches(resolved, db)
        resolved_planner.observe_candidates(candidates, resolved.mode)
        for assignment in matches:
            if not _negatives_absent(disjunct, db, assignment):
                continue
            answers.add(tuple(
                term.value if isinstance(term, Constant) else assignment[term]
                for term in head
            ))
    return answers


def _match_clause(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    assignment: Assignment,
    weights: Dict[TupleKey, float],
) -> Optional[List[Literal]]:
    """The clause of one match, or None when the match is dead."""
    clause: List[Literal] = []
    for atom in query.atoms:
        row = _ground_row(atom, assignment)
        key: TupleKey = (atom.relation, row)
        prob = float(db.probability(atom.relation, row))
        if atom.negated:
            if prob >= 1.0:
                return None
            if prob <= 0.0:
                continue
            weights[key] = prob
            clause.append((key, False))
        else:
            if prob >= 1.0:
                continue
            if prob <= 0.0:
                return None
            weights[key] = prob
            clause.append((key, True))
    return clause


# ----------------------------------------------------------------------
# Plan resolution and execution
# ----------------------------------------------------------------------


def _resolve_plan(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    plan: PlanLike,
    planner: Optional[GroundingPlanner],
    distinct: bool = False,
) -> Tuple[GroundingPlan, GroundingPlanner]:
    planner = planner if planner is not None else DEFAULT_PLANNER
    if isinstance(plan, GroundingPlan):
        return plan, planner
    if plan is not None and plan not in ("legacy", "cost"):
        raise ValueError(
            f"plan must be None, 'legacy', 'cost' or a GroundingPlan, "
            f"got {plan!r}"
        )
    return (
        planner.plan_clause(query, db, distinct=distinct, mode=plan),
        planner,
    )


def _prepare_execution(
    plan: GroundingPlan, db: ProbabilisticDatabase
):
    """Lookups, the seeded assignment and a candidate counter.

    Returns ``(None, assignment, counter)`` for empty plans (no
    positive sub-goals): the caller then evaluates the clause's
    (necessarily ground) predicates against the empty assignment.
    """
    assignment: Assignment = dict(plan.prebound)
    counter = [0]
    if not plan.steps:
        return None, assignment, counter
    lookups = [_AtomLookup(step, db) for step in plan.steps]
    return lookups, assignment, counter


def _planned_matches(
    plan: GroundingPlan, db: ProbabilisticDatabase
) -> Tuple[List[Assignment], int]:
    """Execute one plan, returning matches and the candidate count."""
    if plan.unsatisfiable:
        return [], 0
    query = plan.clause
    lookups, assignment, counter = _prepare_execution(plan, db)
    if lookups is None:
        if _predicates_hold(query.predicates, assignment):
            return [dict(assignment)], 0
        return [], 0
    steps = plan.steps
    matches: List[Assignment] = []

    def backtrack(step: int) -> None:
        if step == len(steps):
            matches.append(dict(assignment))
            return
        lookup = lookups[step]
        rows = lookup.candidates(assignment)
        counter[0] += len(rows)
        atom = steps[step].atom
        predicates = steps[step].predicates
        for row in rows:
            added = _bind(atom, row, assignment)
            if added is None:
                continue
            if predicates and not _predicates_hold(predicates, assignment):
                _undo(assignment, added)
                continue
            backtrack(step + 1)
            _undo(assignment, added)

    backtrack(0)
    return matches, counter[0]


class _AtomLookup:
    """Pre-resolved candidate source for one step of the join order.

    The probe shape is decided by the planner (see
    :class:`~repro.lineage.planner.StepPlan`); this class binds it to
    the live database once per search:

    * ``constant`` — the matching rows are prefetched outright;
    * ``index`` — the per-column index dict is prefetched, so each
      step is ``index.get(assignment[var])``;
    * ``scan`` — the full relation, materialized once.

    Semijoin filters and (distinct mode) projections are applied when
    the base list materializes; filtered index probes are cached per
    probed value, so revisiting a join value during backtracking never
    refilters.
    """

    __slots__ = ("relation", "rows", "index", "variable",
                 "filters", "projection", "_filtered")

    def __init__(self, step: StepPlan, db: ProbabilisticDatabase) -> None:
        self.relation = db.relation(step.atom.relation)
        self.rows: Optional[list] = None
        self.index: Optional[Dict] = None
        self.variable: Optional[Variable] = None
        self.filters: Tuple[Tuple[int, Dict], ...] = tuple(
            (position, db.relation(other).index_on(other_position))
            for position, other, other_position in step.semijoins
        )
        self.projection = step.projection
        self._filtered: Optional[Dict] = None
        if step.probe == "constant":
            base = self.relation.matching(step.probe_position, step.probe_value)
            self.rows = self._reduce(base)
        elif step.probe == "index":
            self.index = self.relation.index_on(step.probe_position)
            self.variable = step.probe_variable
            if self.filters or self.projection is not None:
                self._filtered = {}
        else:
            self.rows = self._reduce(list(self.relation.tuples()))

    def _reduce(self, rows: list) -> list:
        """Apply semijoin filters, then projection-deduplication."""
        if self.filters:
            filters = self.filters
            rows = [
                row for row in rows
                if all(row[position] in keys for position, keys in filters)
            ]
        if self.projection is not None and len(rows) > 1:
            projection = self.projection
            seen = set()
            kept = []
            for row in rows:
                key = tuple(row[position] for position in projection)
                if key not in seen:
                    seen.add(key)
                    kept.append(row)
            rows = kept
        return rows

    def candidates(self, assignment: Assignment) -> list:
        if self.rows is not None:
            return self.rows
        value = assignment[self.variable]
        if self._filtered is None:
            return self.index.get(value, _NO_ROWS)
        cached = self._filtered.get(value)
        if cached is None:
            cached = self._reduce(self.index.get(value, _NO_ROWS))
            self._filtered[value] = cached
        return cached


_NO_ROWS: list = []


def _bind(atom: Atom, row: Tuple, assignment: Assignment) -> Optional[List[Variable]]:
    added: List[Variable] = []
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                _undo(assignment, added)
                return None
            continue
        bound = assignment.get(term, _MISSING)
        if bound is _MISSING:
            assignment[term] = value
            added.append(term)
        elif bound != value:
            _undo(assignment, added)
            return None
    return added


def _undo(assignment: Assignment, added: List[Variable]) -> None:
    for variable in added:
        del assignment[variable]


_MISSING = object()


def _predicates_hold(
    predicates: Sequence[Comparison], assignment: Assignment
) -> bool:
    for pred in predicates:
        left = pred.left.value if isinstance(pred.left, Constant) else assignment[pred.left]
        right = pred.right.value if isinstance(pred.right, Constant) else assignment[pred.right]
        try:
            ok = pred.evaluate(left, right)
        except TypeError:
            ok = pred.evaluate(
                (type(left).__name__, str(left)), (type(right).__name__, str(right))
            )
        if not ok:
            return False
    return True


def _negatives_absent(
    query: ConjunctiveQuery, db: ProbabilisticDatabase, assignment: Assignment
) -> bool:
    for atom in query.negative_atoms:
        row = _ground_row(atom, assignment)
        if row in db.relation(atom.relation):
            return False
    return True


def _ground_row(atom: Atom, assignment: Assignment) -> Tuple:
    return tuple(
        term.value if isinstance(term, Constant) else assignment[term]
        for term in atom.terms
    )
