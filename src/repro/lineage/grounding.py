"""Grounding: matching a query (CQ or union) against a database.

``find_matches`` enumerates all satisfying assignments of one
conjunctive query's variables by backtracking joins over the stored
tuples (with per-column indexes); ``ground_lineage`` turns the matches
into a DNF :class:`~repro.lineage.boolean.Lineage`.  For answer-tuple
queries, ``ground_answer_lineages`` runs the *same single matching
pass* and groups the clauses by head valuation — one lineage per
answer tuple, instead of re-running ``find_matches`` once per answer.

The lineage-level entry points (`ground_lineage`,
`ground_answer_lineages`, `answer_tuples`, `answers_holding`,
`query_holds`) also accept a :class:`~repro.core.union.UnionQuery`: a
UCQ lineage is still a DNF, so each disjunct is matched independently
and the clauses merge into one lineage (per answer), which is why the
compiled, Monte Carlo and brute-force tiers ride on unions unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.predicates import Comparison
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..core.union import AnyQuery, UnionQuery, disjuncts_of
from ..db.database import GroundTuple, ProbabilisticDatabase, TupleKey
from ..db.relation import canonical_row_key
from .boolean import Lineage, Literal, make_lineage

Assignment = Dict[Variable, object]


def find_matches(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> List[Assignment]:
    """All assignments making every *positive* sub-goal a stored tuple
    and satisfying all arithmetic predicates.

    Negated sub-goals do not restrict matching here (their tuples need
    not exist); they are interpreted by the lineage construction.
    Variables occurring only in negated sub-goals are rejected — the
    query would not be range-restricted.
    """
    if isinstance(query, UnionQuery):
        raise TypeError(
            "find_matches works per disjunct; iterate UnionQuery.disjuncts "
            "or use the lineage-level entry points"
        )
    positive = [a for a in query.atoms if not a.negated]
    restricted = set()
    for atom in positive:
        restricted.update(atom.variables)
    if any(v not in restricted for v in query.variables):
        missing = [v.name for v in query.variables if v not in restricted]
        raise ValueError(f"query is not range-restricted: {missing} "
                         f"occur only in negated sub-goals or predicates")
    order = _plan(positive)
    lookups = _build_lookups(order, db)
    matches: List[Assignment] = []
    assignment: Assignment = {}

    def backtrack(step: int) -> None:
        if step == len(order):
            if _predicates_hold(query.predicates, assignment):
                matches.append(dict(assignment))
            return
        atom = order[step]
        for row in lookups[step].candidates(assignment):
            added = _bind(atom, row, assignment)
            if added is None:
                continue
            backtrack(step + 1)
            for variable in added:
                del assignment[variable]

    backtrack(0)
    return matches


def query_holds(query: AnyQuery, db: ProbabilisticDatabase) -> bool:
    """True iff the query has at least one match (deterministic check).

    A union holds when any disjunct holds.
    """
    return any(_cq_holds(d, db) for d in disjuncts_of(query))


def _cq_holds(query: ConjunctiveQuery, db: ProbabilisticDatabase) -> bool:
    positive = [a for a in query.atoms if not a.negated]
    order = _plan(positive)
    lookups = _build_lookups(order, db)
    assignment: Assignment = {}

    def backtrack(step: int) -> bool:
        if step == len(order):
            if not _predicates_hold(query.predicates, assignment):
                return False
            return _negatives_absent(query, db, assignment)
        atom = order[step]
        for row in lookups[step].candidates(assignment):
            added = _bind(atom, row, assignment)
            if added is None:
                continue
            if backtrack(step + 1):
                return True
            for variable in added:
                del assignment[variable]
        return False

    return backtrack(0)


def ground_lineage(
    query: AnyQuery, db: ProbabilisticDatabase
) -> Lineage:
    """The DNF lineage of ``query`` over ``db``.

    For every match: certain positive tuples (p = 1) are dropped from
    the clause, impossible ones never match; a negated sub-goal over an
    absent tuple is vacuously true, over a certain tuple it kills the
    match, otherwise it contributes a negative literal.

    A union contributes the clauses of every disjunct into one shared
    DNF (`make_lineage` dedupes and absorbs across disjuncts), so a
    UCQ lineage is indistinguishable from a CQ lineage downstream.

    ``query`` is treated as Boolean (an explicit head is ignored); use
    :func:`ground_answer_lineages` for per-answer lineages.
    """
    weights: Dict[TupleKey, float] = {}
    clauses: List[List[Literal]] = []
    for disjunct in disjuncts_of(query):
        for assignment in find_matches(disjunct, db):
            clause = _match_clause(disjunct, db, assignment, weights)
            if clause is not None:
                clauses.append(clause)
    return make_lineage(clauses, weights)


def ground_answer_lineages(
    query: AnyQuery, db: ProbabilisticDatabase
) -> Dict[GroundTuple, Lineage]:
    """Per-answer lineages from one shared matching pass.

    Runs ``find_matches`` exactly once per disjunct, groups the matches
    by head valuation — for a union, *across* disjuncts, each bound
    through its own head — and builds one DNF lineage per answer tuple
    over one shared weight map.  Answers whose every match is dead
    (impossible tuples) get a false lineage.  The result is ordered
    canonically by answer tuple.
    """
    if query.head is None:
        raise ValueError(f"query has no head variables: {query}")
    weights: Dict[TupleKey, float] = {}
    grouped: Dict[GroundTuple, List[List[Literal]]] = {}
    for disjunct in disjuncts_of(query):
        head = disjunct.head
        for assignment in find_matches(disjunct, db):
            answer = tuple(
                term.value if isinstance(term, Constant) else assignment[term]
                for term in head
            )
            clauses = grouped.setdefault(answer, [])
            clause = _match_clause(disjunct, db, assignment, weights)
            if clause is not None:
                clauses.append(clause)
    return {
        answer: make_lineage(grouped[answer], weights)
        for answer in sorted(grouped, key=canonical_row_key)
    }


def answer_tuples(
    query: AnyQuery, db: ProbabilisticDatabase
) -> List[GroundTuple]:
    """Candidate answer tuples: head valuations with at least one
    match whose lineage is not identically false."""
    return [
        answer
        for answer, lineage in ground_answer_lineages(query, db).items()
        if not lineage.is_false
    ]


def answers_holding(
    query: AnyQuery, db: ProbabilisticDatabase
) -> Set[GroundTuple]:
    """Answer tuples true on ``db`` read as a *deterministic* instance
    (negated sub-goals must be absent).  A union's answers are the
    union of its disjuncts' answers.  Used by world enumeration."""
    if query.head is None:
        raise ValueError(f"query has no head variables: {query}")
    answers: Set[GroundTuple] = set()
    for disjunct in disjuncts_of(query):
        head = disjunct.head
        for assignment in find_matches(disjunct, db):
            if not _negatives_absent(disjunct, db, assignment):
                continue
            answers.add(tuple(
                term.value if isinstance(term, Constant) else assignment[term]
                for term in head
            ))
    return answers


def _match_clause(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    assignment: Assignment,
    weights: Dict[TupleKey, float],
) -> Optional[List[Literal]]:
    """The clause of one match, or None when the match is dead."""
    clause: List[Literal] = []
    for atom in query.atoms:
        row = _ground_row(atom, assignment)
        key: TupleKey = (atom.relation, row)
        prob = float(db.probability(atom.relation, row))
        if atom.negated:
            if prob >= 1.0:
                return None
            if prob <= 0.0:
                continue
            weights[key] = prob
            clause.append((key, False))
        else:
            if prob >= 1.0:
                continue
            if prob <= 0.0:
                return None
            weights[key] = prob
            clause.append((key, True))
    return clause


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _plan(atoms: Sequence[Atom]) -> List[Atom]:
    """Greedy join order: start with the most-constant atom, then
    always pick an atom sharing a bound variable when possible."""
    remaining = list(atoms)
    if not remaining:
        return []
    order: List[Atom] = []
    bound: set = set()
    remaining.sort(key=lambda a: (-len(a.constants), len(a.variables)))
    while remaining:
        connected = [a for a in remaining if bound & set(a.variables)]
        chosen = connected[0] if connected else remaining[0]
        remaining.remove(chosen)
        order.append(chosen)
        bound.update(chosen.variables)
    return order


class _AtomLookup:
    """Pre-resolved candidate source for one atom of the join order.

    The scalar backtracker used to re-scan the atom's terms (and rebuild
    the relation's column index lookup) on *every* backtrack step; the
    plan is fully determined before the search starts, because the set
    of bound variables at each step is exactly the variables of the
    earlier atoms in the order.  One of three shapes, resolved once:

    * a constant column — the matching rows are prefetched outright;
    * a variable bound by an earlier atom — the per-column index dict is
      prefetched, so each step is ``index.get(assignment[var])``;
    * neither — a full relation scan.

    Mirrors the old term-order preference: the first constant *or*
    bound variable in term order wins.
    """

    __slots__ = ("relation", "rows", "index", "variable")

    def __init__(self, atom: Atom, db: ProbabilisticDatabase, bound) -> None:
        self.relation = db.relation(atom.relation)
        self.rows: Optional[list] = None
        self.index: Optional[Dict] = None
        self.variable: Optional[Variable] = None
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                self.rows = self.relation.matching(position, term.value)
                return
            if term in bound:
                self.index = self.relation.index_on(position)
                self.variable = term
                return

    def candidates(self, assignment: Assignment):
        if self.rows is not None:
            return self.rows
        if self.index is not None:
            return self.index.get(assignment[self.variable], _NO_ROWS)
        return self.relation.tuples()


_NO_ROWS: Tuple = ()


def _build_lookups(
    order: Sequence[Atom], db: ProbabilisticDatabase
) -> List[_AtomLookup]:
    lookups: List[_AtomLookup] = []
    bound: Set[Variable] = set()
    for atom in order:
        lookups.append(_AtomLookup(atom, db, bound))
        bound.update(atom.variables)
    return lookups


def _bind(atom: Atom, row: Tuple, assignment: Assignment) -> Optional[List[Variable]]:
    added: List[Variable] = []
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                _undo(assignment, added)
                return None
            continue
        bound = assignment.get(term, _MISSING)
        if bound is _MISSING:
            assignment[term] = value
            added.append(term)
        elif bound != value:
            _undo(assignment, added)
            return None
    return added


def _undo(assignment: Assignment, added: List[Variable]) -> None:
    for variable in added:
        del assignment[variable]


_MISSING = object()


def _predicates_hold(
    predicates: Sequence[Comparison], assignment: Assignment
) -> bool:
    for pred in predicates:
        left = pred.left.value if isinstance(pred.left, Constant) else assignment[pred.left]
        right = pred.right.value if isinstance(pred.right, Constant) else assignment[pred.right]
        try:
            ok = pred.evaluate(left, right)
        except TypeError:
            ok = pred.evaluate(
                (type(left).__name__, str(left)), (type(right).__name__, str(right))
            )
        if not ok:
            return False
    return True


def _negatives_absent(
    query: ConjunctiveQuery, db: ProbabilisticDatabase, assignment: Assignment
) -> bool:
    for atom in query.negative_atoms:
        row = _ground_row(atom, assignment)
        if row in db.relation(atom.relation):
            return False
    return True


def _ground_row(atom: Atom, assignment: Assignment) -> Tuple:
    return tuple(
        term.value if isinstance(term, Constant) else assignment[term]
        for term in atom.terms
    )
