"""Cost-based grounding planner: join graph, greedy order, filters.

Grounding is a per-clause backtracking search (:mod:`.grounding`); its
cost is dominated by the *join order* — which sub-goal enumerates its
candidate rows at which depth — and by how early doomed candidates are
pruned.  The seed planner ordered atoms left-to-right by a purely
syntactic heuristic (most constants first, then connectivity) and
probed each atom through the **first** constant-or-bound column in
term order.  On skewed large-domain instances that order can start
with a hundred-thousand-row fact table instead of a ten-row dimension
table, and the difference is orders of magnitude.

This module replaces that heuristic with a small cost-based optimizer
in the shape of plado's datalog evaluator (``construct_join_graph`` /
``GreedyOptimizer`` / filter and projection insertion):

* **Join graph** — :func:`build_join_graph` connects the clause's
  positive sub-goals through their shared variables; the planner walks
  it greedily.

* **Cost model** — per-atom cardinalities (``len(relation)``) and
  per-column distinct counts (:meth:`~repro.db.relation.Relation.
  distinct_count`, backed by the same column indexes the executor
  probes) yield an estimated candidate count for every (atom, bound
  set) pair.  Constant columns are estimated *exactly* from the column
  index.

* **Greedy join order** — repeatedly take the cheapest remaining atom,
  preferring atoms connected to already-bound variables (avoiding
  accidental cartesian products), and probe each atom through its
  *most selective* bound column — not the first one in term order —
  preferring columns whose index already exists on ties.

* **Equality pre-binding** — an order predicate ``x = c`` binds ``x``
  before any atom is probed, turning index probes into constant
  prefetches; every other predicate is checked at the earliest step
  where its variables are bound instead of only after a full match.

* **Semijoin filters** — a step that enumerates a large candidate list
  drops rows whose join-column value cannot appear in a *smaller*
  joining column (membership in the other relation's index keys).
  Filters only remove rows that could never complete a match, so the
  produced lineage is bit-identical.

* **Early projections** — in *distinct* mode (deterministic
  evaluation: :func:`~repro.lineage.grounding.query_holds`,
  :func:`~repro.lineage.grounding.answers_holding`) candidate rows are
  deduplicated on the columns that still matter downstream (head,
  predicates, negated sub-goals, later joins).  Projection changes
  match multiplicity, never the answer-tuple set, so it stays off in
  lineage mode where every match is one DNF clause.

The legacy behaviour is kept behind ``mode="legacy"`` (or
``find_matches(..., plan="legacy")``): same order, same probe choice,
predicates evaluated only on complete matches.  The differential
harness in ``tests/test_grounding_planner.py`` pins the planned and
legacy groundings to identical lineages across the query zoo and
seeded random CQs/UCQs.

Plans are cached per clause *shape* and database *structure* (relation
structure versions), so a serving-layer reweight — which never changes
which tuples ground a query — reuses the plan outright; see
:class:`GroundingPlanner`.  Planning time and executor candidate
counts land in the obs spine as ``repro_grounding_plan_seconds`` and
``repro_grounding_candidates_total``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.predicates import Comparison
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..db.database import ProbabilisticDatabase
from ..obs.metrics import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "DEFAULT_PLANNER",
    "GroundingError",
    "GroundingPlan",
    "GroundingPlanner",
    "JoinGraph",
    "StepPlan",
    "build_join_graph",
]


class GroundingError(ValueError):
    """A clause cannot be grounded as written.

    Subclasses :class:`ValueError` so existing callers catching the
    seed's range-restriction error keep working.
    """


# ----------------------------------------------------------------------
# Join graph
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JoinEdge:
    """An edge of the join graph: two atoms sharing ``variables``."""

    left: int
    right: int
    variables: Tuple[Variable, ...]


@dataclass(frozen=True)
class JoinGraph:
    """The variable-sharing graph over a clause's positive sub-goals."""

    atoms: Tuple[Atom, ...]
    edges: Tuple[JoinEdge, ...]

    def neighbors(self, index: int) -> FrozenSet[int]:
        """Atom indices joined (sharing a variable) with ``index``."""
        out: Set[int] = set()
        for edge in self.edges:
            if edge.left == index:
                out.add(edge.right)
            elif edge.right == index:
                out.add(edge.left)
        return frozenset(out)

    def is_connected(self) -> bool:
        """True when every atom is reachable from the first."""
        if len(self.atoms) <= 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            for neighbor in self.neighbors(frontier.pop()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.atoms)


def build_join_graph(atoms: Sequence[Atom]) -> JoinGraph:
    """The join graph over ``atoms`` (one node per atom, one edge per
    variable-sharing pair, labeled with the shared variables)."""
    atoms = tuple(atoms)
    occurrences: Dict[Variable, List[int]] = {}
    for index, atom in enumerate(atoms):
        for variable in atom.variables:
            slots = occurrences.setdefault(variable, [])
            if not slots or slots[-1] != index:
                slots.append(index)
    shared: Dict[Tuple[int, int], List[Variable]] = {}
    for variable, indices in occurrences.items():
        for i, left in enumerate(indices):
            for right in indices[i + 1:]:
                shared.setdefault((left, right), []).append(variable)
    edges = tuple(
        JoinEdge(left, right, tuple(variables))
        for (left, right), variables in sorted(shared.items())
    )
    return JoinGraph(atoms, edges)


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------

#: A semijoin filter: candidate rows must have ``row[position]`` among
#: the values of ``other_relation``'s column ``other_position``.
SemijoinFilter = Tuple[int, str, int]


@dataclass(frozen=True)
class StepPlan:
    """One step of the planned join order.

    ``probe`` is how the executor fetches candidates:

    * ``"constant"`` — prefetch rows matching ``probe_value`` at
      ``probe_position`` (column index, built once);
    * ``"index"`` — per-step dict lookup of the bound
      ``probe_variable``'s value in the column index at
      ``probe_position``;
    * ``"scan"`` — the full relation.

    ``semijoins`` prune candidates by join-column membership;
    ``predicates`` are the order predicates checkable as soon as this
    step binds; ``projection`` (distinct mode only) lists the column
    positions candidates are deduplicated on, or ``None``.
    """

    atom: Atom
    probe: str
    probe_position: Optional[int] = None
    probe_value: Optional[object] = None
    probe_variable: Optional[Variable] = None
    semijoins: Tuple[SemijoinFilter, ...] = ()
    predicates: Tuple[Comparison, ...] = ()
    projection: Optional[Tuple[int, ...]] = None
    estimated_rows: float = 0.0

    def describe(self) -> str:
        atom = str(self.atom)
        if self.probe == "constant":
            how = f"const@{self.probe_position}"
        elif self.probe == "index":
            how = f"ix@{self.probe_position}"
        else:
            how = "scan"
        extras = []
        if self.semijoins:
            extras.append("⋉" + ",".join(
                f"{pos}∈{rel}[{other}]" for pos, rel, other in self.semijoins
            ))
        if self.predicates:
            extras.append("σ" + ",".join(str(p) for p in self.predicates))
        if self.projection is not None:
            extras.append("π" + ",".join(str(p) for p in self.projection))
        suffix = (" " + " ".join(extras)) if extras else ""
        return f"{atom}[{how}~{self.estimated_rows:.0f}]{suffix}"


@dataclass(frozen=True)
class GroundingPlan:
    """A fully-resolved execution order for one clause.

    ``prebound`` carries variable bindings harvested from ``x = c``
    order predicates (applied before any atom is probed);
    ``unsatisfiable`` marks clauses whose ground/equality predicates
    are contradictory — the executor returns no matches without
    touching the database.  ``cost`` is the estimated total number of
    candidate rows enumerated (the greedy objective), comparable
    between plans for the same clause only.
    """

    clause: ConjunctiveQuery
    mode: str
    steps: Tuple[StepPlan, ...]
    prebound: Tuple[Tuple[Variable, object], ...] = ()
    unsatisfiable: bool = False
    cost: float = 0.0
    distinct: bool = False
    plan_seconds: float = 0.0

    @property
    def order(self) -> Tuple[Atom, ...]:
        """The planned atom order (positive sub-goals only)."""
        return tuple(step.atom for step in self.steps)

    def describe(self) -> str:
        """A one-line rendering, e.g. for RoutingDecision / logs."""
        if self.unsatisfiable:
            return f"{self.mode}: unsatisfiable predicates"
        body = " → ".join(step.describe() for step in self.steps) or "⊤"
        bound = (
            " {" + ", ".join(f"{v}={val!r}" for v, val in self.prebound) + "}"
            if self.prebound else ""
        )
        return f"{self.mode}: {body}{bound} (est {self.cost:.0f} rows)"


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------

#: Insert a semijoin filter only when the joining column's value set is
#: at most this fraction of the filtered column's distinct count — a
#: filter that barely prunes is pure overhead on the hot path.
SEMIJOIN_SELECTIVITY = 0.5

#: Default bound on cached plans per planner (LRU, oldest out).
PLAN_CACHE_LIMIT = 512


class GroundingPlanner:
    """Plans clause groundings, with caching and telemetry.

    Args:
        mode: ``"cost"`` (the join-graph planner) or ``"legacy"`` (the
            seed's syntactic order, kept for differential testing).
        metrics: obs registry receiving ``repro_grounding_plan_seconds``
            (histogram, labeled by mode) and
            ``repro_grounding_candidates_total`` (counter, labeled by
            mode) — the :data:`DEFAULT_PLANNER` uses the shared no-op
            registry.
        cache_limit: LRU capacity of the plan cache.

    The cache key is ``(clause, distinct, relation structure
    versions)``: plans carry only column positions and decisions —
    never materialized rows — so a stale hit could at worst execute a
    suboptimal order, and structure versions make even that impossible
    while only *probabilities* drift (the serving layer's reweight
    path).  This is what lets :class:`~repro.serve.QuerySession`-
    prepared queries reuse plans across reweights for free.
    """

    def __init__(
        self,
        mode: str = "cost",
        metrics: Optional[MetricsRegistry] = None,
        cache_limit: int = PLAN_CACHE_LIMIT,
    ) -> None:
        if mode not in ("cost", "legacy"):
            raise ValueError(f"unknown planner mode {mode!r}")
        if cache_limit <= 0:
            raise ValueError(f"cache_limit must be positive, got {cache_limit}")
        self.mode = mode
        self.cache_limit = cache_limit
        self._cache: "OrderedDict[tuple, GroundingPlan]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._metric_plan_seconds = registry.histogram(
            "repro_grounding_plan_seconds",
            "Time spent planning one clause's grounding order",
            ("mode",),
        )
        self._metric_candidates = registry.counter(
            "repro_grounding_candidates_total",
            "Candidate rows enumerated by the grounding executor",
            ("mode",),
        )

    # -- telemetry ------------------------------------------------------

    def observe_candidates(self, count: int, mode: Optional[str] = None) -> None:
        """Fold one search's enumerated-candidate count into the spine."""
        if count:
            self._metric_candidates.labels(mode or self.mode).inc(count)

    # -- planning -------------------------------------------------------

    def plan_clause(
        self,
        clause: ConjunctiveQuery,
        db: ProbabilisticDatabase,
        *,
        distinct: bool = False,
        mode: Optional[str] = None,
    ) -> GroundingPlan:
        """The (cached) plan for one conjunctive clause.

        Raises:
            GroundingError: the clause is not range-restricted, or has
                no positive sub-goals while its order predicates or
                negated sub-goals reference variables nothing binds.
        """
        mode = mode or self.mode
        positive = [a for a in clause.atoms if not a.negated]
        _check_groundable(clause, positive)
        key = (
            clause, distinct, mode,
            tuple(
                (name, db.relation(name).structure_version)
                for name in sorted({a.relation for a in positive})
            ),
        )
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return cached
        start = time.perf_counter()
        if mode == "legacy":
            plan = _legacy_plan(clause, positive)
        else:
            plan = _cost_plan(clause, positive, db, distinct)
        elapsed = time.perf_counter() - start
        plan = _with_plan_seconds(plan, elapsed)
        self._metric_plan_seconds.labels(mode).observe(elapsed)
        self.cache_misses += 1
        self._cache[key] = plan
        while len(self._cache) > self.cache_limit:
            self._cache.popitem(last=False)
        return plan

    def describe_cached(
        self, query, db: Optional[ProbabilisticDatabase] = None
    ) -> Optional[str]:
        """The cached plan description(s) for ``query``, if planned.

        Purely introspective — never plans.  For a union the per-
        disjunct descriptions join with ``" | "``; ``None`` when no
        disjunct has a cached plan (e.g. the query went to a safe
        tier and was never grounded).
        """
        from ..core.union import disjuncts_of  # local: avoid cycle

        parts: List[str] = []
        for disjunct in disjuncts_of(query):
            described = None
            for key in reversed(self._cache):
                if key[0] == disjunct:
                    described = self._cache[key].describe()
                    break
            if described:
                parts.append(described)
        return " | ".join(parts) if parts else None

    def clear(self) -> None:
        """Drop every cached plan."""
        self._cache.clear()


#: Shared default planner: engines that are not handed one use this —
#: plan caching still applies, telemetry goes to the no-op registry.
DEFAULT_PLANNER = GroundingPlanner()


# ----------------------------------------------------------------------
# Internals: validation
# ----------------------------------------------------------------------


def _check_groundable(
    clause: ConjunctiveQuery, positive: Sequence[Atom]
) -> None:
    restricted: Set[Variable] = set()
    for atom in positive:
        restricted.update(atom.variables)
    loose = [v.name for v in clause.variables if v not in restricted]
    if not loose:
        return
    if not positive:
        raise GroundingError(
            f"clause has no positive sub-goals, but its order predicates "
            f"or negated sub-goals reference variables {loose} that "
            f"nothing binds; an empty conjunction only matches when "
            f"every predicate is ground"
        )
    raise GroundingError(
        f"query is not range-restricted: {loose} "
        f"occur only in negated sub-goals or predicates"
    )


# ----------------------------------------------------------------------
# Internals: legacy plan (the seed's behaviour, verbatim)
# ----------------------------------------------------------------------


def _legacy_order(atoms: Sequence[Atom]) -> List[Atom]:
    """The seed's greedy syntactic order: most-constant atom first,
    then always an atom sharing a bound variable when possible."""
    remaining = list(atoms)
    if not remaining:
        return []
    order: List[Atom] = []
    bound: Set[Variable] = set()
    remaining.sort(key=lambda a: (-len(a.constants), len(a.variables)))
    while remaining:
        connected = [a for a in remaining if bound & set(a.variables)]
        chosen = connected[0] if connected else remaining[0]
        remaining.remove(chosen)
        order.append(chosen)
        bound.update(chosen.variables)
    return order


def _legacy_plan(
    clause: ConjunctiveQuery, positive: Sequence[Atom]
) -> GroundingPlan:
    """The seed executor's decisions as a plan: first constant-or-bound
    column in term order wins, predicates only on complete matches."""
    steps: List[StepPlan] = []
    bound: Set[Variable] = set()
    order = _legacy_order(positive)
    for step_index, atom in enumerate(order):
        probe, position, value, variable = "scan", None, None, None
        for term_position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                probe, position, value = "constant", term_position, term.value
                break
            if term in bound:
                probe, position, variable = "index", term_position, term
                break
        predicates = clause.predicates if step_index == len(order) - 1 else ()
        steps.append(StepPlan(
            atom=atom, probe=probe, probe_position=position,
            probe_value=value, probe_variable=variable,
            predicates=tuple(predicates),
        ))
        bound.update(atom.variables)
    return GroundingPlan(
        clause=clause, mode="legacy", steps=tuple(steps),
        # With no atoms the legacy executor still checks the (ground)
        # predicates once against the empty assignment.
        prebound=(),
    )


# ----------------------------------------------------------------------
# Internals: cost-based plan
# ----------------------------------------------------------------------


def _cost_plan(
    clause: ConjunctiveQuery,
    positive: Sequence[Atom],
    db: ProbabilisticDatabase,
    distinct: bool,
) -> GroundingPlan:
    prebound, equalities, unsatisfiable = _harvest_equalities(clause)
    if unsatisfiable:
        return GroundingPlan(
            clause=clause, mode="cost", steps=(), prebound=(),
            unsatisfiable=True, distinct=distinct,
        )
    graph = build_join_graph(positive)
    remaining = list(range(len(positive)))
    bound: Set[Variable] = set(prebound)
    steps: List[StepPlan] = []
    total_cost = 0.0
    frontier_size = 1.0
    pending = [p for p in clause.predicates if p not in equalities]
    droppable = _droppable_variables(clause, positive) if distinct else frozenset()
    while remaining:
        best = None
        for index in remaining:
            atom = positive[index]
            estimate, probe = _estimate_atom(atom, db, bound)
            # An atom probed through a constant or a bound variable is
            # "connected" to the current frontier; scans of fresh
            # components are deferred (no accidental cartesian blowup
            # mid-plan), then chosen by cost when nothing connects.
            connected = 0 if probe[0] != "scan" else 1
            candidate = (connected, estimate, str(atom), index, probe)
            if best is None or candidate[:3] < best[:3]:
                best = candidate
        _, estimate, _, index, probe = best
        atom = positive[index]
        remaining.remove(index)
        kind, position, value, variable = probe
        newly_bound = bound | set(atom.variables)
        step_predicates = tuple(
            p for p in pending
            if all(v in newly_bound for v in p.variables)
        )
        pending = [p for p in pending if p not in step_predicates]
        semijoins = _semijoin_filters(atom, position if kind != "scan" else None,
                                      clause, db, estimate)
        projection = (
            _projection_for(atom, droppable) if distinct else None
        )
        steps.append(StepPlan(
            atom=atom, probe=kind, probe_position=position,
            probe_value=value, probe_variable=variable,
            semijoins=semijoins, predicates=step_predicates,
            projection=projection, estimated_rows=estimate,
        ))
        total_cost += frontier_size * max(estimate, 1.0)
        frontier_size *= max(estimate, 1.0)
        bound = newly_bound
    # Predicates whose variables nothing binds were rejected by
    # _check_groundable; anything still pending is ground — evaluated
    # before the search starts (attach to an empty-step plan).
    steps_tuple = tuple(steps)
    if pending and steps_tuple:
        last = steps_tuple[-1]
        steps_tuple = steps_tuple[:-1] + (
            _replace_predicates(last, last.predicates + tuple(pending)),
        )
    return GroundingPlan(
        clause=clause, mode="cost", steps=steps_tuple,
        prebound=tuple(sorted(prebound.items(), key=lambda kv: kv[0].name)),
        cost=total_cost, distinct=distinct,
    )


def _replace_predicates(step: StepPlan, predicates: Tuple[Comparison, ...]) -> StepPlan:
    return StepPlan(
        atom=step.atom, probe=step.probe,
        probe_position=step.probe_position, probe_value=step.probe_value,
        probe_variable=step.probe_variable, semijoins=step.semijoins,
        predicates=predicates, projection=step.projection,
        estimated_rows=step.estimated_rows,
    )


def _with_plan_seconds(plan: GroundingPlan, seconds: float) -> GroundingPlan:
    return GroundingPlan(
        clause=plan.clause, mode=plan.mode, steps=plan.steps,
        prebound=plan.prebound, unsatisfiable=plan.unsatisfiable,
        cost=plan.cost, distinct=plan.distinct, plan_seconds=seconds,
    )


def _harvest_equalities(
    clause: ConjunctiveQuery,
) -> Tuple[Dict[Variable, object], Set[Comparison], bool]:
    """``x = c`` predicates become up-front bindings.

    Returns (bindings, predicates consumed, contradiction flag).  Only
    variable/constant equalities pre-bind; variable/variable equality
    and every other operator stay as step filters.
    """
    prebound: Dict[Variable, object] = {}
    consumed: Set[Comparison] = set()
    for predicate in clause.predicates:
        if predicate.op != "=":
            continue
        left, right = predicate.left, predicate.right
        if isinstance(left, Variable) and isinstance(right, Constant):
            variable, value = left, right.value
        elif isinstance(right, Variable) and isinstance(left, Constant):
            variable, value = right, left.value
        else:
            continue
        existing = prebound.get(variable, _MISSING)
        if existing is not _MISSING and existing != value:
            return {}, set(), True
        prebound[variable] = value
        consumed.add(predicate)
    return prebound, consumed, False


def _estimate_atom(
    atom: Atom, db: ProbabilisticDatabase, bound: Set[Variable]
) -> Tuple[float, Tuple[str, Optional[int], Optional[object], Optional[Variable]]]:
    """Estimated candidate rows and the chosen probe for one atom.

    The probe is the single most selective constant/bound column; the
    *estimate* multiplies the independent selectivities of every
    constant and bound column (the rows the executor recurses on after
    `_bind`-checking the non-probe columns), floored at one row.
    """
    relation = db.relation(atom.relation)
    cardinality = float(len(relation))
    indexed = relation.indexed_positions()
    best_rows: Optional[float] = None
    best_key: Optional[tuple] = None
    probe: Tuple[str, Optional[int], Optional[object], Optional[Variable]] = (
        "scan", None, None, None,
    )
    combined = cardinality
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            rows = float(len(relation.matching(position, term.value)))
            candidate_probe = ("constant", position, term.value, None)
        elif term in bound:
            distinct = max(1, relation.distinct_count(position))
            rows = cardinality / distinct
            candidate_probe = ("index", position, None, term)
        else:
            continue
        combined *= rows / max(cardinality, 1.0)
        # Most selective column wins; prefer an already-built index,
        # then the lowest position, for determinism.
        key = (rows, 0 if position in indexed or isinstance(term, Constant) else 1,
               position)
        if best_key is None or key < best_key:
            best_key = key
            best_rows = rows
            probe = candidate_probe
    if best_rows is None:
        return cardinality, probe
    # Combined selectivity of every checked column, floored at one row
    # unless the probe itself proves emptiness.
    estimate = max(combined, 0.0 if best_rows == 0.0 else 1.0)
    return min(estimate, best_rows), probe


def _semijoin_filters(
    atom: Atom,
    probe_position: Optional[int],
    clause: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    estimated_rows: float,
) -> Tuple[SemijoinFilter, ...]:
    """Membership filters against smaller joining columns.

    Only worthwhile when this step enumerates many rows; the filter
    set must be decisively smaller than the column's own diversity
    (:data:`SEMIJOIN_SELECTIVITY`) to pay for the per-row check.
    """
    if estimated_rows < 16:
        return ()
    relation = db.relation(atom.relation)
    filters: List[SemijoinFilter] = []
    for position, term in enumerate(atom.terms):
        if position == probe_position or not isinstance(term, Variable):
            continue
        my_distinct = max(1, relation.distinct_count(position))
        best: Optional[Tuple[int, SemijoinFilter]] = None
        for other in clause.atoms:
            if other is atom or other.negated:
                continue
            for other_position, other_term in enumerate(other.terms):
                if other_term != term:
                    continue
                other_relation = db.relation(other.relation)
                other_distinct = max(1, other_relation.distinct_count(other_position))
                if other_distinct <= my_distinct * SEMIJOIN_SELECTIVITY:
                    entry = (other_distinct,
                             (position, other.relation, other_position))
                    if best is None or entry[0] < best[0]:
                        best = entry
        if best is not None:
            filters.append(best[1])
    return tuple(filters)


def _droppable_variables(
    clause: ConjunctiveQuery, positive: Sequence[Atom]
) -> FrozenSet[Variable]:
    """Variables whose value cannot matter to the *set* of answers:
    one occurrence, in one positive sub-goal, absent from the head,
    the predicates and every negated sub-goal."""
    counts: Dict[Variable, int] = {}
    for atom in positive:
        for term in atom.terms:
            if isinstance(term, Variable):
                counts[term] = counts.get(term, 0) + 1
    keep: Set[Variable] = set()
    for term in clause.head or ():
        if isinstance(term, Variable):
            keep.add(term)
    for predicate in clause.predicates:
        keep.update(predicate.variables)
    for atom in clause.atoms:
        if atom.negated:
            keep.update(atom.variables)
    return frozenset(
        v for v, n in counts.items() if n == 1 and v not in keep
    )


def _projection_for(
    atom: Atom, droppable: FrozenSet[Variable]
) -> Optional[Tuple[int, ...]]:
    """Columns to deduplicate candidates on, or None when all matter."""
    kept = tuple(
        position for position, term in enumerate(atom.terms)
        if not (isinstance(term, Variable) and term in droppable)
    )
    return kept if len(kept) < len(atom.terms) else None


_MISSING = object()
