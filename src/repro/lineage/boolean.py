"""Boolean lineage of a query over a database.

Grounding a conjunctive query produces a DNF over *tuple literals*: each
match of the query body contributes one clause — the conjunction of the
uncertain tuples it uses (positively or, for negated sub-goals,
negatively).  The probability of the query is the probability of this
DNF under the independent tuple events, which is what the exact
model-counting oracle (:mod:`repro.lineage.wmc`) computes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..db.database import TupleKey

#: A literal: (tuple event, polarity). Polarity True = tuple present.
#: Deliberately a plain tuple, not a class — literals are created by the
#: million during grounding and a 2-tuple is the cheapest hashable pair.
Literal = Tuple[TupleKey, bool]
#: A clause: conjunction of literals.
Clause = FrozenSet[Literal]


class Lineage:
    """A DNF lineage with the marginals of the events it mentions.

    A slotted value class (no per-instance ``__dict__``): lineages are
    built per answer tuple on hot paths, and the slots also declare the
    two lazily-computed caches below.

    Attributes:
        clauses: the DNF clauses (conjunctions of literals).
        weights: marginal probability of each tuple event mentioned.
        certainly_true: set when some match used only certain tuples —
            the query then holds in every world and ``p(q) = 1``.
    """

    __slots__ = ("clauses", "weights", "certainly_true", "_events", "_packed")

    def __init__(
        self,
        clauses: FrozenSet[Clause],
        weights: Optional[Dict[TupleKey, float]] = None,
        certainly_true: bool = False,
    ) -> None:
        self.clauses = clauses
        self.weights = {} if weights is None else weights
        self.certainly_true = certainly_true
        #: Cached by :meth:`events` / ``PackedLineage.of``.
        self._events: Optional[FrozenSet[TupleKey]] = None
        self._packed = None

    def __eq__(self, other) -> bool:
        if not isinstance(other, Lineage):
            return NotImplemented
        return (
            self.clauses == other.clauses
            and self.weights == other.weights
            and self.certainly_true == other.certainly_true
        )

    def __hash__(self) -> int:
        # Weight-independent, like the structural circuit-cache key:
        # equal lineages always collide, and the unhashable weights
        # dict stays out of the hash.
        return hash((self.clauses, self.certainly_true))

    def __repr__(self) -> str:
        flag = ", certainly_true" if self.certainly_true else ""
        return (
            f"Lineage({len(self.clauses)} clauses, "
            f"{len(self.weights)} events{flag})"
        )

    @property
    def is_false(self) -> bool:
        """No matches at all: ``p(q) = 0``."""
        return not self.clauses and not self.certainly_true

    def events(self) -> FrozenSet[TupleKey]:
        """All tuple events mentioned by some clause.

        Computed once and cached on the instance — WMC, Monte Carlo and
        the circuit compilers all hit this in hot paths, and the clause
        set is immutable.
        """
        cached = self._events
        if cached is None:
            cached = frozenset(
                key for clause in self.clauses for key, _polarity in clause
            )
            self._events = cached
        return cached

    @property
    def variable_count(self) -> int:
        """Number of distinct tuple events (circuit compiler input size)."""
        return len(self.events())

    def clause_count(self) -> int:
        return len(self.clauses)

    def literal_count(self) -> int:
        return sum(len(clause) for clause in self.clauses)

    def describe(self) -> str:
        if self.certainly_true:
            return "TRUE"
        if self.is_false:
            return "FALSE"
        rendered: List[str] = []
        for clause in sorted(self.clauses, key=_clause_key):
            parts = [
                ("" if polarity else "¬") + f"{name}{row}"
                for (name, row), polarity in sorted(clause, key=_literal_key)
            ]
            rendered.append(" ∧ ".join(parts) if parts else "⊤")
        return " ∨ ".join(f"({part})" for part in rendered)


def make_lineage(
    clauses: Iterable[Iterable[Literal]],
    weights: Dict[TupleKey, float],
) -> Lineage:
    """Normalize raw clauses into a :class:`Lineage`.

    Drops clauses containing contradictory literals, absorbs
    superset clauses (a clause implied by a smaller clause adds
    nothing to the disjunction), and detects the certainly-true case
    (an empty clause).
    """
    normalized: Set[Clause] = set()
    for raw in clauses:
        clause = frozenset(raw)
        keys = {key for key, _ in clause}
        if len(keys) < len(clause):
            continue  # contains t and not-t: unsatisfiable match
        if not clause:
            return Lineage(frozenset(), {}, certainly_true=True)
        normalized.add(clause)
    pruned = _absorb(normalized)
    used = {key for clause in pruned for key, _ in clause}
    return Lineage(
        frozenset(pruned),
        {key: float(weights[key]) for key in used},
    )


def _absorb(clauses: Set[Clause]) -> Set[Clause]:
    by_size = sorted(clauses, key=len)
    kept: List[Clause] = []
    for clause in by_size:
        if not any(small <= clause for small in kept):
            kept.append(clause)
    return set(kept)


def _literal_key(literal: Literal):
    (name, row), polarity = literal
    return (name, tuple(str(v) for v in row), polarity)


def _clause_key(clause: Clause):
    return tuple(sorted(_literal_key(lit) for lit in clause))
