"""Boolean lineage of a query over a database.

Grounding a conjunctive query produces a DNF over *tuple literals*: each
match of the query body contributes one clause — the conjunction of the
uncertain tuples it uses (positively or, for negated sub-goals,
negatively).  The probability of the query is the probability of this
DNF under the independent tuple events, which is what the exact
model-counting oracle (:mod:`repro.lineage.wmc`) computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..db.database import TupleKey

#: A literal: (tuple event, polarity). Polarity True = tuple present.
Literal = Tuple[TupleKey, bool]
#: A clause: conjunction of literals.
Clause = FrozenSet[Literal]


@dataclass(frozen=True)
class Lineage:
    """A DNF lineage with the marginals of the events it mentions.

    Attributes:
        clauses: the DNF clauses (conjunctions of literals).
        weights: marginal probability of each tuple event mentioned.
        certainly_true: set when some match used only certain tuples —
            the query then holds in every world and ``p(q) = 1``.
    """

    clauses: FrozenSet[Clause]
    weights: Dict[TupleKey, float] = field(default_factory=dict)
    certainly_true: bool = False

    @property
    def is_false(self) -> bool:
        """No matches at all: ``p(q) = 0``."""
        return not self.clauses and not self.certainly_true

    def events(self) -> FrozenSet[TupleKey]:
        """All tuple events mentioned by some clause.

        Computed once and cached on the instance — WMC, Monte Carlo and
        the circuit compilers all hit this in hot paths, and the clause
        set is immutable.
        """
        cached = self.__dict__.get("_events")
        if cached is None:
            cached = frozenset(
                key for clause in self.clauses for key, _polarity in clause
            )
            object.__setattr__(self, "_events", cached)
        return cached

    @property
    def variable_count(self) -> int:
        """Number of distinct tuple events (circuit compiler input size)."""
        return len(self.events())

    def clause_count(self) -> int:
        return len(self.clauses)

    def literal_count(self) -> int:
        return sum(len(clause) for clause in self.clauses)

    def describe(self) -> str:
        if self.certainly_true:
            return "TRUE"
        if self.is_false:
            return "FALSE"
        rendered: List[str] = []
        for clause in sorted(self.clauses, key=_clause_key):
            parts = [
                ("" if polarity else "¬") + f"{name}{row}"
                for (name, row), polarity in sorted(clause, key=_literal_key)
            ]
            rendered.append(" ∧ ".join(parts) if parts else "⊤")
        return " ∨ ".join(f"({part})" for part in rendered)


def make_lineage(
    clauses: Iterable[Iterable[Literal]],
    weights: Dict[TupleKey, float],
) -> Lineage:
    """Normalize raw clauses into a :class:`Lineage`.

    Drops clauses containing contradictory literals, absorbs
    superset clauses (a clause implied by a smaller clause adds
    nothing to the disjunction), and detects the certainly-true case
    (an empty clause).
    """
    normalized: Set[Clause] = set()
    for raw in clauses:
        clause = frozenset(raw)
        keys = {key for key, _ in clause}
        if len(keys) < len(clause):
            continue  # contains t and not-t: unsatisfiable match
        if not clause:
            return Lineage(frozenset(), {}, certainly_true=True)
        normalized.add(clause)
    pruned = _absorb(normalized)
    used = {key for clause in pruned for key, _ in clause}
    return Lineage(
        frozenset(pruned),
        {key: float(weights[key]) for key in used},
    )


def _absorb(clauses: Set[Clause]) -> Set[Clause]:
    by_size = sorted(clauses, key=len)
    kept: List[Clause] = []
    for clause in by_size:
        if not any(small <= clause for small in kept):
            kept.append(clause)
    return set(kept)


def _literal_key(literal: Literal):
    (name, row), polarity = literal
    return (name, tuple(str(v) for v in row), polarity)


def _clause_key(clause: Clause):
    return tuple(sorted(_literal_key(lit) for lit in clause))
