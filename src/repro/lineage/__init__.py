"""Lineage construction, packing, and exact weighted model counting."""

from .boolean import Clause, Lineage, Literal, make_lineage
from .grounding import (
    answer_tuples,
    answers_holding,
    find_matches,
    ground_answer_lineages,
    ground_lineage,
    query_holds,
)
from .packed import PackedLineage, clause_sort_key
from .planner import (
    DEFAULT_PLANNER,
    GroundingError,
    GroundingPlan,
    GroundingPlanner,
)
from .wmc import exact_probability, shannon_expansion_count

__all__ = [
    "Clause",
    "DEFAULT_PLANNER",
    "GroundingError",
    "GroundingPlan",
    "GroundingPlanner",
    "Lineage",
    "Literal",
    "PackedLineage",
    "answer_tuples",
    "answers_holding",
    "clause_sort_key",
    "exact_probability",
    "find_matches",
    "ground_answer_lineages",
    "ground_lineage",
    "make_lineage",
    "query_holds",
    "shannon_expansion_count",
]
