"""Exact weighted model counting over DNF lineages.

The oracle behind every correctness test in this repository: computes
the exact probability of a DNF of independent tuple literals by
Shannon expansion, with two crucial optimizations —

* **independent-component decomposition**: clauses mentioning disjoint
  event sets are independent, so ``P(∨) = 1 - Π (1 - P_i)``;
* **memoization** on the clause-set, so shared sub-DNFs are counted
  once.

Exponential in the worst case (necessarily so: the problem is
#P-complete), but polynomial-time in practice on lineages of safe
queries — which is itself one of the phenomena the benchmarks exhibit.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..db.database import TupleKey
from .boolean import Clause, Lineage, Literal


def exact_probability(lineage: Lineage) -> float:
    """Exact probability of a lineage DNF."""
    if lineage.certainly_true:
        return 1.0
    if lineage.is_false:
        return 0.0
    counter = _Counter(lineage.weights)
    return counter.probability(frozenset(lineage.clauses))


class _Counter:
    """Shannon-expansion model counter with caching."""

    __slots__ = ("weights", "cache", "expansions")

    def __init__(self, weights: Dict[TupleKey, float]) -> None:
        self.weights = weights
        self.cache: Dict[FrozenSet[Clause], float] = {}
        self.expansions = 0

    def probability(self, clauses: FrozenSet[Clause]) -> float:
        if not clauses:
            return 0.0
        if frozenset() in clauses:
            return 1.0
        if len(clauses) == 1:
            (clause,) = clauses
            result = 1.0
            for key, polarity in clause:
                weight = self.weights[key]
                result *= weight if polarity else 1.0 - weight
            return result
        cached = self.cache.get(clauses)
        if cached is not None:
            return cached
        components = _split_components(clauses)
        if len(components) > 1:
            result = 1.0
            for component in components:
                result *= 1.0 - self.probability(component)
            result = 1.0 - result
        else:
            result = self._expand(clauses)
        self.cache[clauses] = result
        return result

    def _expand(self, clauses: FrozenSet[Clause]) -> float:
        self.expansions += 1
        pivot = _most_frequent_event(clauses)
        weight = self.weights[pivot]
        positive = condition_clauses(clauses, pivot, True)
        negative = condition_clauses(clauses, pivot, False)
        return weight * self.probability(positive) + (1.0 - weight) * self.probability(negative)


def condition_clauses(
    clauses: FrozenSet[Clause], event: TupleKey, value: bool
) -> FrozenSet[Clause]:
    """Set ``event := value`` in the DNF.

    Shared by the Shannon-expansion counter and the d-DNNF compiler
    (:mod:`repro.compile.dnnf`), which mirrors its decomposition.
    """
    result: Set[Clause] = set()
    for clause in clauses:
        keep: List[Literal] = []
        dropped = False
        for literal in clause:
            key, polarity = literal
            if key != event:
                keep.append(literal)
            elif polarity != value:
                dropped = True  # literal falsified: clause dies
                break
        if dropped:
            continue
        result.add(frozenset(keep))
    return frozenset(result)


def _split_components(clauses: FrozenSet[Clause]) -> List[FrozenSet[Clause]]:
    """Partition clauses into groups sharing no tuple events."""
    clause_list = list(clauses)
    parent = list(range(len(clause_list)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner: Dict[TupleKey, int] = {}
    for index, clause in enumerate(clause_list):
        for key, _polarity in clause:
            if key in owner:
                root_a, root_b = find(owner[key]), find(index)
                if root_a != root_b:
                    parent[root_a] = root_b
            else:
                owner[key] = index
    groups: Dict[int, Set[Clause]] = {}
    for index, clause in enumerate(clause_list):
        groups.setdefault(find(index), set()).add(clause)
    return [frozenset(group) for group in groups.values()]


def _most_frequent_event(clauses: FrozenSet[Clause]) -> TupleKey:
    counts: Dict[TupleKey, int] = {}
    for clause in clauses:
        for key, _polarity in clause:
            counts[key] = counts.get(key, 0) + 1
    return max(counts, key=lambda k: (counts[k], str(k)))


#: Public names for the decomposition helpers shared with the
#: knowledge-compilation subsystem.
split_components = _split_components
most_frequent_event = _most_frequent_event


def shannon_expansion_count(lineage: Lineage) -> int:
    """Number of Shannon expansions needed for this lineage.

    A cost proxy used by the benchmarks: safe queries yield lineages
    whose counts grow polynomially with the instance, #P-hard queries'
    grow exponentially on adversarial instances.
    """
    if lineage.certainly_true or lineage.is_false:
        return 0
    counter = _Counter(lineage.weights)
    counter.probability(frozenset(lineage.clauses))
    return counter.expansions
