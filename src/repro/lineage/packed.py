"""Dense numpy representation of a lineage DNF.

The scalar estimators walk ``Dict[TupleKey, float]`` weight maps and
frozenset clauses one literal at a time — fine for correctness, hopeless
for throughput.  :class:`PackedLineage` interns the tuple events of a
:class:`~repro.lineage.boolean.Lineage` to dense ``int32`` ids *once*
and materializes

* a weights vector aligned with the event ids,
* the clauses as a CSR structure (literal event ids + polarities with
  per-clause start offsets),
* per-clause log-weight products (and their linear-space counterparts),
  which give the Karp–Luby clause distribution without re-multiplying
  marginals per draw, and
* a *padded* literal matrix — every clause widened to the longest
  clause by repeating its own first literal (repetition cannot change
  a conjunction) — so clause evaluation needs no segmented reduction.

On top of it, whole sample batches become single numpy expressions: an
``(n_events, batch)`` world bit-matrix is one uniform draw + compare,
and the truth of *all* clauses of *all* samples is one contiguous row
gather + a fixed-width ``any`` reduction.  The event-major layout is
deliberate: gathering literal rows from a C-contiguous ``(E, B)``
matrix vectorizes across the batch, where the batch-major equivalent
(or ``ufunc.reduceat`` over ragged segments) is an order of magnitude
slower.

Two further layers serve the scatter/serving hot path:

* **Flat buffers** — :meth:`PackedLineage.to_buffers` /
  :meth:`PackedLineage.from_buffers` round-trip the whole structure
  through four flat arrays (int32 CSR + uint8 polarities + float64
  weights), the wire format :mod:`repro.serve.transfer` ships through
  ``multiprocessing.shared_memory`` so worker processes rebuild a
  sampler without re-interning or re-grounding anything.  A
  reconstructed instance is *detached*: its ``events`` are dense ids,
  not tuple keys, which is all the samplers need.
  :meth:`reweight` swaps the marginals in place (the serving
  "probability drifted, structure didn't" refresh), and
  :meth:`shape_hash` / :meth:`weight_hash` key the worker-side lineage
  cache.

* **Arenas** — :class:`SampleArena` holds the per-batch world and
  scratch matrices so repeated :meth:`sample_worlds` /
  :meth:`clause_satisfaction` calls (the Karp–Luby ``extend`` loop)
  reuse one allocation instead of mallocing multi-megabyte
  intermediates per batch.  The arena variant also folds clause
  satisfaction column-by-column (one ``(n_clauses, batch)`` gather per
  literal position) instead of materializing the full
  ``(n_literals, batch)`` gather, keeping the working set
  cache-resident.  Both variants are bit-for-bit identical.

The packed form is built lazily and cached on the lineage, so repeated
estimator calls (the multisimulation top-k loop) pay the interning
cost once.  numpy is optional at import time; constructing a
:class:`PackedLineage` without it raises, and callers fall back to the
scalar backend.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised by whichever env runs the suite
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..db.database import TupleKey
from .boolean import Clause, Lineage

HAVE_NUMPY = np is not None

#: Canonical dtypes of the flat-buffer wire format, in serialization
#: order.  ``clause_starts`` travels as int32 (lineages with 2^31
#: literals do not fit in memory anyway); polarities as uint8 because
#: bool has no stable wire width guarantee across numpy versions.
BUFFER_SPECS: Tuple[Tuple[str, str], ...] = (
    ("clause_starts", "int32"),
    ("literal_events", "int32"),
    ("literal_polarities", "uint8"),
    ("weights", "float64"),
)


def clause_sort_key(clause: Clause) -> Tuple:
    """Deterministic clause order shared by every sampling backend.

    Karp–Luby's coverage indicator is "no *earlier* clause satisfied",
    so the scalar and vectorized estimators must enumerate clauses
    identically for their trials to be comparable draw-for-draw.
    """
    return tuple(sorted((str(key), polarity) for key, polarity in clause))


class SampleArena:
    """Preallocated sampling buffers, reused across batches.

    One arena serves one ``(packed shape, batch, dtype)`` combination at
    a time; :meth:`ensure` reallocates only when any of those change (a
    Karp–Luby run over one lineage sees at most two batch sizes: the
    cap and the final remainder).  An arena may be shared across
    lineages — the scatter workers hold one per process — at the cost
    of a reallocation whenever the lineage shape changes.  Holding the
    arena on the sampler rather than the packed lineage keeps
    concurrent samplers over one lineage independent.
    """

    __slots__ = ("key", "uniforms", "worlds", "satisfied", "gather")

    def __init__(self) -> None:
        self.key = None
        self.uniforms = None
        self.worlds = None
        self.satisfied = None
        self.gather = None

    def ensure(self, packed: "PackedLineage", batch: int, dtype) -> None:
        key = (
            packed.n_events, packed.n_clauses, packed.padded_width,
            batch, dtype,
        )
        if self.key == key:
            return
        self.key = key
        self.uniforms = np.empty((packed.n_events, batch), dtype=dtype)
        self.worlds = np.empty((packed.n_events, batch), dtype=bool)
        self.satisfied = np.empty((packed.n_clauses, batch), dtype=bool)
        self.gather = np.empty(
            (packed.n_clauses * packed.padded_width, batch), dtype=bool
        )


class PackedLineage:
    """CSR + padded bit-matrix view of one lineage, cached on it.

    Build through :meth:`of` (which caches the packed form on the
    lineage) rather than the constructor.  All arrays are aligned with
    :attr:`events`, the dense id order shared with the scalar backends.

    Args:
        lineage: the DNF lineage to pack; its ``weights`` must cover
            every event its clauses mention.

    Raises:
        RuntimeError: when numpy is unavailable (callers fall back to
            the scalar backend; see ``HAVE_NUMPY``).
        KeyError: when a clause mentions an event absent from
            ``lineage.weights``.

    Example — pack a grounded lineage and draw a world batch::

        >>> from repro.core.parser import parse
        >>> from repro.db.database import ProbabilisticDatabase
        >>> from repro.lineage.grounding import ground_lineage
        >>> db = ProbabilisticDatabase.from_dict(
        ...     {"R": {(1,): 0.5}, "S": {(1, 2): 0.4, (1, 3): 0.9}})
        >>> packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        >>> packed.n_clauses, len(packed.events)
        (2, 3)
        >>> import numpy as np
        >>> worlds = packed.sample_worlds(np.random.default_rng(0), batch=4)
        >>> worlds.shape, packed.clause_satisfaction(worlds).shape
        ((3, 4), (2, 4))
    """

    __slots__ = (
        "events",
        "event_index",
        "weights",
        "weights_f32",
        "clause_starts",
        "literal_events",
        "literal_polarities",
        "padded_events",
        "padded_polarities",
        "padded_width",
        "clause_log_probs",
        "clause_probs",
        "clause_distribution",
        "clause_cumulative",
        "total",
        "_shape_hash",
    )

    def __init__(self, lineage: Lineage) -> None:
        if np is None:
            raise RuntimeError(
                "PackedLineage requires numpy; use the scalar backend"
            )
        #: Dense id -> tuple event, in the canonical string order the
        #: scalar estimators already use.
        self.events: List[TupleKey] = sorted(lineage.events(), key=str)
        self.event_index: Dict[TupleKey, int] = {
            event: i for i, event in enumerate(self.events)
        }
        self.weights = np.array(
            [lineage.weights[event] for event in self.events], dtype=np.float64
        )
        clauses = sorted(lineage.clauses, key=clause_sort_key)
        starts = [0]
        event_ids: List[int] = []
        polarities: List[bool] = []
        for clause in clauses:
            literals = sorted(
                ((self.event_index[key], polarity) for key, polarity in clause)
            )
            for event_id, polarity in literals:
                event_ids.append(event_id)
                polarities.append(polarity)
            starts.append(len(event_ids))
        self.clause_starts = np.array(starts, dtype=np.int64)
        self.literal_events = np.array(event_ids, dtype=np.int32)
        self.literal_polarities = np.array(polarities, dtype=bool)
        self._shape_hash: Optional[str] = None
        self._build_padded()
        self._finalize()

    @classmethod
    def of(cls, lineage: Lineage) -> "PackedLineage":
        """The packed form of ``lineage``, built once and cached on it."""
        packed = getattr(lineage, "_packed", None)
        if packed is None:
            packed = cls(lineage)
            lineage._packed = packed
        return packed

    # ------------------------------------------------------------------
    # Construction internals (shared by __init__ / from_buffers / reweight)
    # ------------------------------------------------------------------

    def _build_padded(self) -> None:
        """Padded literal matrix from the CSR arrays, no python loops.

        Padding repeats each clause's *own first literal* (duplicating a
        conjunct never changes the clause's truth value), so the fixed
        ``any`` fold over ``padded_width`` columns equals the ragged
        evaluation.
        """
        starts = self.clause_starts
        n_clauses = len(starts) - 1
        lengths = starts[1:] - starts[:-1]
        width = int(lengths.max()) if n_clauses else 0
        self.padded_width = width
        if n_clauses == 0 or width == 0:
            self.padded_events = np.zeros(0, dtype=np.int32)
            self.padded_polarities = np.zeros(0, dtype=bool)
            return
        columns = np.arange(width, dtype=np.int64)[None, :]
        offsets = np.where(columns < lengths[:, None], columns, 0)
        flat = (starts[:-1, None] + offsets).reshape(-1)
        #: Flattened (n_clauses * width) padded literal columns.
        self.padded_events = self.literal_events[flat]
        self.padded_polarities = self.literal_polarities[flat]

    def _finalize(self) -> None:
        """Everything derived from (CSR, weights): per-clause products,
        the Karp–Luby clause distribution, and the float32 weights."""
        # float32 copy for the uniform-draw compare: halves the
        # bandwidth of world generation; the ~1e-7 relative rounding of
        # a marginal is far below any Monte Carlo resolution.
        self.weights_f32 = self.weights.astype(np.float32)
        # Per-clause Π weight(literal) in log space: one gather + one
        # reduceat instead of a python product per clause.
        literal_weights = np.where(
            self.literal_polarities,
            self.weights[self.literal_events],
            1.0 - self.weights[self.literal_events],
        )
        if self.n_clauses:
            with np.errstate(divide="ignore"):
                log_weights = np.log(literal_weights)
            self.clause_log_probs = np.add.reduceat(
                log_weights, self.clause_starts[:-1]
            )
            self.clause_probs = np.exp(self.clause_log_probs)
        else:
            self.clause_log_probs = np.empty(0, dtype=np.float64)
            self.clause_probs = np.empty(0, dtype=np.float64)
        self.total = float(self.clause_probs.sum())
        self.clause_distribution = (
            self.clause_probs / self.total if self.total > 0.0 else None
        )
        # Precomputed CDF: clause draws are one uniform batch + one
        # searchsorted, instead of Generator.choice re-deriving the
        # cumulative weights on every call.
        self.clause_cumulative = (
            np.cumsum(self.clause_distribution)
            if self.clause_distribution is not None
            else None
        )

    # ------------------------------------------------------------------
    # Flat-buffer wire format (the zero-copy scatter transport)
    # ------------------------------------------------------------------

    def to_buffers(self) -> Dict[str, "np.ndarray"]:
        """The four flat arrays that fully determine the sampler.

        Event *identities* deliberately do not travel: estimation only
        needs the dense structure, so a worker reconstructs a detached
        instance without re-interning tuple keys.  Dtypes follow
        :data:`BUFFER_SPECS`.
        """
        return {
            "clause_starts": self.clause_starts.astype(np.int32),
            "literal_events": self.literal_events,
            "literal_polarities": self.literal_polarities.astype(np.uint8),
            "weights": self.weights,
        }

    @classmethod
    def from_buffers(cls, buffers: Dict[str, "np.ndarray"]) -> "PackedLineage":
        """Rebuild a (detached) packed lineage from :meth:`to_buffers`.

        Every array is copied, so the result owns its memory and the
        source buffers (e.g. a shared-memory segment) can be released
        immediately.  The reconstruction is bit-exact: estimates from a
        round-tripped instance equal the original's at a fixed seed.

        >>> from repro.core.parser import parse
        >>> from repro.db.database import ProbabilisticDatabase
        >>> from repro.lineage.grounding import ground_lineage
        >>> db = ProbabilisticDatabase.from_dict(
        ...     {"R": {(1,): 0.5}, "S": {(1, 2): 0.4, (1, 3): 0.9}})
        >>> packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        >>> clone = PackedLineage.from_buffers(packed.to_buffers())
        >>> clone.n_clauses == packed.n_clauses, float(clone.total) == float(packed.total)
        (True, True)
        """
        if np is None:  # pragma: no cover - callers check HAVE_NUMPY
            raise RuntimeError("PackedLineage requires numpy")
        self = object.__new__(cls)
        self.clause_starts = np.array(buffers["clause_starts"], dtype=np.int64)
        self.literal_events = np.array(
            buffers["literal_events"], dtype=np.int32
        )
        self.literal_polarities = np.array(
            buffers["literal_polarities"], dtype=bool
        )
        self.weights = np.array(buffers["weights"], dtype=np.float64)
        # Detached: dense ids stand in for the tuple events.
        self.events = list(range(len(self.weights)))
        self.event_index = {}
        self._shape_hash = None
        self._build_padded()
        self._finalize()
        return self

    def reweight(self, weights) -> None:
        """Swap the marginals in place, keeping the clause structure.

        The scatter cache's refresh path: a probability-only database
        change re-ships one float64 vector instead of the whole
        structure, and the clause distribution is rebuilt locally.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.n_events,):
            raise ValueError(
                f"expected {self.n_events} weights, got shape {weights.shape}"
            )
        self.weights = weights.copy()
        self._finalize()

    def shape_hash(self) -> str:
        """Digest of the weight-independent structure (cache key).

        Stable across processes and runs — computed from the canonical
        wire-format bytes, not python ``hash``.  Cached: the structure
        is immutable.
        """
        cached = self._shape_hash
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(len(self.weights).to_bytes(8, "little"))
            digest.update(self.clause_starts.astype(np.int32).tobytes())
            digest.update(self.literal_events.tobytes())
            digest.update(self.literal_polarities.astype(np.uint8).tobytes())
            cached = self._shape_hash = digest.hexdigest()
        return cached

    def weight_hash(self) -> str:
        """Digest of the marginals (recomputed: :meth:`reweight` exists)."""
        return hashlib.blake2b(
            self.weights.tobytes(), digest_size=16
        ).hexdigest()

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def n_events(self) -> int:
        return len(self.weights)

    @property
    def n_clauses(self) -> int:
        return len(self.clause_starts) - 1

    @property
    def n_literals(self) -> int:
        return len(self.literal_events)

    @property
    def batch_cost(self) -> int:
        """Elements touched per sample (batch sizing + cost heuristic)."""
        return max(1, self.n_events, self.n_clauses * self.padded_width)

    # ------------------------------------------------------------------
    # Batched sampling primitives (worlds are event-major: (E, batch))
    # ------------------------------------------------------------------

    def sample_worlds(
        self,
        rng,
        batch: int,
        arena: Optional[SampleArena] = None,
        dtype=None,
    ):
        """An ``(n_events, batch)`` boolean world matrix ~ the marginals.

        With an ``arena`` the uniforms and the world matrix land in the
        arena's preallocated buffers (identical values — ``out=`` draws
        consume the generator stream exactly like fresh allocations).
        ``dtype`` selects the uniform precision; the float32 default
        halves draw bandwidth (see ``benchmarks/bench_sampling.py`` for
        the float32-vs-float64 rows pinning this choice).
        """
        if dtype is None:
            dtype = np.float32
        threshold = (
            self.weights_f32 if dtype == np.float32 else self.weights
        )
        if arena is None:
            uniforms = rng.random((self.n_events, batch), dtype=dtype)
            return uniforms < threshold[:, None]
        arena.ensure(self, batch, dtype)
        rng.random(out=arena.uniforms, dtype=dtype)
        np.less(arena.uniforms, threshold[:, None], out=arena.worlds)
        return arena.worlds

    def clause_satisfaction(self, worlds, arena: Optional[SampleArena] = None):
        """``(n_clauses, batch)`` clause truth values, one matrix pass.

        Both paths gather the padded literal rows of the world matrix,
        compare against the polarities, and fold each clause's
        fixed-width window with one ``any`` reduction — no ragged
        segments.  With an arena every intermediate lands in the
        preallocated ``gather``/``satisfied`` buffers (``np.take`` with
        ``out=`` instead of fancy indexing): same truth table, zero
        per-batch allocations.
        """
        if arena is None:
            literal_rows = worlds[self.padded_events]
            violated = literal_rows != self.padded_polarities[:, None]
            batch = worlds.shape[1]
            return ~violated.reshape(
                self.n_clauses, self.padded_width, batch
            ).any(axis=1)
        if self.padded_width == 0:
            # Only empty clauses (certainly-true lineages): an empty
            # conjunction holds vacuously, matching the reshape-fold.
            arena.satisfied.fill(True)
            return arena.satisfied
        batch = worlds.shape[1]
        gather, satisfied = arena.gather, arena.satisfied
        # mode="clip" skips the bounds-checked buffering path (the ids
        # are dense event indices, always in range, so it never clips).
        np.take(worlds, self.padded_events, axis=0, out=gather, mode="clip")
        np.not_equal(gather, self.padded_polarities[:, None], out=gather)
        np.any(
            gather.reshape(self.n_clauses, self.padded_width, batch),
            axis=1, out=satisfied,
        )
        np.logical_not(satisfied, out=satisfied)
        return satisfied

    def force_clauses(self, worlds, chosen) -> None:
        """Overwrite each sample's events so its chosen clause holds.

        ``chosen`` holds one clause id per sample (column).  The
        scatter indices are built without a python loop: per-sample
        literal counts expand to flat CSR positions via repeat +
        cumulative offsets.
        """
        starts = self.clause_starts
        lengths = starts[chosen + 1] - starts[chosen]
        total = int(lengths.sum())
        if total == 0:
            return
        columns = np.repeat(np.arange(len(chosen)), lengths)
        segment_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        within = np.arange(total) - np.repeat(segment_starts, lengths)
        flat = np.repeat(starts[chosen], lengths) + within
        worlds[self.literal_events[flat], columns] = (
            self.literal_polarities[flat]
        )

    def sample_clauses(self, rng, batch: int):
        """``batch`` clause ids ~ the Karp–Luby clause distribution."""
        uniforms = rng.random(batch)
        return np.searchsorted(
            self.clause_cumulative, uniforms, side="right"
        ).clip(max=self.n_clauses - 1).astype(np.int64)

    def coverage_hits(
        self, worlds, chosen, arena: Optional[SampleArena] = None
    ) -> int:
        """Karp–Luby coverage count for a forced world batch.

        A trial is a hit when its chosen clause is the *first* satisfied
        clause of its world.  The chosen clause is forced true, so a
        first satisfied clause always exists and ``argmax`` (index of
        the first True per column) finds it in one pass; the indicator
        is simply ``first == chosen``.
        """
        satisfied = self.clause_satisfaction(worlds, arena)
        first_satisfied = satisfied.argmax(axis=0)
        return int((first_satisfied == chosen).sum())
