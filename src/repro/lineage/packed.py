"""Dense numpy representation of a lineage DNF.

The scalar estimators walk ``Dict[TupleKey, float]`` weight maps and
frozenset clauses one literal at a time — fine for correctness, hopeless
for throughput.  :class:`PackedLineage` interns the tuple events of a
:class:`~repro.lineage.boolean.Lineage` to dense ``int32`` ids *once*
and materializes

* a weights vector aligned with the event ids,
* the clauses as a CSR structure (literal event ids + polarities with
  per-clause start offsets),
* per-clause log-weight products (and their linear-space counterparts),
  which give the Karp–Luby clause distribution without re-multiplying
  marginals per draw, and
* a *padded* literal matrix — every clause widened to the longest
  clause by repeating its own first literal (repetition cannot change
  a conjunction) — so clause evaluation needs no segmented reduction.

On top of it, whole sample batches become single numpy expressions: an
``(n_events, batch)`` world bit-matrix is one uniform draw + compare,
and the truth of *all* clauses of *all* samples is one contiguous row
gather + a fixed-width ``any`` reduction.  The event-major layout is
deliberate: gathering literal rows from a C-contiguous ``(E, B)``
matrix vectorizes across the batch, where the batch-major equivalent
(or ``ufunc.reduceat`` over ragged segments) is an order of magnitude
slower.

The packed form is built lazily and cached on the lineage, so repeated
estimator calls (the multisimulation top-k loop) pay the interning
cost once.  numpy is optional at import time; constructing a
:class:`PackedLineage` without it raises, and callers fall back to the
scalar backend.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

try:  # pragma: no cover - exercised by whichever env runs the suite
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..db.database import TupleKey
from .boolean import Clause, Lineage

HAVE_NUMPY = np is not None


def clause_sort_key(clause: Clause) -> Tuple:
    """Deterministic clause order shared by every sampling backend.

    Karp–Luby's coverage indicator is "no *earlier* clause satisfied",
    so the scalar and vectorized estimators must enumerate clauses
    identically for their trials to be comparable draw-for-draw.
    """
    return tuple(sorted((str(key), polarity) for key, polarity in clause))


class PackedLineage:
    """CSR + padded bit-matrix view of one lineage, cached on it.

    Build through :meth:`of` (which caches the packed form on the
    lineage) rather than the constructor.  All arrays are aligned with
    :attr:`events`, the dense id order shared with the scalar backends.

    Args:
        lineage: the DNF lineage to pack; its ``weights`` must cover
            every event its clauses mention.

    Raises:
        RuntimeError: when numpy is unavailable (callers fall back to
            the scalar backend; see ``HAVE_NUMPY``).
        KeyError: when a clause mentions an event absent from
            ``lineage.weights``.

    Example — pack a grounded lineage and draw a world batch::

        >>> from repro.core.parser import parse
        >>> from repro.db.database import ProbabilisticDatabase
        >>> from repro.lineage.grounding import ground_lineage
        >>> db = ProbabilisticDatabase.from_dict(
        ...     {"R": {(1,): 0.5}, "S": {(1, 2): 0.4, (1, 3): 0.9}})
        >>> packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        >>> packed.n_clauses, len(packed.events)
        (2, 3)
        >>> import numpy as np
        >>> worlds = packed.sample_worlds(np.random.default_rng(0), batch=4)
        >>> worlds.shape, packed.clause_satisfaction(worlds).shape
        ((3, 4), (2, 4))
    """

    __slots__ = (
        "events",
        "event_index",
        "weights",
        "weights_f32",
        "clause_starts",
        "literal_events",
        "literal_polarities",
        "padded_events",
        "padded_polarities",
        "padded_width",
        "clause_log_probs",
        "clause_probs",
        "clause_distribution",
        "clause_cumulative",
        "total",
    )

    def __init__(self, lineage: Lineage) -> None:
        if np is None:
            raise RuntimeError(
                "PackedLineage requires numpy; use the scalar backend"
            )
        #: Dense id -> tuple event, in the canonical string order the
        #: scalar estimators already use.
        self.events: List[TupleKey] = sorted(lineage.events(), key=str)
        self.event_index: Dict[TupleKey, int] = {
            event: i for i, event in enumerate(self.events)
        }
        self.weights = np.array(
            [lineage.weights[event] for event in self.events], dtype=np.float64
        )
        # float32 copy for the uniform-draw compare: halves the
        # bandwidth of world generation; the ~1e-7 relative rounding of
        # a marginal is far below any Monte Carlo resolution.
        self.weights_f32 = self.weights.astype(np.float32)
        clauses = sorted(lineage.clauses, key=clause_sort_key)
        starts = [0]
        event_ids: List[int] = []
        polarities: List[bool] = []
        per_clause: List[List[Tuple[int, bool]]] = []
        for clause in clauses:
            literals = sorted(
                ((self.event_index[key], polarity) for key, polarity in clause)
            )
            per_clause.append(literals)
            for event_id, polarity in literals:
                event_ids.append(event_id)
                polarities.append(polarity)
            starts.append(len(event_ids))
        self.clause_starts = np.array(starts, dtype=np.int64)
        self.literal_events = np.array(event_ids, dtype=np.int32)
        self.literal_polarities = np.array(polarities, dtype=bool)
        width = max((len(lits) for lits in per_clause), default=0)
        self.padded_width = width
        padded_ev = np.zeros((len(per_clause), width), dtype=np.int32)
        padded_pol = np.zeros((len(per_clause), width), dtype=bool)
        for row, literals in enumerate(per_clause):
            for col in range(width):
                # Repeat the first literal as padding: duplicating a
                # conjunct never changes the clause's truth value.
                event_id, polarity = literals[col if col < len(literals) else 0]
                padded_ev[row, col] = event_id
                padded_pol[row, col] = polarity
        #: Flattened (n_clauses * width) padded literal columns.
        self.padded_events = padded_ev.reshape(-1)
        self.padded_polarities = padded_pol.reshape(-1)
        # Per-clause Π weight(literal) in log space: one gather + one
        # reduceat instead of a python product per clause.
        literal_weights = np.where(
            self.literal_polarities,
            self.weights[self.literal_events],
            1.0 - self.weights[self.literal_events],
        )
        if per_clause:
            with np.errstate(divide="ignore"):
                log_weights = np.log(literal_weights)
            self.clause_log_probs = np.add.reduceat(
                log_weights, self.clause_starts[:-1]
            )
            self.clause_probs = np.exp(self.clause_log_probs)
        else:
            self.clause_log_probs = np.empty(0, dtype=np.float64)
            self.clause_probs = np.empty(0, dtype=np.float64)
        self.total = float(self.clause_probs.sum())
        self.clause_distribution = (
            self.clause_probs / self.total if self.total > 0.0 else None
        )
        # Precomputed CDF: clause draws are one uniform batch + one
        # searchsorted, instead of Generator.choice re-deriving the
        # cumulative weights on every call.
        self.clause_cumulative = (
            np.cumsum(self.clause_distribution)
            if self.clause_distribution is not None
            else None
        )

    @classmethod
    def of(cls, lineage: Lineage) -> "PackedLineage":
        """The packed form of ``lineage``, built once and cached on it."""
        packed = getattr(lineage, "_packed", None)
        if packed is None:
            packed = cls(lineage)
            lineage._packed = packed
        return packed

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def n_events(self) -> int:
        return len(self.events)

    @property
    def n_clauses(self) -> int:
        return len(self.clause_starts) - 1

    @property
    def n_literals(self) -> int:
        return len(self.literal_events)

    @property
    def batch_cost(self) -> int:
        """Elements touched per sample (batch sizing heuristic)."""
        return max(1, self.n_events, self.n_clauses * self.padded_width)

    # ------------------------------------------------------------------
    # Batched sampling primitives (worlds are event-major: (E, batch))
    # ------------------------------------------------------------------

    def sample_worlds(self, rng, batch: int):
        """An ``(n_events, batch)`` boolean world matrix ~ the marginals."""
        uniforms = rng.random((self.n_events, batch), dtype=np.float32)
        return uniforms < self.weights_f32[:, None]

    def clause_satisfaction(self, worlds):
        """``(n_clauses, batch)`` clause truth values, one matrix pass.

        Gathers the padded literal rows of the world matrix, compares
        against the polarities, and folds each clause's fixed-width
        window with one ``any`` reduction — no ragged segments.
        """
        literal_rows = worlds[self.padded_events]
        violated = literal_rows != self.padded_polarities[:, None]
        batch = worlds.shape[1]
        return ~violated.reshape(
            self.n_clauses, self.padded_width, batch
        ).any(axis=1)

    def force_clauses(self, worlds, chosen) -> None:
        """Overwrite each sample's events so its chosen clause holds.

        ``chosen`` holds one clause id per sample (column).  The
        scatter indices are built without a python loop: per-sample
        literal counts expand to flat CSR positions via repeat +
        cumulative offsets.
        """
        starts = self.clause_starts
        lengths = starts[chosen + 1] - starts[chosen]
        total = int(lengths.sum())
        if total == 0:
            return
        columns = np.repeat(np.arange(len(chosen)), lengths)
        segment_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        within = np.arange(total) - np.repeat(segment_starts, lengths)
        flat = np.repeat(starts[chosen], lengths) + within
        worlds[self.literal_events[flat], columns] = (
            self.literal_polarities[flat]
        )

    def sample_clauses(self, rng, batch: int):
        """``batch`` clause ids ~ the Karp–Luby clause distribution."""
        uniforms = rng.random(batch)
        return np.searchsorted(
            self.clause_cumulative, uniforms, side="right"
        ).clip(max=self.n_clauses - 1).astype(np.int64)

    def coverage_hits(self, worlds, chosen) -> int:
        """Karp–Luby coverage count for a forced world batch.

        A trial is a hit when its chosen clause is the *first* satisfied
        clause of its world.  The chosen clause is forced true, so a
        first satisfied clause always exists and ``argmax`` (index of
        the first True per column) finds it in one pass; the indicator
        is simply ``first == chosen``.
        """
        satisfied = self.clause_satisfaction(worlds)
        first_satisfied = satisfied.argmax(axis=0)
        return int((first_satisfied == chosen).sum())
