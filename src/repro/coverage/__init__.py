"""Coverages, hierarchical closure, expansion coefficients, erasers."""

from .closure import (
    HierarchicalUnifier,
    apply_join,
    hierarchical_closure,
    hierarchical_join_pairs,
    hierarchical_unifiers_of_pair,
)
from .coverage import (
    Coverage,
    build_strict_coverage,
    factor_unifications,
    is_strict,
    split_covers,
    trivial_coverage,
)
from .erasers import (
    UpwardFamily,
    coefficient,
    find_eraser,
    psi_from_covers,
    upward_membership,
)

__all__ = [
    "Coverage",
    "HierarchicalUnifier",
    "UpwardFamily",
    "apply_join",
    "build_strict_coverage",
    "coefficient",
    "factor_unifications",
    "find_eraser",
    "hierarchical_closure",
    "hierarchical_join_pairs",
    "hierarchical_unifiers_of_pair",
    "is_strict",
    "split_covers",
    "psi_from_covers",
    "trivial_coverage",
    "upward_membership",
]
