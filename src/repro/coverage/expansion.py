"""The expansion formula of Theorem 2.13 (and Appendix D), executable.

For a coverage ``C = (F, C)`` with unary expansion variables, the
probability of the query expands as::

    p(q) = Σ_T̄  N(C, sig(T̄)) (-1)^{|T̄|} p(F(T̄))

where ``T̄ = (T_1..T_k)`` ranges over tuples of subsets of the domain,
``F(T̄) = ∧_f ∧_{a ∈ T_f} f(a)``, and ``N`` is the signature
coefficient.  The formula is exponential — the paper immediately sets
out to collapse it — but being able to *run* it on small instances is
the ground truth for the coefficient machinery: this module evaluates
the expansion literally and the tests check it equals the oracle
probability, which pins down the sign conventions of Definition 2.11 /
Lemma D.2 once and for all.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from ..core.hierarchy import root_variables
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..db.database import ProbabilisticDatabase
from ..lineage.grounding import ground_lineage
from ..lineage.wmc import exact_probability
from .coverage import Coverage
from .erasers import UpwardFamily, coefficient

#: Domain-size guard: |domain|^k subset tuples explode immediately.
MAX_EXPANSION_CELLS = 2_000_000


def unary_expansion_probability(
    coverage: Coverage,
    db: ProbabilisticDatabase,
) -> float:
    """Evaluate Theorem 2.13's expansion for a unary coverage.

    Each factor must have a root variable (present in every sub-goal);
    the expansion substitutes domain subsets for each root.  Feasible
    only for tiny instances — this is a *definitional* evaluator used
    to validate the coefficient machinery, not an algorithm.
    """
    factors = list(coverage.factors)
    roots: List[Variable] = []
    for factor in factors:
        candidates = root_variables(factor)
        if not candidates:
            raise ValueError(
                f"factor has no root variable (not a unary coverage): {factor}"
            )
        roots.append(candidates[0])

    domain = db.active_domain()
    cells = (2 ** len(domain)) ** max(len(factors), 1)
    if cells > MAX_EXPANSION_CELLS:
        raise ValueError(
            "expansion too large; use a smaller domain or fewer factors"
        )
    subset_space = [list(_all_subsets(domain)) for _ in factors]

    psi = UpwardFamily(list(coverage.cover_factors))
    total = 0.0
    for assignment in itertools.product(*subset_space):
        signature = frozenset(
            index for index, subset in enumerate(assignment) if subset
        )
        n_value = expansion_coefficient(signature, psi)
        if n_value == 0:
            continue
        size = sum(len(subset) for subset in assignment)
        grounded = _ground_conjunction(factors, roots, assignment)
        probability = _conjunction_probability(grounded, db)
        total += n_value * (-1) ** size * probability
    return total


def expansion_coefficient(signature: frozenset, psi: UpwardFamily) -> int:
    """``N(C, σ)`` in the convention that makes Theorem 2.13 true.

    Lemma D.2's coefficient computes ``Pr[not Q]``-style sums: running
    the expansion with it yields exactly ``1 - p(q)`` (the ``T̄ = ∅``
    term contributes the 1).  The convention matching the paper's
    in-text values of Example 2.14 — verified numerically by
    ``tests/test_expansion.py`` — is the negation on non-empty
    signatures with the empty signature dropped.
    """
    if not signature:
        return 0
    return -coefficient(signature, psi)


def _all_subsets(domain: Sequence) -> List[Tuple]:
    result: List[Tuple] = []
    for size in range(len(domain) + 1):
        result.extend(itertools.combinations(domain, size))
    return result


def _ground_conjunction(
    factors: Sequence[ConjunctiveQuery],
    roots: Sequence[Variable],
    assignment: Sequence[Tuple],
) -> ConjunctiveQuery:
    """``F(T̄)``: conjoin ``f[a/root]`` for every factor and subset value."""
    from ..core.substitution import Substitution

    atoms = []
    predicates = []
    copy_index = 0
    for factor, root, subset in zip(factors, roots, assignment):
        for value in subset:
            copy_index += 1
            mapping = {
                v: Variable(f"{v.name}_t{copy_index}")
                for v in factor.variables
            }
            mapping[root] = Constant(value)
            instance = factor.apply(Substitution(mapping))
            atoms.extend(instance.atoms)
            predicates.extend(instance.predicates)
    return ConjunctiveQuery(atoms, predicates)


def _conjunction_probability(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> float:
    """``p(F(T̄))`` — a conjunction of grounded-root factors.

    Evaluated exactly through the lineage oracle (the factors share
    tuples in general, so no product form is assumed — that is the
    whole point of the independence-predicate machinery the paper
    builds on top of this formula).
    """
    return exact_probability(ground_lineage(query, db))
