"""Hierarchical unifiers and the hierarchical closure (Sec. 2.6, App. E.1).

Given two strict hierarchical queries, a *hierarchical join predicate*
between unifiable sub-goals ``g1, g2`` keeps only the top ``w`` levels
of the unification — the longest ⊒-descending prefix of ``g1``'s
variables whose images sit at matching hierarchy levels in the other
query (Definition E.1).  Equating those pairs yields the *hierarchical
unifier* (Definition E.2), which is again hierarchical (Lemma E.3).

Closing the factor set ``F`` under hierarchical unification yields the
finite set ``H`` (Lemma E.4 / Lemma 2.18), with ``Factors(h)``
recording which original factors each ``h`` was built from.  The
subset ``H*`` keeps only the inversion-free members plus ``F`` itself —
the factors the PTIME algorithm may use as erasers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.hierarchy import is_hierarchical
from ..core.homomorphism import equivalent
from ..core.query import ConjunctiveQuery, canonical_string
from ..core.substitution import Substitution
from ..core.terms import Variable
from ..core.unification import unify_atoms

#: Cap on the closure size.  When reached, the closure is returned
#: truncated: eraser *candidates* may be missing, so a subsequent HARD
#: verdict is still sound evidence-wise but flagged as truncated.
MAX_CLOSURE_SIZE = 60


@dataclass(frozen=True)
class HierarchicalUnifier:
    """One element of ``H``: a query plus its provenance.

    Attributes:
        query: the (hierarchical) unifier query.
        factors: indices into the base factor list it was built from.
        parents: indices into ``H`` of the two queries joined (None for
            base factors).
    """

    query: ConjunctiveQuery
    factors: FrozenSet[int]
    parents: Optional[Tuple[int, int]] = None


def hierarchical_join_pairs(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    index1: int,
    index2: int,
) -> Optional[List[Tuple[Variable, Variable]]]:
    """The hierarchical join predicate for sub-goals ``index1, index2``.

    ``q1`` and ``q2`` must be variable-disjoint.  Returns the pairs
    ``(x, y)`` to equate — the maximal ⊒-descending prefix on which the
    unifier respects hierarchy levels — or None when the sub-goals do
    not unify or the prefix is empty.
    """
    g1, g2 = q1.atoms[index1], q2.atoms[index2]
    theta = unify_atoms(g1, g2)
    if theta is None:
        return None
    partner: Dict[Variable, Variable] = {}
    for x in g1.variables:
        image = theta.apply(x)
        for y in g2.variables:
            if theta.apply(y) == image:
                partner[x] = y
                break
        else:
            return None  # x unified with a constant: not a strict MGU
    vars1 = _descending(q1, g1.variables)
    vars2 = _descending(q2, g2.variables)
    pairs: List[Tuple[Variable, Variable]] = []
    for x, y_slot in zip(vars1, vars2):
        y = partner.get(x)
        if y is None:
            break
        # The image must live at the same hierarchy level as the slot
        # (≡ handles ties in the descending order).
        if q2.subgoal_map[y] != q2.subgoal_map[y_slot]:
            break
        pairs.append((x, y))
    if not pairs:
        return None
    # Lemma E.3 relies on the prefix keeping the join hierarchical;
    # trim defensively if a tie-break ordering ever violates it.
    while pairs:
        joined = apply_join(q1, q2, pairs)
        if is_hierarchical(joined.positive_part()):
            return pairs
        pairs = pairs[:-1]
    return None


def apply_join(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    pairs: Sequence[Tuple[Variable, Variable]],
) -> ConjunctiveQuery:
    """``q1, q2, ∧ (x = y)`` with equalities substituted away."""
    substitution = Substitution({y: x for x, y in pairs})
    return q1.conjoin(q2.apply(substitution))


def hierarchical_unifiers_of_pair(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> List[ConjunctiveQuery]:
    """All hierarchical unifiers between two queries (renamed apart)."""
    renamed, _ = q2.rename_apart(q1.variables, suffix="_h")
    results: List[ConjunctiveQuery] = []
    seen: Set[str] = set()
    for i in range(len(q1.atoms)):
        for j in range(len(renamed.atoms)):
            pairs = hierarchical_join_pairs(q1, renamed, i, j)
            if pairs is None:
                continue
            joined = apply_join(q1, renamed, pairs)
            if not joined.is_satisfiable():
                continue
            key = canonical_string(joined)
            if key not in seen:
                seen.add(key)
                results.append(joined)
    return results


def hierarchical_closure(
    factors: Sequence[ConjunctiveQuery],
    is_inversion_free: Callable[[ConjunctiveQuery], bool],
    max_levels: Optional[int] = None,
) -> Tuple[List[HierarchicalUnifier], List[int], bool]:
    """Compute ``H`` (closure under hierarchical joins) and ``H*``.

    Args:
        factors: the coverage's factors ``F``.
        is_inversion_free: predicate used to filter ``H*``
            (injected to avoid an import cycle with the analysis layer).

    Returns:
        ``(H, hstar_indices, truncated)`` where ``hstar_indices`` lists
        the positions in ``H`` belonging to ``H*`` — inversion-free
        unifiers plus all base factors (Section 2.6's ``F*``) — and
        ``truncated`` reports whether the size cap cut the closure
        short (some eraser candidates may then be missing).
    """
    closure: List[HierarchicalUnifier] = [
        HierarchicalUnifier(query=f, factors=frozenset({i}))
        for i, f in enumerate(factors)
    ]
    keys: Set[str] = {canonical_string(f) for f in factors}
    frontier = list(range(len(closure)))
    truncated = False
    level = 0
    while frontier and not truncated:
        level += 1
        if max_levels is not None and level > max_levels:
            break
        new_frontier: List[int] = []
        for a in range(len(closure)):
            if truncated:
                break
            for b in frontier:
                if b < a or truncated:
                    continue
                for joined in hierarchical_unifiers_of_pair(
                    closure[a].query, closure[b].query
                ):
                    key = canonical_string(joined)
                    if key in keys:
                        continue
                    if any(equivalent(joined, h.query) for h in closure):
                        keys.add(key)
                        continue
                    keys.add(key)
                    closure.append(
                        HierarchicalUnifier(
                            query=joined,
                            factors=closure[a].factors | closure[b].factors,
                            parents=(a, b),
                        )
                    )
                    new_frontier.append(len(closure) - 1)
                    if len(closure) >= MAX_CLOSURE_SIZE:
                        truncated = True
                        break
        frontier = new_frontier

    base_count = len(factors)
    hstar = [
        index
        for index, item in enumerate(closure)
        if index < base_count or is_inversion_free(item.query)
    ]
    return closure, hstar, truncated


def _descending(query: ConjunctiveQuery, variables: Sequence[Variable]) -> List[Variable]:
    """Atom variables sorted top-down by ⊒ (most widely occurring first)."""
    return sorted(
        variables,
        key=lambda v: (-len(query.subgoal_map[v]), v.name),
    )
