"""Coverages of conjunctive queries (Section 2.1).

A coverage of ``q`` is a set of *covers* (conjunctive queries with
order predicates) whose disjunction is equivalent to ``q``; its
*factors* are the connected components of the covers.  A coverage is
*strict* when every most-general unifier between two factors is a 1-1
substitution (Definition 2.3).

Building the full canonical coverage ``C<(q)`` splits on all ``m``
co-occurring pairs at once (``3^m`` covers) — correct but explosive.
:func:`build_strict_coverage` instead refines lazily: it starts from
the trivial coverage and splits only pairs that witness a strictness
violation, then minimizes covers and removes redundant ones, exactly
the clean-up steps Figure 1 shows to be necessary.  Proposition 2.7
guarantees lazy refinement is conservative: if any coverage is
inversion-free, so is every refinement of it down to the canonical one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.homomorphism import contained_in, minimize
from ..core.predicates import Comparison
from ..core.query import ConjunctiveQuery, canonical_string
from ..core.terms import Constant, Term, Variable
from ..core.unification import Unification, all_unifications

#: Safety valve on refinement rounds; the number of splittable pairs is
#: finite, so this is never reached by a correct run.
MAX_REFINEMENT_ROUNDS = 400


@dataclass(frozen=True)
class Coverage:
    """A coverage ``(F, C)`` with factors and covers by index.

    Attributes:
        query: the covered query.
        covers: the cover queries (their disjunction is ``query``).
        factors: deduplicated connected components of the covers.
        cover_factors: for each cover, the indices of its factors.
    """

    query: ConjunctiveQuery
    covers: Tuple[ConjunctiveQuery, ...]
    factors: Tuple[ConjunctiveQuery, ...]
    cover_factors: Tuple[FrozenSet[int], ...]

    def factor_index(self, factor: ConjunctiveQuery) -> int:
        key = canonical_string(factor)
        for index, candidate in enumerate(self.factors):
            if canonical_string(candidate) == key:
                return index
        raise KeyError(f"not a factor of this coverage: {factor}")

    def describe(self) -> str:
        lines = [f"coverage of {self.query}"]
        for index, factor in enumerate(self.factors):
            lines.append(f"  f{index}: {factor}")
        for cover, indices in zip(self.covers, self.cover_factors):
            names = ", ".join(f"f{i}" for i in sorted(indices))
            lines.append(f"  cover {{{names}}}: {cover}")
        return "\n".join(lines)


def trivial_coverage(query: ConjunctiveQuery) -> Coverage:
    """The coverage ``C = {q}``."""
    return _assemble(query, [query])


def build_strict_coverage(
    query: ConjunctiveQuery,
    extra_split_pairs: Sequence[Tuple[ConjunctiveQuery, Term, Term]] = (),
) -> Coverage:
    """A strict coverage of ``query`` by demand-driven refinement.

    Splits a cover on pair ``(u, v)`` whenever a unifier between two
    factors merges ``u, v`` of the same factor; variable–constant
    merges split binarily into ``u = c`` / ``u != c`` (the paper's
    Example 3.13 predicates), variable pairs into the trichotomy.
    All violating covers found in a round are split together, and
    redundancy removal is deferred to convergence, so the number of
    rounds is bounded by the refinement *depth*, not the total number
    of splits.  ``extra_split_pairs`` lets the inversion analysis
    request additional splits: each entry names a factor and a pair.
    """
    covers: List[ConjunctiveQuery] = _dedup(
        c for c in [_cleanup_one(query)] if c is not None
    )
    pending_extra = list(extra_split_pairs)
    for _round in range(MAX_REFINEMENT_ROUNDS):
        coverage = _assemble(query, covers)
        splits = _find_strictness_violations(coverage)
        while not splits and pending_extra:
            factor, u, v = pending_extra.pop(0)
            located = _locate_pair(covers, factor, u, v, order_required=True)
            if located is not None:
                splits = {located[0]: (located[1], located[2])}
        if not splits:
            covers = _drop_redundant(covers)
            return _assemble(query, covers)
        # Split one cover per round: re-minimizing in between lets the
        # equality branches fold onto constant sub-goals, which keeps
        # the coverage small (Example 3.13's four factors emerge this
        # way); splitting in batches would freeze those folds.
        index = min(splits)
        u, v = splits[index]
        branches = [
            _cleanup_one(branch) for branch in _split_pair(covers[index], u, v)
        ]
        covers = _dedup(
            covers[:index]
            + [b for b in branches if b is not None]
            + covers[index + 1:]
        )
    raise RuntimeError(
        f"strict-coverage refinement did not converge for {query}"
    )


def split_covers(
    query: ConjunctiveQuery,
    pairs: Sequence[Tuple[Term, Term]],
) -> List[ConjunctiveQuery]:
    """Mechanical covers from order-splitting the given term pairs.

    Each variable–constant pair splits binarily (``=`` by substitution /
    ``!=`` by predicate), each variable pair by the trichotomy; covers
    are minimized after every split (which lets equality branches fold
    onto constant sub-goals) and redundant covers are dropped.  This is
    how the compact coverages of Example 3.13 and Figure 2 are built.
    """
    covers = [c for c in [_cleanup_one(query)] if c is not None]
    for u, v in pairs:
        refined: List[ConjunctiveQuery] = []
        for cover in covers:
            cover_vars = set(cover.variables)
            present_u = isinstance(u, Constant) or u in cover_vars
            present_v = isinstance(v, Constant) or v in cover_vars
            if present_u and present_v:
                for branch in _split_pair(cover, u, v):
                    cleaned = _cleanup_one(branch)
                    if cleaned is not None:
                        refined.append(cleaned)
            else:
                refined.append(cover)
        covers = _dedup(refined)
    return _drop_redundant(covers)


def is_strict(coverage: Coverage) -> bool:
    """Definition 2.3, checked over all factor pairs (with renaming)."""
    return not _find_strictness_violations(coverage)


def factor_unifications(
    coverage: Coverage,
) -> List[Tuple[int, int, Unification]]:
    """All admissible sub-goal unifications between factor pairs.

    Factors are renamed apart before unifying (the paper's convention);
    pairs are unordered but both (i, j) sub-goal orientations are
    produced by ``all_unifications``.
    """
    results: List[Tuple[int, int, Unification]] = []
    for i, left in enumerate(coverage.factors):
        for j in range(i, len(coverage.factors)):
            right, _ = coverage.factors[j].rename_apart(
                left.variables, suffix="_u"
            )
            for unification in all_unifications(left, right):
                results.append((i, j, unification))
    return results


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _assemble(
    query: ConjunctiveQuery, covers: Sequence[ConjunctiveQuery]
) -> Coverage:
    factors: List[ConjunctiveQuery] = []
    keys: Dict[str, int] = {}
    cover_factors: List[FrozenSet[int]] = []
    for cover in covers:
        indices: Set[int] = set()
        for component in cover.connected_components():
            key = canonical_string(component)
            if key not in keys:
                keys[key] = len(factors)
                factors.append(component)
            indices.add(keys[key])
        cover_factors.append(frozenset(indices))
    return Coverage(
        query=query,
        covers=tuple(covers),
        factors=tuple(factors),
        cover_factors=tuple(cover_factors),
    )


_MINIMIZE_CACHE: Dict[str, ConjunctiveQuery] = {}


def _cleanup_one(cover: ConjunctiveQuery) -> Optional[ConjunctiveQuery]:
    """Drop trivial predicates, reject unsatisfiable, minimize (memoized)."""
    candidate = cover.drop_trivial_predicates()
    if not candidate.is_satisfiable():
        return None
    key = str(candidate)
    cached = _MINIMIZE_CACHE.get(key)
    if cached is None:
        cached = minimize(candidate)
        _MINIMIZE_CACHE[key] = cached
    return cached


def _dedup(covers) -> List[ConjunctiveQuery]:
    unique: List[ConjunctiveQuery] = []
    seen = set()
    for cover in covers:
        if cover not in seen:
            seen.add(cover)
            unique.append(cover)
    return unique


def _drop_redundant(covers: Sequence[ConjunctiveQuery]) -> List[ConjunctiveQuery]:
    """Remove covers contained in another cover (kept: the earlier of an
    equivalent pair)."""
    kept: List[ConjunctiveQuery] = []
    covers = _dedup(covers)
    for i, cover in enumerate(covers):
        redundant = False
        for j, other in enumerate(covers):
            if i == j:
                continue
            if contained_in(cover, other):
                if not contained_in(other, cover) or j < i:
                    redundant = True
                    break
        if not redundant:
            kept.append(cover)
    return kept


def _find_strictness_violations(
    coverage: Coverage,
) -> Dict[int, Tuple[Term, Term]]:
    """All (cover index -> (u, v)) pairs witnessing non-strict unifiers.

    A unifier is non-strict when it maps a variable to a constant or
    merges two variables of the same factor; the returned pairs are
    the ones to split on (at most one per cover per round).  Both
    inter-factor unifiers (on renamed-apart copies) and unifiers
    between two sub-goals of the *same* factor copy are checked —
    Example 3.5 (``R(x,y), R(y,x)``) shows the latter are what force
    the trivial coverage to be refined.
    """
    covers = list(coverage.covers)
    splits: Dict[int, Tuple[Term, Term]] = {}

    def record(factor: ConjunctiveQuery, u: Term, v: Term) -> None:
        located = _locate_pair(covers, factor, u, v, exclude=splits)
        if located is not None:
            splits[located[0]] = (located[1], located[2])

    for factor in coverage.factors:
        pair = _intra_factor_violation(factor)
        if pair is not None:
            record(factor, *pair)
    for i, j, unification in factor_unifications(coverage):
        for source_index, source in ((i, unification.left), (j, unification.right)):
            pair = _merged_pair(source, unification)
            if pair is not None:
                record(coverage.factors[source_index], *pair)
    return splits


def _intra_factor_violation(
    factor: ConjunctiveQuery,
) -> Optional[Tuple[Term, Term]]:
    """A merged pair from unifying two sub-goals of the same copy."""
    from ..core.orders import OrderConstraints
    from ..core.predicates import Comparison
    from ..core.unification import unify_atoms

    atoms = factor.atoms
    for a in range(len(atoms)):
        for b in range(a + 1, len(atoms)):
            theta = unify_atoms(atoms[a], atoms[b])
            if theta is None:
                continue
            # The unifier must be consistent with the factor's own
            # predicates, otherwise it can never be realized.
            equalities = [
                Comparison("=", variable, image)
                for variable, image in theta.items()
            ]
            system = OrderConstraints(tuple(factor.predicates) + tuple(equalities))
            if not system.is_satisfiable():
                continue
            variables = factor.variables
            for idx, u in enumerate(variables):
                image_u = theta.apply(u)
                if isinstance(image_u, Constant):
                    return (u, image_u)
                for v in variables[idx + 1:]:
                    if image_u == theta.apply(v):
                        return (u, v)
    return None


def _merged_pair(
    source: ConjunctiveQuery, unification: Unification
) -> Optional[Tuple[Term, Term]]:
    theta = unification.substitution
    variables = source.variables
    for index, u in enumerate(variables):
        image_u = theta.apply(u)
        if isinstance(image_u, Constant):
            return (u, image_u)
        for v in variables[index + 1:]:
            if image_u == theta.apply(v):
                return (u, v)
    return None


def _locate_pair(
    covers: List[ConjunctiveQuery],
    factor: ConjunctiveQuery,
    u: Term,
    v: Term,
    exclude: Optional[Dict[int, Tuple[Term, Term]]] = None,
    order_required: bool = False,
) -> Optional[Tuple[int, Term, Term]]:
    """Find a cover containing ``factor``'s pair and still undetermined.

    The factor's variables are named as in its originating cover, and
    deduplication keeps the first representative, so a direct variable
    lookup against each cover suffices.  Covers listed in ``exclude``
    (already scheduled for a split this round) are skipped.

    Strictness only needs the pair *resolved* (``u = v`` entailed, so
    the unifier is uniform, or ``u != v`` entailed, so the unifier is
    blocked).  Inversion-path refinement (``order_required``) insists
    on a full order decision (``<``, ``=`` or ``>``).
    """
    for cover_index, cover in enumerate(covers):
        if exclude and cover_index in exclude:
            continue
        cover_variables = set(cover.variables)
        present_u = isinstance(u, Constant) or u in cover_variables
        present_v = isinstance(v, Constant) or v in cover_variables
        if not (present_u and present_v):
            continue
        if not _cooccur(cover, u, v):
            continue
        constraints = cover.order_constraints
        if order_required:
            tests = (
                Comparison("<", u, v),
                Comparison("=", u, v),
                Comparison("<", v, u),
            )
        else:
            tests = (Comparison("=", u, v), Comparison("!=", u, v))
        if not any(constraints.entails(pred) for pred in tests):
            return (cover_index, u, v)
    return None


def _cooccur(cover: ConjunctiveQuery, u: Term, v: Term) -> bool:
    for atom in cover.atoms:
        terms = set(atom.terms)
        u_in = u in terms or isinstance(u, Constant)
        v_in = v in terms or isinstance(v, Constant)
        if u_in and v_in and (u in terms or v in terms):
            return True
    return False


def _split_pair(
    cover: ConjunctiveQuery, u: Term, v: Term
) -> List[ConjunctiveQuery]:
    """Order-split a cover on a term pair.

    Variable pairs use the trichotomy
    ``cover ≡ (cover, u<v) ∨ cover[u:=v] ∨ (cover, v<u)``; a
    variable–constant pair only needs the binary split
    ``cover[u:=c] ∨ (cover, u != c)`` — blocking the unifier does not
    require knowing the direction of the inequality, and this halves
    the refinement fan-out (Example 3.13 uses exactly ``r != a``).
    """
    if isinstance(u, Variable):
        equal = cover.substitute(u, v)
    else:
        assert isinstance(v, Variable)
        equal = cover.substitute(v, u)
    if isinstance(u, Constant) or isinstance(v, Constant):
        distinct = ConjunctiveQuery(
            cover.atoms, cover.predicates + (Comparison("!=", u, v),)
        )
        return [equal, distinct]
    less = ConjunctiveQuery(cover.atoms, cover.predicates + (Comparison("<", u, v),))
    greater = ConjunctiveQuery(cover.atoms, cover.predicates + (Comparison("<", v, u),))
    return [less, equal, greater]
