"""Signature coefficients ``N`` and eraser search (Defs. 2.11, 2.21, E.6).

The expansion of a coverage weights each signature ``σ ⊆ F`` by a
coefficient ``N(σ)``.  Lemma D.2 gives the robust formulation used
here::

    N(σ) = Σ { (-1)^{|σ0|} : σ0 ⊆ σ, σ0 ∉ up(ψ) }

where ``ψ`` is the set of factor-index sets that make the query true
(the covers, upward closed).  An *eraser* for a hierarchical join
``jq`` of ``h_i, h_j`` is a set ``E ⊆ H*`` of queries with
homomorphisms into ``jq`` such that attaching ``E`` never changes the
coefficient: ``N(σ ∪ {i,j}) = N(σ ∪ {i,j} ∪ E)`` for all ``σ``.  The
terms the PTIME algorithm cannot compute then cancel (Theorem 2.22 /
E.7); when some inversion-carrying join has no eraser, the query is
#P-hard (Theorem 4.4 / E.13).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.homomorphism import has_homomorphism
from ..core.query import ConjunctiveQuery
from .closure import HierarchicalUnifier

Signature = FrozenSet[int]


def upward_membership(
    minimal: Sequence[Signature],
) -> "UpwardFamily":
    """The upward closure of ``minimal`` with fast membership tests."""
    return UpwardFamily(minimal)


class UpwardFamily:
    """``up(ψ)`` represented by its minimal elements."""

    def __init__(self, generators: Iterable[Signature]) -> None:
        self.minimal: List[Signature] = _minimal_elements(list(generators))
        self._coefficient_cache: dict = {}

    def __contains__(self, signature: Signature) -> bool:
        return any(generator <= signature for generator in self.minimal)

    def relevant_elements(self) -> Signature:
        """Indices appearing in some generator.

        ``N(σ) = 0`` whenever σ contains an element outside this set
        (its subsets cancel in ±e pairs), which lets the eraser check
        enumerate signatures over this set only.
        """
        if not self.minimal:
            return frozenset()
        return frozenset().union(*self.minimal)


def coefficient(signature: Signature, psi: UpwardFamily) -> int:
    """``N(σ)`` per Lemma D.2.

    Computed by inclusion–exclusion over the minimal generators inside
    ``σ`` instead of enumerating all ``2^{|σ|}`` subsets:
    ``Σ_{σ0 ⊆ σ} (-1)^{|σ0|}`` is 0 unless ``σ = ∅``, so
    ``N(σ) = [σ = ∅] - Σ_{σ0 ⊆ σ, σ0 ∈ up(ψ)} (-1)^{|σ0|}``, and the
    second sum expands over unions of the generators contained in σ.
    """
    cached = psi._coefficient_cache.get(signature)
    if cached is not None:
        return cached
    inside = [g for g in psi.minimal if g <= signature]
    total = 1 if not signature else 0
    # Inclusion–exclusion over which generators a subset σ0 covers:
    # Σ_{σ0 ∈ up(ψ), σ0 ⊆ σ} (-1)^{|σ0|}
    #   = Σ_{∅≠G ⊆ inside} (-1)^{|G|+1} Σ_{∪G ⊆ σ0 ⊆ σ} (-1)^{|σ0|}
    # and the inner sum is (-1)^{|σ|} iff ∪G = σ (0 otherwise).
    up_sum = 0
    for size in range(1, len(inside) + 1):
        for group in itertools.combinations(inside, size):
            union: Signature = frozenset().union(*group)
            if union == signature:
                up_sum += (-1) ** (size + 1) * (-1) ** len(signature)
    result = total - up_sum
    psi._coefficient_cache[signature] = result
    return result


def psi_from_covers(
    cover_factor_sets: Sequence[FrozenSet[int]],
    closure: Sequence[HierarchicalUnifier],
    hstar: Sequence[int],
) -> UpwardFamily:
    """``ψ`` over ``H*`` indices (Appendix E.2.1).

    ``S ⊆ hstar`` belongs to ψ iff some cover's factors are included in
    ``∪_{i∈S} Factors(h_i)``.  Minimal generators are computed per
    cover: the minimal hitting families of ``H*`` members whose factor
    sets jointly cover the cover.
    """
    generators: List[Signature] = []
    k = len(hstar)
    for cover in cover_factor_sets:
        # Only members contributing a factor of this cover can appear in
        # a *minimal* covering set, and a minimal set has at most one
        # member per cover factor.
        relevant = [
            position
            for position in range(k)
            if closure[hstar[position]].factors & cover
        ]
        max_size = min(len(cover), len(relevant))
        for size in range(1, max_size + 1):
            for subset in itertools.combinations(relevant, size):
                union: Set[int] = set()
                for position in subset:
                    union |= closure[hstar[position]].factors
                if cover <= union:
                    generators.append(frozenset(subset))
        # Non-minimal picks are pruned by UpwardFamily below.
    return UpwardFamily(generators)


def find_eraser(
    join_query: ConjunctiveQuery,
    i: int,
    j: int,
    closure: Sequence[HierarchicalUnifier],
    hstar: Sequence[int],
    psi: UpwardFamily,
    max_eraser_size: int = 3,
) -> Optional[Tuple[int, ...]]:
    """Search for an eraser for the join of ``H*`` members ``i, j``.

    ``i, j`` are positions in ``hstar``.  Candidates are ``H*`` members
    with a homomorphism into the join query; subsets up to
    ``max_eraser_size`` are tested against the coefficient condition
    over every signature ``σ ⊆ [k]``.

    Returns the eraser as positions into ``hstar``, or None.
    """
    k = len(hstar)
    candidates = [
        position
        for position in range(k)
        if position not in (i, j)
        and has_homomorphism(closure[hstar[position]].query, join_query)
    ]
    base = frozenset({i, j})
    budget_hit = False
    for size in range(1, min(max_eraser_size, len(candidates)) + 1):
        for eraser in itertools.combinations(candidates, size):
            try:
                if _coefficient_condition(base, frozenset(eraser), k, psi):
                    return eraser
            except EraserBudgetExceeded:
                budget_hit = True
    if budget_hit:
        raise EraserBudgetExceeded(
            "some eraser candidates could not be verified within budget"
        )
    return None


#: Budget on signature comparisons per eraser candidate.  Counterexamples
#: show up at small signature sizes in practice; exhausting the budget
#: without one means the condition could not be *verified*.
CONDITION_BUDGET = 200_000


class EraserBudgetExceeded(RuntimeError):
    """The signature space was too large to verify an eraser."""


def _coefficient_condition(
    base: Signature, eraser: Signature, k: int, psi: UpwardFamily
) -> bool:
    """``∀ σ ⊆ [k]: N(σ ∪ base) = N(σ ∪ base ∪ eraser)`` (Def. E.6).

    Signatures containing an index outside the generators' support have
    coefficient 0 on both sides, so only subsets of
    ``relevant_elements`` need enumerating.  Enumeration goes by
    increasing signature size and is budgeted: a False answer (found a
    counterexample) is always exact; exhausting the budget raises.
    """
    pool = sorted(psi.relevant_elements())
    checked = 0
    for size in range(len(pool) + 1):
        for sg in itertools.combinations(pool, size):
            sigma = base | frozenset(sg)
            if coefficient(sigma, psi) != coefficient(sigma | eraser, psi):
                return False
            checked += 1
            if checked > CONDITION_BUDGET:
                raise EraserBudgetExceeded(
                    f"verified {checked} signatures over a pool of "
                    f"{len(pool)} without exhausting the space"
                )
    return True


def _minimal_elements(sets: List[Signature]) -> List[Signature]:
    unique = list(dict.fromkeys(sets))
    unique.sort(key=len)
    minimal: List[Signature] = []
    for candidate in unique:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return minimal
