"""A sharded pool of :class:`~repro.serve.session.QuerySession` workers.

One :class:`QuerySession` amortizes work across calls; a
:class:`ServerPool` amortizes it across *processes* for concurrent
traffic.  The moving parts:

* **Shape sharding.**  Requests are hash-partitioned by the canonical
  query shape (:func:`shard_of`), so every shape always lands on the
  same worker and that worker's prepared-query LRU and structural
  circuit cache stay hot.  Sharding also multiplies aggregate cache
  capacity: each worker only has to hold its own slice of the shape
  universe, where a single session would thrash its LRU.

* **A batching front.**  Requests issued concurrently (from many
  threads, or the HTTP server's handlers) park in a per-shard buffer;
  whichever thread finds the shard idle becomes the *driver* and
  flushes the whole buffer as one ``evaluate_many`` /
  ``answers_many`` message, so in-flight same-shape requests coalesce
  into a single vectorized circuit sweep inside the worker.

* **Version broadcast.**  Each worker holds a replica of the database.
  :meth:`ServerPool.update` validates against the front copy, then
  broadcasts the delta to every worker queue; per-queue FIFO order
  guarantees any request submitted after ``update`` returns observes
  it.  Direct mutations of the front database (not through the pool)
  are detected by version drift and repaired with a full snapshot
  broadcast before the next dispatch.

* **Supervision and respawn.**  Every worker exit (crash, OOM kill,
  injected fault) wakes a supervisor that reaps the shard, respawns it
  from the pool's base snapshot plus a bounded update log (replaying
  whatever FIFO broadcast the dead worker missed), and re-dispatches
  the shard's in-flight requests to the fresh process — callers see
  latency, not errors.  A crash-looping shard (too many deaths inside
  :attr:`respawn_window` seconds) degrades to inline evaluation on the
  front instead of poisoning the pool.  Replies travel over per-worker
  pipes, so a worker killed mid-reply corrupts only its own channel —
  never a shared result queue.

* **Deadlines, retry and admission.**  Each request carries an
  optional deadline; expiry purges the in-flight entry (no slot leak,
  no stale coalescing target) and retries once with capped backoff on
  the respawned or inline path.  A bounded per-shard queue depth sheds
  over-limit requests fast (:class:`PoolOverloadError` — never
  queued), and an overload mode (queue-wait EWMA above threshold)
  degrades gracefully by clamping Monte Carlo sample budgets.

* **Monte Carlo scatter.**  :meth:`ServerPool.estimate_lineages`
  ships a batch of unsafe lineages to the workers as packed flat
  buffers over shared memory (pickle fallback), with a worker-side
  structural cache so repeated spikes on the same query transfer
  nothing, and an adaptive cost model that keeps small batches inline
  — the pool-level answer to an unsafe-query spike, exact-seed-
  deterministic per lineage (see ``docs/ARCHITECTURE.md`` § "Monte
  Carlo scatter").

``workers=0`` runs everything inline on one lock-guarded session in
this process — same API, no subprocesses — which keeps doctests, small
deployments and fork-less platforms simple::

    >>> from repro.db.database import ProbabilisticDatabase
    >>> db = ProbabilisticDatabase.from_dict(
    ...     {"R": {(1,): 0.5}, "S": {(1, 2): 0.4}})
    >>> with ServerPool(db, workers=0) as pool:
    ...     round(pool.evaluate("R(x), S(x,y)"), 6)
    0.2
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.parser import parse
from ..core.query import ConjunctiveQuery, canonical_string
from ..core.union import AnyQuery, UnionQuery
from ..db.database import ProbabilisticDatabase
from ..db.relation import Probability, Value
from ..engines.base import Answer
from ..engines.montecarlo import MonteCarloEngine, resolve_backend
from ..lineage.boolean import Lineage
from ..lineage.packed import HAVE_NUMPY, PackedLineage, SampleArena
from ..obs.metrics import Ewma, MetricsRegistry, merge_snapshots
from .faults import build_injector
from .session import QueryLike, QuerySession, SessionStats
from .transfer import ScatterCache, pack_arrays, release_segment, unpack_arrays

SCATTER_POLICIES = ("adaptive", "always", "never")
SCATTER_TRANSPORTS = ("auto", "shm", "pickle")

__all__ = [
    "PoolOverloadError",
    "PoolStats",
    "PoolTimeoutError",
    "ServerPool",
    "SessionConfig",
    "WorkerDiedError",
    "WorkerError",
    "shard_of",
]


class WorkerError(RuntimeError):
    """An exception raised inside a worker process, re-raised here."""


class WorkerDiedError(WorkerError):
    """A worker process exited while this request was in flight.

    Internal paths catch this and retry on the respawned (or inline)
    path; it only reaches a caller when every retry avenue failed.
    """


class PoolTimeoutError(TimeoutError):
    """A request's deadline expired before its worker replied.

    Subclasses the builtin :class:`TimeoutError`, so callers written
    against ``future.result(timeout)`` semantics keep working.  The
    pool purges the stale in-flight entry before raising — a late
    reply from a stalled worker is dropped, never misrouted.
    """


class PoolOverloadError(RuntimeError):
    """The request was shed at admission: its shard's queue is full.

    Raised *fast*, before any queueing — the HTTP front maps it to
    ``503`` with ``Retry-After``.  Shedding is load protection, not
    failure: the answer for this query is still computable, just not
    at the current queue depth.
    """


def shard_of(shape: str, workers: int) -> int:
    """Stable shard index for a canonical query shape.

    Uses CRC-32 rather than :func:`hash` — Python string hashing is
    salted per process, and the whole point is that the same shape maps
    to the same worker across the front, restarts and tests.

    >>> shard_of("R(v0), S(v0, v1)", 4) == shard_of("R(v0), S(v0, v1)", 4)
    True
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    return zlib.crc32(shape.encode("utf-8")) % workers


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-POSIX
        return os.cpu_count() or 1


def _decompose(key, lineage: Lineage) -> tuple:
    """Plain clauses/weights for the legacy queue op: pickling a
    Lineage would drag its cached PackedLineage arrays along."""
    return (
        key, lineage.clauses, dict(lineage.weights), lineage.certainly_true
    )


@dataclass(frozen=True)
class SessionConfig:
    """Picklable recipe for building one worker's :class:`QuerySession`.

    Engines themselves do not cross process boundaries — each worker
    rebuilds its own stack from this config plus a database snapshot,
    so every shard gets private caches and its own sampling backend.
    """

    exact_fallback: bool = False
    mc_samples: int = 20_000
    mc_seed: Optional[int] = None
    compile_budget: Optional[int] = 10_000
    mc_backend: str = "auto"
    max_prepared: int = 256
    #: When False, every worker gets a disabled (null) registry —
    #: the knob ``benchmarks/bench_obs.py`` uses to price telemetry.
    metrics_enabled: bool = True
    #: Capacity of each worker's packed-lineage LRU (structures kept
    #: for reweight-only scatter refreshes); 0 disables caching.
    scatter_cache: int = 128
    #: Fault-injection spec for the chaos harness
    #: (:mod:`repro.serve.faults`), e.g. ``"seed=7,kill=0.01"``.
    #: ``None`` (production) leaves the worker loop fault-free; the
    #: ``REPRO_FAULTS`` environment variable arms it process-wide.
    faults: Optional[str] = None

    def build_session(
        self,
        db: ProbabilisticDatabase,
        metrics: Optional[MetricsRegistry] = None,
    ) -> QuerySession:
        registry = (
            metrics if metrics is not None
            else MetricsRegistry(enabled=self.metrics_enabled)
        )
        return QuerySession(
            db,
            exact_fallback=self.exact_fallback,
            mc_samples=self.mc_samples,
            mc_seed=self.mc_seed,
            compile_budget=self.compile_budget,
            mc_backend=self.mc_backend,
            max_prepared=self.max_prepared,
            metrics=registry,
        )


@dataclass
class PoolStats:
    """Aggregated serving statistics across the pool.

    ``workers`` holds one :class:`SessionStats` per worker (in shard
    order); the front-side counters describe dispatch behaviour.
    """

    workers: List[SessionStats] = field(default_factory=list)
    #: Individual requests accepted by the front.
    requests: int = 0
    #: Worker messages dispatched by the batching front.
    batches: int = 0
    #: Requests that shared a dispatch with at least one other request.
    coalesced: int = 0
    #: Single-tuple update broadcasts.
    updates: int = 0
    #: Full-snapshot re-syncs forced by out-of-band front-db mutation.
    syncs: int = 0
    #: Requests whose deadline expired before a reply (entry purged).
    timeouts: int = 0
    #: Requests shed at admission (never queued).
    sheds: int = 0
    #: Worker processes respawned by the supervisor.
    respawns: int = 0
    #: Shards degraded to inline front evaluation after crash-looping.
    degraded: List[int] = field(default_factory=list)
    #: The front's fallback session (serves degraded shards), if built.
    front_session: Optional[SessionStats] = None

    @property
    def combined(self) -> SessionStats:
        """The field-wise sum of every worker's session counters."""
        parts = list(self.workers)
        if self.front_session is not None:
            parts.append(self.front_session)
        return SessionStats.merged(parts)

    def describe(self) -> str:
        extra = ""
        if self.timeouts or self.sheds or self.respawns or self.degraded:
            extra = (
                f", {self.timeouts} timeouts, {self.sheds} shed, "
                f"{self.respawns} respawns"
            )
            if self.degraded:
                extra += f", degraded shards {self.degraded}"
        return (
            f"{len(self.workers)} workers, {self.requests} requests in "
            f"{self.batches} batches ({self.coalesced} coalesced), "
            f"{self.updates} updates, {self.syncs} syncs{extra}; "
            f"combined: {self.combined.describe()}"
        )


# ----------------------------------------------------------------------
# Worker process protocol
# ----------------------------------------------------------------------
#
# Requests are (op, request_id, payload) tuples on a per-worker queue;
# replies are (request_id, ok, payload) sent back on that worker's own
# reply pipe (one per worker: a worker killed mid-send truncates only
# its own channel, which the supervisor discards on respawn).  "update",
# "sync" and "configure" are fire-and-forget (the front validated them
# already); everything else is answered at most once — the reply is
# deliberately suppressed under the "drop" fault.  Failure replies are
# ("error" | "timeout", message) pairs so deadline expiry inside the
# worker surfaces as PoolTimeoutError, not WorkerError.

_STOP = "stop"

#: Ops whose payload is ``(items, deadline)`` — the worker drops the
#: whole batch unanswered-as-timeout when every deadline has passed.
_DEADLINE_OPS = frozenset({"evaluate_many", "answers_many"})


def _worker_main(config, snapshot, request_queue, reply, worker_index) -> None:
    """Entry point of one worker process."""
    db = ProbabilisticDatabase.from_snapshot(snapshot)
    session = config.build_session(db)
    # Scatter state outlives session re-syncs: cached packed lineages
    # are validated by front-computed hashes, never by db versions, so
    # a sync (or update) can't make an entry stale — at worst the front
    # ships a fresh weights vector.
    scatter = _WorkerScatter(config)
    injector = build_injector(config.faults, worker_index)
    while True:
        op, request_id, payload = request_queue.get()
        fault = injector.before(op) if injector is not None else None
        if op == _STOP:
            reply.send((request_id, True, None))
            return
        if op == "update":
            db.add(*payload)
            continue
        if op == "configure":
            session.set_sample_budget(payload["mc_samples"])
            continue
        if op == "sync":
            db = ProbabilisticDatabase.from_snapshot(payload)
            stats = session.stats
            # The rebuilt session starts cold, but the worker's serving
            # history doesn't reset — keep counters monotone for /stats,
            # and re-use the metrics registry (re-registration hands the
            # new session the existing families) for /metrics.
            session = config.build_session(db, metrics=session.metrics)
            session.stats = stats
            continue
        if op in _DEADLINE_OPS:
            deadline = payload[1]
            if deadline is not None and time.time() > deadline:
                # The batch expired while queued — don't burn compute
                # on answers nobody is waiting for.
                if fault != "drop":
                    reply.send((
                        request_id, False,
                        ("timeout", "deadline expired in worker queue"),
                    ))
                continue
        try:
            result = _worker_execute(session, op, payload, scatter)
        except Exception as error:  # noqa: BLE001 - forwarded to the front
            if fault != "drop":
                reply.send((
                    request_id, False,
                    ("error", f"{type(error).__name__}: {error}"),
                ))
        else:
            if fault != "drop":
                reply.send((request_id, True, result))


class _WorkerScatter:
    """Per-worker scatter state: the packed-lineage LRU and the arena."""

    def __init__(self, config: SessionConfig) -> None:
        self.cache = ScatterCache(config.scatter_cache)
        self.arena = SampleArena() if HAVE_NUMPY else None


def _worker_execute(
    session: QuerySession, op: str, payload,
    scatter: Optional[_WorkerScatter] = None,
):
    if op == "evaluate_many":
        return session.evaluate_many(payload[0])
    if op == "answers_many":
        items = payload[0]
        rankings = session.answers_many([query for query, _k in items])
        return [
            ranking if k is None else ranking[:k]
            for (_query, k), ranking in zip(items, rankings)
        ]
    if op == "estimate":
        samples, items = payload
        monte_carlo = session.router.monte_carlo
        if samples is not None:
            # reconfigured() (not a hand-rolled ctor call) so the
            # override keeps the method, backend and metrics registry.
            monte_carlo = monte_carlo.reconfigured(samples=samples)
        return [
            (key,) + monte_carlo.estimate_lineage(
                Lineage(clauses, weights, certainly_true=certain)
            )
            for key, clauses, weights, certain in items
        ]
    if op == "estimate_packed":
        return _worker_estimate_packed(session, payload, scatter)
    if op == "stats":
        return session.stats
    if op == "metrics":
        return session.metrics.snapshot()
    raise ValueError(f"unknown worker op {op!r}")


def _worker_estimate_packed(
    session: QuerySession, payload, scatter: _WorkerScatter
):
    """Estimate a manifest of packed lineages shipped as flat buffers.

    Manifest entries are ``("full", key, shape_hash, weight_hash,
    {buffer_name: array_index})``, ``("weights", key, shape_hash,
    weight_hash, array_index)`` or ``("cached", key, shape_hash,
    weight_hash)``; array indices point into the transport payload.
    Cache lookups the front predicted wrong (evictions, races) come
    back in ``misses`` and the front retries them with full buffers —
    the worker never guesses at missing structure.
    """
    samples, transport_payload, manifest = payload
    arrays = unpack_arrays(transport_payload)
    monte_carlo = session.router.monte_carlo
    if samples is not None:
        monte_carlo = monte_carlo.reconfigured(samples=samples)
    cache = scatter.cache
    results = []
    misses = []
    start = time.perf_counter()
    for entry in manifest:
        kind, key, shape_hash, weight_hash = entry[:4]
        if kind == "full":
            packed = PackedLineage.from_buffers(
                {name: arrays[index] for name, index in entry[4].items()}
            )
            cache.put(shape_hash, weight_hash, packed)
        elif kind == "weights":
            packed = cache.get(shape_hash, weight_hash, arrays[entry[4]])
        else:  # "cached"
            packed = cache.get(shape_hash, weight_hash)
        if packed is None:
            misses.append(key)
            continue
        estimate, half_width = monte_carlo.estimate_packed(
            packed, scatter.arena
        )
        results.append((key, estimate, half_width))
    return {
        "results": results,
        "misses": misses,
        "compute_seconds": time.perf_counter() - start,
    }


@dataclass
class _PendingItem:
    kind: str  # "evaluate" | "answers"
    query: AnyQuery
    k: Optional[int]
    future: Future
    #: ``perf_counter`` at buffer entry — dispatch observes the wait.
    enqueued: float = 0.0
    #: Absolute ``time.time()`` deadline, or None (wait forever).
    deadline: Optional[float] = None


#: One in-flight worker message: futures awaiting the reply, the shard
#: that owns it, the payload (for supervisor re-dispatch after a worker
#: death) and whether it has already been retried once.
@dataclass
class _Inflight:
    op: str
    futures: List[Future]
    shard: int
    payload: object = None
    retried: bool = False


class ServerPool:
    """Shard :class:`QuerySession` serving across worker processes.

    Args:
        db: the authoritative database.  Mutate it through
            :meth:`update` to get incremental broadcast; direct
            mutation is tolerated but costs a full re-sync.
        workers: number of worker processes; ``0`` serves inline from
            this process (one lock-guarded session, no subprocesses).
        config: per-worker :class:`SessionConfig`; defaults match
            :class:`QuerySession` defaults.
        start_method: :mod:`multiprocessing` start method.  The default
            ``"spawn"`` is safe regardless of the front's threads (the
            supervisor also respawns with it); pass ``"fork"`` on POSIX
            for faster startup of fork-safe workloads.
        request_timeout: default per-request deadline in seconds
            (None = wait forever).  Individual calls override it via
            their ``timeout`` argument.
        request_retries: how many times a timed-out request is retried
            (with capped exponential backoff) before
            :class:`PoolTimeoutError` reaches the caller.
        retry_backoff: initial backoff in seconds between retries;
            doubles per attempt, capped at 1s.
        max_queue_depth: per-shard admission bound — requests beyond
            this many unresolved items on one shard are shed
            immediately with :class:`PoolOverloadError` (never queued).
            None disables shedding.
        respawn_limit / respawn_window: a shard dying more than
            ``respawn_limit`` times within ``respawn_window`` seconds
            is crash-looping: it degrades to inline evaluation on the
            front instead of respawning again.
        update_log_limit: bound on the replay log used to rehydrate
            respawned workers; exceeding it refreshes the base snapshot
            and clears the log.
        overload_threshold: queue-wait EWMA (seconds) above which the
            pool enters overload mode and clamps every worker's Monte
            Carlo sample budget (``overload_samples``, default a tenth
            of the configured budget); recovery at half the threshold.
            None disables overload degradation.
        scatter_policy: when :meth:`estimate_lineages` ships work to
            workers — ``"adaptive"`` (cost model, the default),
            ``"always"`` or ``"never"`` (always estimate on the front).
        scatter_transport: how packed lineages travel — ``"auto"``
            (shared memory, pickle when unavailable), ``"shm"`` or
            ``"pickle"``.

    Thread-safe: any number of threads may call :meth:`evaluate`,
    :meth:`answers`, :meth:`update` etc. concurrently; concurrent
    same-shard requests coalesce into batched sweeps.  Use as a
    context manager (or call :meth:`close`) for graceful shutdown.
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        workers: int = 4,
        config: Optional[SessionConfig] = None,
        start_method: str = "spawn",
        request_timeout: Optional[float] = None,
        request_retries: int = 1,
        retry_backoff: float = 0.05,
        max_queue_depth: Optional[int] = None,
        respawn_limit: int = 3,
        respawn_window: float = 30.0,
        update_log_limit: int = 512,
        overload_threshold: Optional[float] = None,
        overload_samples: Optional[int] = None,
        scatter_policy: str = "adaptive",
        scatter_transport: str = "auto",
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if request_retries < 0:
            raise ValueError(
                f"request_retries must be >= 0, got {request_retries}"
            )
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if scatter_policy not in SCATTER_POLICIES:
            raise ValueError(
                f"unknown scatter policy {scatter_policy!r}; "
                f"expected one of {SCATTER_POLICIES}"
            )
        if scatter_transport not in SCATTER_TRANSPORTS:
            raise ValueError(
                f"unknown scatter transport {scatter_transport!r}; "
                f"expected one of {SCATTER_TRANSPORTS}"
            )
        self.db = db
        self.config = config if config is not None else SessionConfig()
        self.workers = workers
        self.request_timeout = request_timeout
        self.request_retries = request_retries
        self.retry_backoff = retry_backoff
        self.max_queue_depth = max_queue_depth
        self.respawn_limit = respawn_limit
        self.respawn_window = respawn_window
        self.update_log_limit = update_log_limit
        self.overload_threshold = overload_threshold
        self.overload_samples = overload_samples
        self.scatter_policy = scatter_policy
        self.scatter_transport = scatter_transport
        #: Introspection: what the last ``estimate_lineages`` call
        #: decided (choice, estimated seconds, item counts) — consumed
        #: by the benchmark sweep and the policy tests.
        self.last_scatter_decision: Optional[dict] = None
        # Adaptive-policy cost model: EWMA of seconds per cost unit
        # (batch_cost × sample) and of per-call dispatch overhead,
        # refreshed from the same measurements that feed the
        # repro_pool_scatter_seconds histogram.  Seeds are deliberately
        # pessimistic-per-unit so a cold pool keeps small batches
        # inline until real measurements arrive.
        self._unit_seconds = Ewma(alpha=0.3, initial=5e-9)
        self._overhead_seconds = Ewma(alpha=0.3, initial=2e-3)
        #: Queue-wait smoothing that drives the overload detector.
        self._wait_ewma = Ewma(alpha=0.2, initial=0.0)
        self._overloaded = False
        self._front_mc: Optional[MonteCarloEngine] = None
        self._front_arena = SampleArena() if HAVE_NUMPY else None
        self._lock = threading.Lock()
        self._closed = False
        self._requests = 0
        self._batches = 0
        self._coalesced = 0
        self._updates = 0
        self._syncs = 0
        self._timeouts = 0
        self._sheds = 0
        self._respawns = 0
        #: Front-side registry: dispatch and queueing metrics live
        #: here; :meth:`metrics_snapshot` merges the workers' registries
        #: in (inline mode shares this registry with the session).
        self.metrics = MetricsRegistry(enabled=self.config.metrics_enabled)
        self._metric_requests = self.metrics.counter(
            "repro_pool_requests_total",
            "Requests accepted by the pool front",
            ("kind",),
        )
        self._metric_inflight = self.metrics.gauge(
            "repro_pool_inflight_requests",
            "Requests accepted by the front but not yet resolved",
        )
        self._metric_queue_wait = self.metrics.histogram(
            "repro_pool_queue_wait_seconds",
            "Time a request spent parked in its shard buffer before "
            "the driving thread dispatched it",
        )
        self._metric_batch_size = self.metrics.histogram(
            "repro_pool_batch_size",
            "Requests per dispatched worker message (coalescing depth)",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )
        self._metric_timeouts = self.metrics.counter(
            "repro_pool_request_timeouts_total",
            "Requests whose deadline expired before a worker reply "
            "(the stale in-flight entry is purged)",
        )
        self._metric_respawns = self.metrics.counter(
            "repro_pool_worker_respawns_total",
            "Worker processes respawned by the supervisor",
            ("shard",),
        )
        self._metric_shed = self.metrics.counter(
            "repro_pool_shed_total",
            "Requests shed at admission, by reason",
            ("reason",),
        )
        self._metric_degraded = self.metrics.gauge(
            "repro_pool_degraded_shards",
            "Shards currently degraded to inline front evaluation",
        )
        self._metric_overload = self.metrics.gauge(
            "repro_pool_overload_mode",
            "1 while the pool is clamping Monte Carlo budgets under "
            "overload",
        )
        self._metric_overload_transitions = self.metrics.counter(
            "repro_pool_overload_transitions_total",
            "Overload mode transitions",
            ("state",),
        )
        self._metric_scatter_seconds = self.metrics.histogram(
            "repro_pool_scatter_seconds",
            "End-to-end latency of Monte Carlo scatter calls "
            "(estimate_lineages)",
        )
        self._metric_scatter_policy = self.metrics.counter(
            "repro_pool_scatter_policy_total",
            "estimate_lineages calls by adaptive-policy outcome",
            ("choice",),
        )
        self._metric_scatter_items = self.metrics.counter(
            "repro_pool_scatter_items_total",
            "Lineages shipped to workers, by transfer path",
            ("path",),
        )
        self._metric_scatter_transport = self.metrics.counter(
            "repro_pool_scatter_transport_total",
            "Scatter messages dispatched, by transport",
            ("transport",),
        )
        #: Fallback serving for degraded shards (and twice-failed
        #: retries): one lock-guarded session over the authoritative
        #: front database, built lazily on first degrade.
        self._fallback: Optional[QuerySession] = None
        self._fallback_lock = threading.RLock()
        if workers == 0:
            self._session: Optional[QuerySession] = (
                self.config.build_session(db, metrics=self.metrics)
            )
            self._session_lock = threading.RLock()
            return
        self._session = None
        import multiprocessing

        self._ctx = multiprocessing.get_context(start_method)
        snapshot = db.snapshot()
        #: Respawn rehydration state: base snapshot + the updates
        #: broadcast since it was taken.  ``base + log`` always equals
        #: the current front database, so a respawned worker replays
        #: exactly the FIFO traffic its predecessor missed.
        self._log_snapshot = snapshot
        self._update_log: Deque[tuple] = deque()
        self._request_queues = []
        self._reply_readers: List[Optional[object]] = []
        self._processes = []
        for shard in range(workers):
            queue, process, reader = self._spawn_worker(shard, snapshot)
            self._request_queues.append(queue)
            self._processes.append(process)
            self._reply_readers.append(reader)
        self._synced_versions = (db.structure_version, db.version)
        #: Per shard: shape_hash -> weight_hash last shipped, the
        #: front's (optimistic) model of each worker's scatter cache.
        self._worker_shapes: List[Dict[str, str]] = [
            {} for _ in range(workers)
        ]
        #: request id -> in-flight record for dispatched messages.
        self._pending: Dict[int, _Inflight] = {}
        self._ids = itertools.count()
        self._buffers: List[List[_PendingItem]] = [[] for _ in range(workers)]
        self._driving = [False] * workers
        #: Unresolved items per shard (buffered + dispatched) — the
        #: admission counter behind ``max_queue_depth``.
        self._shard_load = [0] * workers
        self._degraded = [False] * workers
        self._deaths: List[Deque[float]] = [deque() for _ in range(workers)]
        self._last_exit: List[Optional[int]] = [None] * workers
        self._collector_stop = False
        self._collector = threading.Thread(
            target=self._collect, name="serverpool-collector", daemon=True
        )
        self._collector.start()
        self._supervisor = threading.Thread(
            target=self._supervise, name="serverpool-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn_worker(self, shard: int, snapshot) -> tuple:
        """Start one worker process; returns (queue, process, reader)."""
        queue = self._ctx.Queue()
        reader, writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.config, snapshot, queue, writer, shard),
            daemon=True,
        )
        process.start()
        # Close the front's copy of the write end: once the worker
        # dies, the pipe EOFs and the collector can tell a truncated
        # reply from a pending one.
        writer.close()
        return queue, process, reader

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------

    def evaluate(
        self, query: QueryLike, timeout: Optional[float] = None
    ) -> float:
        """``p(q)``, served by the query shape's home worker.

        ``timeout`` (seconds) overrides the pool's ``request_timeout``
        for this call; expiry raises :class:`PoolTimeoutError` after
        ``request_retries`` re-dispatches with backoff.
        """
        return self._call("evaluate", query, None, timeout)

    def evaluate_many(
        self, queries: Sequence[QueryLike], timeout: Optional[float] = None
    ) -> List[float]:
        """Evaluate a batch; shards fan out and run concurrently.

        The whole batch is buffered before any dispatch, so each shard
        receives at most one ``evaluate_many`` message for it — same-
        shard queries share a worker sweep instead of paying one round
        trip each.
        """
        return self._call_many(
            [("evaluate", query, None) for query in queries], timeout
        )

    def answers(
        self, query: QueryLike, k: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[Answer]:
        """Ranked answer tuples of one query."""
        return self._call("answers", query, k, timeout)

    def answers_many(
        self, queries: Sequence[QueryLike], k: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[List[Answer]]:
        """Ranked answers for a batch of queries (buffered like
        :meth:`evaluate_many`)."""
        return self._call_many(
            [("answers", query, k) for query in queries], timeout
        )

    def _call(self, kind, query, k, timeout):
        return self._call_many([(kind, query, k)], timeout)[0]

    def _call_many(self, items, timeout):
        """Submit, await, and retry timed-out items with backoff.

        Retries re-enter the normal submission path, so a retried
        request lands on the respawned worker (or the degraded inline
        path) — whatever currently serves its shard.
        """
        timeout = timeout if timeout is not None else self.request_timeout
        futures = self._request_many(items, timeout)
        results: List[object] = [None] * len(items)
        stale: List[int] = []
        for index, future in enumerate(futures):
            try:
                results[index] = self._result(future, timeout)
            except PoolTimeoutError:
                stale.append(index)
        if not stale:
            return results
        last_error: Optional[PoolTimeoutError] = None
        backoff = self.retry_backoff
        for attempt in range(self.request_retries):
            time.sleep(min(backoff * (2 ** attempt), 1.0))
            retry_futures = self._request_many(
                [items[index] for index in stale], timeout
            )
            still_stale = []
            for index, future in zip(stale, retry_futures):
                try:
                    results[index] = self._result(future, timeout)
                except PoolTimeoutError as error:
                    still_stale.append(index)
                    last_error = error
            stale = still_stale
            if not stale:
                return results
        if stale:
            raise last_error if last_error is not None else PoolTimeoutError(
                f"request timed out after {timeout}s"
            )
        return results

    def _result(self, future: Future, timeout: Optional[float]):
        """Await one reply; purge the in-flight entry on expiry.

        Without the purge, a timed-out request would leak its
        ``_pending`` slot forever and a late reply from a stalled
        worker could land on a future its caller abandoned long ago.
        """
        try:
            return future.result(timeout)
        except PoolTimeoutError:
            # A worker-reported deadline expiry stored on the future —
            # the reply already cleaned up its _pending slot.
            raise
        except FutureTimeoutError:
            self._purge(future)
            # The purge resolved the future (exception or a racing
            # reply); re-read it so a reply that won the race still
            # reaches the caller.
            try:
                return future.result(0)
            except FutureTimeoutError:  # pragma: no cover - purge always resolves
                raise PoolTimeoutError(
                    f"request timed out after {timeout}s"
                ) from None

    def _purge(self, future: Future) -> None:
        """Drop a timed-out future from pending/buffers and count it.

        The future is resolved *outside* the lock: its done-callbacks
        (inflight gauge, shard-load admission counter) re-acquire it.
        """
        with self._lock:
            found = False
            for request_id, entry in list(self._pending.items()):
                if future in entry.futures:
                    found = True
                    if all(f.done() or f is future for f in entry.futures):
                        # Last caller gone: the reply (if it ever
                        # comes) has nobody to serve — drop the slot
                        # so it can't linger as a stale coalescing
                        # target.
                        del self._pending[request_id]
                    break
            if not found:
                for buffered in self._buffers:
                    for item in list(buffered):
                        if item.future is future:
                            buffered.remove(item)
                            break
            self._timeouts += 1
        if not future.done():
            future.set_exception(
                PoolTimeoutError("request deadline expired")
            )
        self._metric_timeouts.inc()

    def update(
        self, relation: str, row: Sequence[Value], probability: Probability
    ) -> None:
        """Insert or re-weight one tuple, broadcast to every worker.

        Validation happens on the front copy first, so a bad update
        raises here and never reaches (or diverges) the replicas.
        After this returns, every subsequently submitted request
        observes the change (per-worker queues are FIFO).  The update
        also lands in the bounded replay log, so a worker respawned
        later still observes it.
        """
        if self._session is not None:
            self._check_open()
            with self._session_lock:
                self._session.update(relation, tuple(row), probability)
            with self._lock:
                self._updates += 1
            return
        with self._lock:
            self._check_open()
            self._ensure_synced_locked()
            self.db.add(relation, tuple(row), probability)
            payload = (relation, tuple(row), probability)
            message = ("update", None, payload)
            for queue in self._request_queues:
                if queue is not None:
                    queue.put(message)
            self._synced_versions = (
                self.db.structure_version, self.db.version
            )
            self._updates += 1
            self._update_log.append(payload)
            if len(self._update_log) > self.update_log_limit:
                # Compact: fold the log into a fresh base snapshot so
                # respawn replay stays O(update_log_limit).
                self._log_snapshot = self.db.snapshot()
                self._update_log.clear()

    def estimate_lineages(
        self,
        lineages: Mapping[Hashable, Lineage],
        samples: Optional[int] = None,
    ) -> Dict[Hashable, Tuple[float, float]]:
        """Monte Carlo estimation of many lineages, scattered when worth it.

        The pool-level pressure valve for unsafe-query spikes; results
        come back as ``{key: (estimate, 95% half-width)}``, bit-
        identical regardless of where they ran (inline, shm scatter,
        pickle scatter) because every path seeds a sampler the same
        way per lineage.  ``samples`` overrides the per-lineage sample
        cap from the worker config.

        With workers, lineages travel as packed flat buffers through
        shared memory, workers keep a structural LRU so repeats ship
        nothing (or just a weights vector), and the adaptive policy
        runs batches inline on the front when their estimated compute
        wouldn't amortize the dispatch overhead — see
        ``docs/ARCHITECTURE.md`` § "Monte Carlo scatter".  A worker
        dying (or stalling past the deadline) mid-estimate re-runs its
        chunk on the front — callers never see the crash.
        """
        start = time.perf_counter()
        if self._session is not None:
            self._check_open()
            # Copy the engine reference under the lock, then sample
            # outside it: a long unsafe batch must not block concurrent
            # evaluate/answers traffic on the inline session.
            with self._session_lock:
                monte_carlo = self._session.router.monte_carlo
            if samples is not None:
                monte_carlo = monte_carlo.reconfigured(samples=samples)
            results = monte_carlo.estimate_lineages(dict(lineages))
            self._metric_scatter_seconds.observe(time.perf_counter() - start)
            return results
        with self._lock:
            self._check_open()
        results: Dict[Hashable, Tuple[float, float]] = {}
        packed_items: List[tuple] = []  # (key, PackedLineage, cost units)
        legacy_items: List[tuple] = []  # (key, clauses, weights, certain)
        per_lineage_samples = (
            samples if samples is not None else self.config.mc_samples
        )
        vectorized = (
            HAVE_NUMPY
            and resolve_backend(self.config.mc_backend) != "python"
        )
        for key, lineage in lineages.items():
            # Trivial lineages short-circuit exactly like
            # estimate_lineage() does, so no path ever samples them.
            if lineage.certainly_true:
                results[key] = (1.0, 0.0)
                continue
            if lineage.is_false:
                results[key] = (0.0, 0.0)
                continue
            if not vectorized:
                legacy_items.append(_decompose(key, lineage))
                continue
            try:
                packed = PackedLineage.of(lineage)
            except Exception:  # noqa: BLE001 - malformed lineage
                # Ship it unpacked so the failure happens *in a worker*
                # and surfaces uniformly as WorkerError.
                legacy_items.append(_decompose(key, lineage))
                continue
            if packed.total == 0.0:
                results[key] = (0.0, 0.0)
                continue
            packed_items.append(
                (key, packed, packed.batch_cost * per_lineage_samples)
            )
        choice, estimated, effective = self._scatter_choice(packed_items)
        self.last_scatter_decision = {
            "choice": choice,
            "estimated_seconds": estimated,
            "workers_effective": effective,
            "packed_items": len(packed_items),
            "legacy_items": len(legacy_items),
        }
        legacy_futures = self._scatter_legacy(legacy_items, samples)
        if packed_items:
            self._metric_scatter_policy.labels(choice).inc()
            if choice == "inline":
                self._estimate_inline(packed_items, samples, results)
            else:
                self._scatter_packed(packed_items, samples, results)
        engine = None
        for future, chunk in legacy_futures:
            try:
                rows = self._result(future, self.request_timeout)
            except (WorkerDiedError, PoolTimeoutError):
                # The worker vanished (or wedged) mid-estimate; the
                # front recomputes this chunk — same seeds, same
                # numbers, just slower.
                if engine is None:
                    engine = self._front_engine(samples)
                rows = [
                    (key,) + engine.estimate_lineage(
                        Lineage(clauses, weights, certainly_true=certain)
                    )
                    for key, clauses, weights, certain in chunk
                ]
            for key, estimate, half_width in rows:
                results[key] = (estimate, half_width)
        self._metric_scatter_seconds.observe(time.perf_counter() - start)
        return results

    # -- scatter internals (workers > 0) --------------------------------

    #: On an effectively single-core host scattering can't beat inline
    #: on throughput, but batches expected to hog the front thread for
    #: longer than this still ship to a worker so concurrent traffic
    #: stays responsive.
    _FRONT_HOG_SECONDS = 0.25

    def _alive_shards(self) -> List[int]:
        with self._lock:
            return [
                shard for shard in range(self.workers)
                if not self._degraded[shard]
            ]

    def _scatter_choice(
        self, packed_items: List[tuple]
    ) -> Tuple[str, float, int]:
        """(choice, estimated seconds, effective workers) for a batch.

        Scattering trades ``(1 - 1/W)`` of the compute for one dispatch
        round trip, so it wins when ``estimated > overhead · W/(W-1)``.
        ``W`` is capped by the cores actually available — spawning work
        across 4 workers on 1 core parallelizes nothing.
        """
        cost_units = sum(cost for _key, _packed, cost in packed_items)
        alive = len(self._alive_shards())
        with self._lock:
            estimated = cost_units * self._unit_seconds.value
            overhead = self._overhead_seconds.value
        effective = max(1, min(alive, _available_cpus()))
        if alive == 0:
            return "inline", estimated, 1
        if self.scatter_policy == "always":
            return "scatter", estimated, effective
        if self.scatter_policy == "never":
            return "inline", estimated, effective
        if effective > 1:
            threshold = overhead * effective / (effective - 1)
            choice = "scatter" if estimated > threshold else "inline"
        else:
            choice = (
                "scatter" if estimated > self._FRONT_HOG_SECONDS
                else "inline"
            )
        return choice, estimated, effective

    def _front_engine(self, samples: Optional[int]) -> MonteCarloEngine:
        """The front's own sampler for inline-policy batches.

        Configured identically to every worker's engine (same seed,
        samples, backend), so an inline decision changes *where* the
        batch runs, never what it returns.
        """
        engine = self._front_mc
        if engine is None:
            engine = self._front_mc = MonteCarloEngine(
                samples=self.config.mc_samples,
                seed=self.config.mc_seed,
                backend=self.config.mc_backend,
                metrics=self.metrics,
            )
        if samples is not None and samples != engine.samples:
            return engine.reconfigured(samples=samples)
        return engine

    def _estimate_inline(
        self, packed_items: List[tuple], samples: Optional[int],
        results: Dict[Hashable, Tuple[float, float]],
    ) -> None:
        engine = self._front_engine(samples)
        compute_start = time.perf_counter()
        for key, packed, _cost in packed_items:
            results[key] = engine.estimate_packed(packed, self._front_arena)
        compute = time.perf_counter() - compute_start
        cost_units = sum(cost for _key, _packed, cost in packed_items)
        if cost_units:
            self._observe_scatter_costs(unit_seconds=compute / cost_units)

    def _scatter_packed(
        self, packed_items: List[tuple], samples: Optional[int],
        results: Dict[Hashable, Tuple[float, float]],
    ) -> None:
        """Ship packed lineages to workers, cost-balanced, cache-aware.

        Chunking is longest-processing-time greedy on estimated cost
        (not round-robin), so one huge lineage doesn't serialize the
        batch behind it.  Cache misses reported by a worker are retried
        once with full buffers — full entries cannot miss, so the retry
        round terminates.  A chunk whose worker dies or times out is
        recomputed on the front with identical seeding.
        """
        shards = self._alive_shards()
        if not shards:
            self._estimate_inline(packed_items, samples, results)
            return
        chunks: Dict[int, List[tuple]] = {shard: [] for shard in shards}
        loads = {shard: 0.0 for shard in shards}
        for key, packed, cost in sorted(
            packed_items, key=lambda item: -item[2]
        ):
            shard = min(shards, key=loads.__getitem__)
            chunks[shard].append((key, packed))
            loads[shard] += cost
        wall_start = time.perf_counter()
        compute_seconds: List[float] = []
        round_items = [
            (shard, chunk) for shard, chunk in chunks.items() if chunk
        ]
        force_full = False
        while round_items:
            dispatched = []
            for shard, chunk in round_items:
                future, segment = self._send_packed(
                    shard, chunk, samples, force_full
                )
                dispatched.append((shard, dict(chunk), future, segment))
            round_items = []
            for shard, by_key, future, segment in dispatched:
                try:
                    reply = self._result(future, self.request_timeout)
                except (WorkerDiedError, PoolTimeoutError):
                    release_segment(segment)
                    engine = self._front_engine(samples)
                    for key, packed in by_key.items():
                        results[key] = engine.estimate_packed(
                            packed, self._front_arena
                        )
                    continue
                finally:
                    release_segment(segment)
                for key, estimate, half_width in reply["results"]:
                    results[key] = (estimate, half_width)
                compute_seconds.append(reply["compute_seconds"])
                if reply["misses"]:
                    round_items.append(
                        (shard,
                         [(key, by_key[key]) for key in reply["misses"]])
                    )
            force_full = True
        wall = time.perf_counter() - wall_start
        cost_units = sum(cost for _key, _packed, cost in packed_items)
        if compute_seconds and cost_units:
            self._observe_scatter_costs(
                unit_seconds=sum(compute_seconds) / cost_units,
                overhead_seconds=max(0.0, wall - max(compute_seconds)),
            )

    def _send_packed(
        self, shard: int, chunk: List[tuple], samples: Optional[int],
        force_full: bool,
    ) -> Tuple[Future, Optional[object]]:
        """Dispatch one ``estimate_packed`` message to ``shard``.

        Builds the manifest against the front's model of the worker's
        cache (``_worker_shapes``): a structure the worker should
        already hold ships as ``cached`` (hashes only) or ``weights``
        (one float64 vector); everything else ships full buffers.  The
        model is updated at enqueue time — per-shard FIFO makes that
        sound, and a wrong guess (eviction, crash) only costs a miss
        retry.
        """
        arrays: List[object] = []
        manifest: List[tuple] = []
        paths = {"full": 0, "weights": 0, "cached": 0}
        with self._lock:
            self._check_open()
            if self._request_queues[shard] is None:
                # Degraded between chunking and dispatch: hand the
                # caller a pre-failed future so its normal died-worker
                # fallback recomputes this chunk inline.
                future: Future = Future()
                future.set_exception(
                    WorkerDiedError(f"shard {shard} is degraded")
                )
                return future, None
            known = self._worker_shapes[shard]
            for key, packed in chunk:
                shape_hash = packed.shape_hash()
                weight_hash = packed.weight_hash()
                have = None if force_full else known.get(shape_hash)
                if have == weight_hash:
                    manifest.append(("cached", key, shape_hash, weight_hash))
                    paths["cached"] += 1
                elif have is not None:
                    manifest.append(
                        ("weights", key, shape_hash, weight_hash,
                         len(arrays))
                    )
                    arrays.append(packed.weights)
                    paths["weights"] += 1
                else:
                    buffers = packed.to_buffers()
                    indices = {}
                    for name in (
                        "clause_starts", "literal_events",
                        "literal_polarities", "weights",
                    ):
                        indices[name] = len(arrays)
                        arrays.append(buffers[name])
                    manifest.append(
                        ("full", key, shape_hash, weight_hash, indices)
                    )
                    paths["full"] += 1
                known[shape_hash] = weight_hash
            payload, segment = pack_arrays(arrays, self.scatter_transport)
            for path, count in paths.items():
                if count:
                    self._metric_scatter_items.labels(path).inc(count)
            self._metric_scatter_transport.labels(payload[0]).inc()
            future: Future = Future()
            request_id = next(self._ids)
            self._pending[request_id] = _Inflight(
                "estimate_packed", [future], shard
            )
            self._request_queues[shard].put(
                ("estimate_packed", request_id, (samples, payload, manifest))
            )
            self._batches += 1
        return future, segment

    def _scatter_legacy(
        self, items: List[tuple], samples: Optional[int]
    ) -> List[Tuple[Future, list]]:
        """Round-robin the non-packable leftovers over the legacy op.

        Returns ``(future, chunk)`` pairs so the caller can recompute a
        chunk on the front if its worker dies before replying.
        """
        if not items:
            return []
        shards = self._alive_shards()
        if not shards:
            # Every shard degraded: fabricate resolved futures from an
            # inline computation so the caller's collection loop stays
            # uniform.
            engine = self._front_engine(samples)
            future: Future = Future()
            future.set_result([
                (key,) + engine.estimate_lineage(
                    Lineage(clauses, weights, certainly_true=certain)
                )
                for key, clauses, weights, certain in items
            ])
            return [(future, items)]
        chunks: Dict[int, list] = {shard: [] for shard in shards}
        for index, item in enumerate(items):
            chunks[shards[index % len(shards)]].append(item)
        futures = []
        with self._lock:
            self._check_open()
            self._metric_scatter_items.labels("legacy").inc(len(items))
            for shard, chunk in chunks.items():
                if not chunk:
                    continue
                future = Future()
                queue = self._request_queues[shard]
                if queue is None:  # degraded since the alive check
                    future.set_exception(
                        WorkerDiedError(f"shard {shard} is degraded")
                    )
                    futures.append((future, chunk))
                    continue
                request_id = next(self._ids)
                payload = (samples, chunk)
                self._pending[request_id] = _Inflight(
                    "estimate", [future], shard, payload
                )
                queue.put(("estimate", request_id, payload))
                self._batches += 1
                futures.append((future, chunk))
        return futures

    def _observe_scatter_costs(
        self,
        unit_seconds: Optional[float] = None,
        overhead_seconds: Optional[float] = None,
    ) -> None:
        """Fold fresh measurements into the adaptive-policy EWMAs."""
        with self._lock:
            if unit_seconds is not None:
                self._unit_seconds.observe(unit_seconds)
            if overhead_seconds is not None:
                self._overhead_seconds.observe(overhead_seconds)

    def stats(self) -> PoolStats:
        """Aggregate per-worker :class:`SessionStats` plus front counters."""
        with self._lock:
            front = PoolStats(
                requests=self._requests,
                batches=self._batches,
                coalesced=self._coalesced,
                updates=self._updates,
                syncs=self._syncs,
                timeouts=self._timeouts,
                sheds=self._sheds,
                respawns=self._respawns,
            )
            if self._session is None:
                front.degraded = [
                    shard for shard in range(self.workers)
                    if self._degraded[shard]
                ]
            fallback = self._fallback
        if fallback is not None:
            front.front_session = fallback.stats
        if self._session is not None:
            front.workers = [self._session.stats]
            return front
        futures = []
        with self._lock:
            self._check_open()
            for shard in range(self.workers):
                if self._degraded[shard]:
                    futures.append(None)
                    continue
                future = Future()
                request_id = next(self._ids)
                self._pending[request_id] = _Inflight(
                    "stats", [future], shard
                )
                self._request_queues[shard].put(("stats", request_id, None))
                futures.append(future)
        workers = []
        for future in futures:
            if future is None:
                workers.append(SessionStats())
                continue
            try:
                workers.append(self._result(future, self.request_timeout))
            except (WorkerDiedError, PoolTimeoutError):
                workers.append(SessionStats())
        front.workers = workers
        return front

    def metrics_snapshot(self) -> dict:
        """One merged metrics snapshot: the front plus every worker.

        Worker registries come back as picklable snapshots; counters
        sum and histograms merge bucket-wise
        (:func:`~repro.obs.merge_snapshots`), so the result renders
        directly as the pool's ``/metrics`` exposition.  Inline mode
        (``workers=0``) shares one registry between front and session,
        so its snapshot already carries both.  Degraded (or freshly
        dead) shards are skipped — a scrape must not fail because a
        worker did.
        """
        snapshots = [self.metrics.snapshot()]
        if self._session is None:
            futures = []
            with self._lock:
                self._check_open()
                for shard in range(self.workers):
                    if self._degraded[shard]:
                        continue
                    future = Future()
                    request_id = next(self._ids)
                    self._pending[request_id] = _Inflight(
                        "metrics", [future], shard
                    )
                    self._request_queues[shard].put(
                        ("metrics", request_id, None)
                    )
                    futures.append(future)
            for future in futures:
                try:
                    snapshots.append(
                        self._result(future, self.request_timeout)
                    )
                except (WorkerDiedError, PoolTimeoutError):
                    continue
        return merge_snapshots(*snapshots)

    def health(self) -> dict:
        """Liveness report: overall ``ok`` plus per-shard worker status.

        A shard is healthy when its worker is alive *or* it has been
        degraded to (still-correct) inline serving; ``ok`` is the
        conjunction, with ``degraded`` listed separately so a scraper
        can tell "healthy", "degraded but serving" and "closed" apart.
        """
        if self._session is not None:
            return {
                "ok": not self._closed,
                "mode": "inline",
                "workers": 0,
                "shards": [],
            }
        with self._lock:
            closed = self._closed
            degraded = list(self._degraded)
            respawns = self._respawns
            shards = [
                {
                    "shard": shard,
                    "alive": process.is_alive(),
                    "pid": process.pid,
                    "degraded": degraded[shard],
                    "last_exit": self._last_exit[shard],
                }
                for shard, process in enumerate(self._processes)
            ]
        ok = (
            not closed
            and all(
                entry["alive"] or entry["degraded"] for entry in shards
            )
        )
        return {
            "ok": ok,
            "mode": "pool",
            "workers": self.workers,
            "respawns": respawns,
            "degraded": [s for s in range(self.workers) if degraded[s]],
            "shards": shards,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain queues, stop workers, join threads.

        Idempotent.  Stop messages queue *behind* all previously
        submitted work, so in-flight requests complete first.
        """
        if self._session is not None:
            self._closed = True
            return
        with self._lock:
            if self._closed:
                return
            self._closed = True
            futures = []
            for shard in range(self.workers):
                if self._degraded[shard]:
                    futures.append(None)
                    continue
                future = Future()
                request_id = next(self._ids)
                self._pending[request_id] = _Inflight(
                    _STOP, [future], shard
                )
                self._request_queues[shard].put((_STOP, request_id, None))
                futures.append(future)
        for future, process in zip(futures, self._processes):
            if future is None:
                continue
            try:
                future.result(timeout if process.is_alive() else 0.1)
            except Exception:  # noqa: BLE001 - worker already dead
                pass
        with self._lock:
            self._collector_stop = True
        self._collector.join(timeout)
        self._supervisor.join(timeout)
        for process in self._processes:
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
        for queue in self._request_queues:
            if queue is not None:
                queue.close()
        for reader in self._reply_readers:
            if reader is not None:
                reader.close()

    def __enter__(self) -> "ServerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batching front internals
    # ------------------------------------------------------------------

    def _parse(self, query: QueryLike) -> AnyQuery:
        if isinstance(query, str):
            return parse(query)
        if not isinstance(query, (ConjunctiveQuery, UnionQuery)):
            raise TypeError(
                f"expected query text, ConjunctiveQuery or UnionQuery, "
                f"got {query!r}"
            )
        return query

    def _request_many(
        self,
        items: Sequence[Tuple[str, QueryLike, Optional[int]]],
        timeout: Optional[float] = None,
    ) -> List[Future]:
        """Buffer a whole batch, then drive each touched shard once.

        Buffering before dispatch is what makes single-caller batches
        coalesce: all same-shard items ride one worker message (and one
        circuit sweep) instead of one round trip each.  Items from
        other threads that land in a touched buffer meanwhile are
        flushed by whichever driver reaches them first.  Items whose
        shard is over ``max_queue_depth`` are shed immediately; items
        whose shard is degraded are served inline on the front.
        """
        parsed = [
            (kind, self._parse(query), k) for kind, query, k in items
        ]
        deadline = time.time() + timeout if timeout is not None else None
        futures: List[Future] = []
        if self._session is not None:
            self._check_open()
            for kind, query, k in parsed:
                future: Future = Future()
                self._serve_with_session(
                    self._session, self._session_lock, kind, query, k, future
                )
                futures.append(future)
            return futures
        to_drive = []
        inline: List[Tuple[str, AnyQuery, Optional[int], Future]] = []
        with self._lock:
            self._check_open()
            self._ensure_synced_locked()
            for kind, query, k in parsed:
                shape = canonical_string(
                    query.boolean() if kind == "evaluate" else query
                )
                shard = shard_of(shape, self.workers)
                future = Future()
                futures.append(future)
                if (
                    not self._degraded[shard]
                    and self.max_queue_depth is not None
                    and self._shard_load[shard] >= self.max_queue_depth
                ):
                    # Shed fast: never queued, never dispatched — the
                    # cheapest possible "try again later".
                    self._sheds += 1
                    self._metric_shed.labels("queue_depth").inc()
                    future.set_exception(PoolOverloadError(
                        f"shard {shard} is over its queue depth "
                        f"({self.max_queue_depth}); retry later"
                    ))
                    continue
                self._requests += 1
                self._metric_requests.labels(kind).inc()
                self._metric_inflight.inc()
                if self._degraded[shard]:
                    future.add_done_callback(self._request_done)
                    inline.append((kind, query, k, future))
                    continue
                self._shard_load[shard] += 1
                future.add_done_callback(
                    lambda f, shard=shard: self._request_done(f, shard)
                )
                self._buffers[shard].append(
                    _PendingItem(
                        kind, query, k, future, time.perf_counter(), deadline
                    )
                )
                if not self._driving[shard]:
                    self._driving[shard] = True
                    to_drive.append(shard)
        for kind, query, k, future in inline:
            self._serve_fallback(kind, query, k, future)
        for shard in to_drive:
            self._drive(shard)
        return futures

    def _fallback_session(self) -> QuerySession:
        """The front's own session over the authoritative database.

        Serves degraded shards and twice-failed retries.  Reads
        ``self.db`` directly — updates keep flowing through
        :meth:`update`, and the session's version-snapshot invalidation
        picks them up exactly as a worker replica would.
        """
        with self._fallback_lock:
            if self._fallback is None:
                self._fallback = self.config.build_session(
                    self.db, metrics=self.metrics
                )
            return self._fallback

    def _serve_fallback(
        self, kind: str, query: AnyQuery, k: Optional[int],
        future: Future,
    ) -> None:
        session = self._fallback_session()
        with self._lock:
            self._batches += 1
        self._metric_batch_size.observe(1)
        self._execute_with_session(
            session, self._fallback_lock, kind, query, k, future
        )

    def _serve_with_session(
        self, session, lock, kind: str, query: AnyQuery,
        k: Optional[int], future: Future,
    ) -> None:
        """The inline (workers=0) request path."""
        with self._lock:
            self._requests += 1
            self._batches += 1
        self._metric_requests.labels(kind).inc()
        self._metric_inflight.inc()
        self._metric_batch_size.observe(1)  # inline: no coalescing front
        future.add_done_callback(self._request_done)
        self._execute_with_session(session, lock, kind, query, k, future)

    @staticmethod
    def _execute_with_session(
        session, lock, kind: str, query: AnyQuery,
        k: Optional[int], future: Future,
    ) -> None:
        try:
            with lock:
                if kind == "evaluate":
                    result = session.evaluate(query)
                else:
                    result = session.answers(query, k)
        except Exception as error:  # noqa: BLE001 - delivered via future
            if not future.done():
                future.set_exception(error)
        else:
            if not future.done():
                future.set_result(result)

    def _drive(self, shard: int) -> None:
        """Flush the shard's buffer until it runs dry.

        Exactly one thread drives a shard at a time; it re-checks the
        buffer after every flush so requests parked by other threads
        while it was dispatching ride the next message.
        """
        while True:
            with self._lock:
                batch = self._buffers[shard]
                if not batch:
                    self._driving[shard] = False
                    return
                self._buffers[shard] = []
            self._dispatch(shard, batch)

    def _request_done(
        self, _future: Future, shard: Optional[int] = None
    ) -> None:
        self._metric_inflight.dec()
        if shard is not None:
            with self._lock:
                self._shard_load[shard] -= 1

    def _dispatch(self, shard: int, batch: List[_PendingItem]) -> None:
        now = time.perf_counter()
        waits = [now - item.enqueued for item in batch]
        for wait in waits:
            self._metric_queue_wait.observe(wait)
        self._metric_batch_size.observe(len(batch))
        wall_now = time.time()
        expired = [
            item for item in batch
            if item.deadline is not None and wall_now > item.deadline
        ]
        batch = [item for item in batch if item not in expired]
        for item in expired:
            # Expired while parked: shed the compute, honest timeout.
            with self._lock:
                self._timeouts += 1
            self._metric_timeouts.inc()
            if not item.future.done():
                item.future.set_exception(
                    PoolTimeoutError("deadline expired in shard buffer")
                )
        evaluates = [item for item in batch if item.kind == "evaluate"]
        answers = [item for item in batch if item.kind == "answers"]
        error = None
        fallback_items: List[_PendingItem] = []
        with self._lock:
            for wait in waits:
                self._wait_ewma.observe(wait)
            self._check_overload_locked()
            # Re-check under the lock: the pool may have closed (the
            # STOP message is already queued) since this batch was
            # submitted — enqueueing now would strand these futures
            # with no reply ever coming.  (A dead worker is fine: the
            # supervisor sweeps _pending and re-dispatches.)
            if self._closed:
                error = RuntimeError("ServerPool is closed")
            elif self._request_queues[shard] is None:
                # Degraded while this batch was parked: the supervisor
                # swept the buffer before we popped it, or raced us —
                # serve the batch on the fallback session instead.
                fallback_items = evaluates + answers
            else:
                for kind, items in (
                    ("evaluate", evaluates), ("answers", answers)
                ):
                    if not items:
                        continue
                    if len(items) > 1:
                        self._coalesced += len(items)
                    deadlines = [item.deadline for item in items]
                    deadline = (
                        None if any(d is None for d in deadlines)
                        else max(deadlines)
                    )
                    request_id = next(self._ids)
                    if kind == "evaluate":
                        op = "evaluate_many"
                        payload = ([item.query for item in items], deadline)
                    else:
                        op = "answers_many"
                        payload = (
                            [(item.query, item.k) for item in items],
                            deadline,
                        )
                    self._pending[request_id] = _Inflight(
                        op, [i.future for i in items], shard, payload
                    )
                    self._batches += 1
                    self._request_queues[shard].put((op, request_id, payload))
        if error is not None:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(error)
        for item in fallback_items:
            self._serve_fallback(item.kind, item.query, item.k, item.future)

    def _check_overload_locked(self) -> None:
        """Enter/leave overload mode from the queue-wait EWMA.

        Entering clamps every worker's Monte Carlo budget through the
        fire-and-forget ``configure`` op — wider intervals for unsafe
        queries instead of a growing queue; leaving (at half the
        threshold, for hysteresis) restores the configured budget.
        """
        threshold = self.overload_threshold
        if threshold is None:
            return
        level = self._wait_ewma.value
        if not self._overloaded and level > threshold:
            self._overloaded = True
            samples = (
                self.overload_samples
                if self.overload_samples is not None
                else max(500, self.config.mc_samples // 10)
            )
            self._broadcast_samples_locked(samples)
            self._metric_overload.set(1)
            self._metric_overload_transitions.labels("enter").inc()
        elif self._overloaded and level < threshold * 0.5:
            self._overloaded = False
            self._broadcast_samples_locked(self.config.mc_samples)
            self._metric_overload.set(0)
            self._metric_overload_transitions.labels("exit").inc()

    def _broadcast_samples_locked(self, samples: int) -> None:
        message = ("configure", None, {"mc_samples": samples})
        for shard, queue in enumerate(self._request_queues):
            if queue is not None and not self._degraded[shard]:
                queue.put(message)
        if self._fallback is not None:
            with self._fallback_lock:
                self._fallback.set_sample_budget(samples)

    def _ensure_synced_locked(self) -> None:
        """Repair replicas after out-of-band front-db mutation."""
        current = (self.db.structure_version, self.db.version)
        if current == self._synced_versions:
            return
        snapshot = self.db.snapshot()
        for queue in self._request_queues:
            if queue is not None:
                queue.put(("sync", None, snapshot))
        self._synced_versions = current
        self._syncs += 1
        # The sync IS a fresh base state: respawn replay starts over.
        self._log_snapshot = snapshot
        self._update_log.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ServerPool is closed")

    # ------------------------------------------------------------------
    # Supervision: reap, respawn, rehydrate, degrade
    # ------------------------------------------------------------------

    def _supervise(self) -> None:
        """Supervisor thread: watch worker sentinels, respawn the dead.

        Replaces the old fail-fast watcher (which marked the whole pool
        broken on any worker death).  Process sentinels fire on any
        exit; exits during `close()` are the orderly case and are
        ignored.
        """
        from multiprocessing.connection import wait

        while True:
            with self._lock:
                if self._closed:
                    return
                sentinels = {
                    process.sentinel: shard
                    for shard, process in enumerate(self._processes)
                    if not self._degraded[shard]
                }
            if not sentinels:
                time.sleep(0.2)  # everything degraded: nothing to watch
                continue
            for sentinel in wait(list(sentinels), timeout=0.2):
                self._reap(sentinels[sentinel])

    def _reap(self, shard: int) -> None:
        """Handle one worker exit: sweep, then respawn or degrade."""
        respawned = None
        with self._lock:
            if self._closed or self._degraded[shard]:
                return
            process = self._processes[shard]
            if process.is_alive():
                return  # stale sentinel from an already-replaced process
            process.join(0.1)
            self._last_exit[shard] = process.exitcode
            now = time.monotonic()
            deaths = self._deaths[shard]
            deaths.append(now)
            while deaths and now - deaths[0] > self.respawn_window:
                deaths.popleft()
            crash_looping = len(deaths) > self.respawn_limit
            # Sweep everything in flight on this shard; replies will
            # never come (and anything still parked in the dead queue
            # is discarded with it).
            swept = [
                (request_id, entry)
                for request_id, entry in list(self._pending.items())
                if entry.shard == shard
            ]
            for request_id, _entry in swept:
                del self._pending[request_id]
            buffered = self._buffers[shard]
            self._buffers[shard] = []
            old_reader = self._reply_readers[shard]
            self._reply_readers[shard] = None
            if crash_looping:
                self._degraded[shard] = True
                self._request_queues[shard].close()
                self._request_queues[shard] = None
                self._metric_degraded.set(sum(self._degraded))
            else:
                # Rehydrate: base snapshot via the ctor, missed FIFO
                # broadcast via log replay — enqueued before anything
                # else can reach the new queue (we hold the lock), so
                # every re-dispatched request observes current state.
                snapshot = self._log_snapshot
                replay = list(self._update_log)
                self._respawns += 1
                self._metric_respawns.labels(str(shard)).inc()
                self._worker_shapes[shard] = {}
        if old_reader is not None:
            old_reader.close()
        if not crash_looping:
            queue, process, reader = self._spawn_worker(shard, snapshot)
            with self._lock:
                if self._closed:
                    queue.close()
                    reader.close()
                    process.terminate()
                    return
                for payload in replay:
                    queue.put(("update", None, payload))
                self._request_queues[shard] = queue
                self._processes[shard] = process
                self._reply_readers[shard] = reader
                # Requests registered between the sweep and this
                # install went onto the dead worker's queue — sweep
                # them too so they are re-dispatched on the fresh one.
                window = [
                    (request_id, entry)
                    for request_id, entry in list(self._pending.items())
                    if entry.shard == shard
                ]
                for request_id, _entry in window:
                    del self._pending[request_id]
                swept = swept + window
                respawned = queue
        self._resolve_swept(shard, swept, buffered, respawned)

    def _resolve_swept(
        self, shard: int, swept, buffered: List[_PendingItem], queue
    ) -> None:
        """Give every orphaned request a second life (or an honest end).

        First-time casualties of a respawned shard are re-dispatched to
        the fresh worker; anything orphaned twice — or orphaned by a
        degraded shard — is served inline on the front (queries) or
        failed with :class:`WorkerDiedError` (estimates, whose callers
        run their own inline fallback).
        """
        redispatch_ops = (
            "evaluate_many", "answers_many", "estimate", "stats", "metrics"
        )
        inline_batches: List[Tuple[str, object, List[Future]]] = []
        orphans: List[Future] = []
        with self._lock:
            for _request_id, entry in swept:
                if entry.op == _STOP:
                    continue
                if (
                    queue is not None
                    and entry.op in redispatch_ops
                    and not entry.retried
                ):
                    entry.retried = True
                    request_id = next(self._ids)
                    self._pending[request_id] = entry
                    queue.put((entry.op, request_id, entry.payload))
                    continue
                if entry.op in ("evaluate_many", "answers_many"):
                    inline_batches.append(
                        (entry.op, entry.payload, entry.futures)
                    )
                    continue
                orphans.extend(entry.futures)
        if orphans:
            # Resolved outside the lock: future done-callbacks
            # (inflight gauge, shard load) re-acquire it.
            error = WorkerDiedError(
                f"worker {shard} died (exit {self._last_exit[shard]}) "
                f"with this request in flight"
            )
            for future in orphans:
                if not future.done():
                    future.set_exception(error)
        # Buffered (never-dispatched) items re-enter the normal path:
        # onto the fresh worker, or the fallback session if degraded.
        for op, payload, futures in inline_batches:
            self._serve_swept_inline(op, payload, futures)
        if queue is not None:
            if buffered:
                with self._lock:
                    self._buffers[shard] = buffered + self._buffers[shard]
                    drive = not self._driving[shard]
                    if drive:
                        self._driving[shard] = True
                if drive:
                    self._drive(shard)
        else:
            for item in buffered:
                self._serve_fallback(item.kind, item.query, item.k, item.future)

    def _serve_swept_inline(self, op, payload, futures: List[Future]) -> None:
        """Answer an orphaned worker batch from the fallback session."""
        session = self._fallback_session()
        try:
            with self._fallback_lock:
                result = _worker_execute(session, op, payload)
        except Exception as error:  # noqa: BLE001 - delivered via futures
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, value in zip(futures, result):
            if not future.done():
                future.set_result(value)

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        """Collector thread: route worker replies onto their futures.

        One reply pipe per worker: a worker killed mid-``send``
        truncates only its own channel (surfacing here as
        :class:`EOFError`), so the other shards' replies keep flowing —
        the property the old shared result queue could not give under
        SIGKILL chaos.
        """
        from multiprocessing.connection import wait

        while True:
            with self._lock:
                if self._collector_stop:
                    return
                readers = {
                    reader: shard
                    for shard, reader in enumerate(self._reply_readers)
                    if reader is not None
                }
            if not readers:
                time.sleep(0.05)
                continue
            for conn in wait(list(readers), timeout=0.2):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Dead worker (possibly a truncated reply).  The
                    # supervisor owns the respawn; just stop listening
                    # to this channel until it is replaced.
                    with self._lock:
                        shard = readers[conn]
                        if self._reply_readers[shard] is conn:
                            self._reply_readers[shard] = None
                    continue
                self._route_reply(message)

    def _route_reply(self, message) -> None:
        request_id, ok, payload = message
        with self._lock:
            entry = self._pending.pop(request_id, None)
        if entry is None:
            return  # purged on timeout, or swept by the supervisor
        if not ok:
            kind, text = payload
            if kind == "timeout":
                error: Exception = PoolTimeoutError(text)
                with self._lock:
                    self._timeouts += 1
                self._metric_timeouts.inc()
            else:
                error = WorkerError(text)
            for future in entry.futures:
                if not future.done():
                    future.set_exception(error)
            return
        if entry.op in ("evaluate_many", "answers_many"):
            for future, value in zip(entry.futures, payload):
                if not future.done():
                    future.set_result(value)
        else:  # estimate / stats / metrics / stop: one future, raw payload
            for future in entry.futures:
                if not future.done():
                    future.set_result(payload)
