"""A sharded pool of :class:`~repro.serve.session.QuerySession` workers.

One :class:`QuerySession` amortizes work across calls; a
:class:`ServerPool` amortizes it across *processes* for concurrent
traffic.  The moving parts:

* **Shape sharding.**  Requests are hash-partitioned by the canonical
  query shape (:func:`shard_of`), so every shape always lands on the
  same worker and that worker's prepared-query LRU and structural
  circuit cache stay hot.  Sharding also multiplies aggregate cache
  capacity: each worker only has to hold its own slice of the shape
  universe, where a single session would thrash its LRU.

* **A batching front.**  Requests issued concurrently (from many
  threads, or the HTTP server's handlers) park in a per-shard buffer;
  whichever thread finds the shard idle becomes the *driver* and
  flushes the whole buffer as one ``evaluate_many`` /
  ``answers_many`` message, so in-flight same-shape requests coalesce
  into a single vectorized circuit sweep inside the worker.

* **Version broadcast.**  Each worker holds a replica of the database.
  :meth:`ServerPool.update` validates against the front copy, then
  broadcasts the delta to every worker queue; per-queue FIFO order
  guarantees any request submitted after ``update`` returns observes
  it.  Direct mutations of the front database (not through the pool)
  are detected by version drift and repaired with a full snapshot
  broadcast before the next dispatch.

* **Monte Carlo scatter.**  :meth:`ServerPool.estimate_lineages`
  ships a batch of unsafe lineages to the workers as packed flat
  buffers over shared memory (pickle fallback), with a worker-side
  structural cache so repeated spikes on the same query transfer
  nothing, and an adaptive cost model that keeps small batches inline
  — the pool-level answer to an unsafe-query spike, exact-seed-
  deterministic per lineage (see ``docs/ARCHITECTURE.md`` § "Monte
  Carlo scatter").

``workers=0`` runs everything inline on one lock-guarded session in
this process — same API, no subprocesses — which keeps doctests, small
deployments and fork-less platforms simple::

    >>> from repro.db.database import ProbabilisticDatabase
    >>> db = ProbabilisticDatabase.from_dict(
    ...     {"R": {(1,): 0.5}, "S": {(1, 2): 0.4}})
    >>> with ServerPool(db, workers=0) as pool:
    ...     round(pool.evaluate("R(x), S(x,y)"), 6)
    0.2
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.parser import parse
from ..core.query import ConjunctiveQuery, canonical_string
from ..db.database import ProbabilisticDatabase
from ..db.relation import Probability, Value
from ..engines.base import Answer
from ..engines.montecarlo import MonteCarloEngine, resolve_backend
from ..lineage.boolean import Lineage
from ..lineage.packed import HAVE_NUMPY, PackedLineage, SampleArena
from ..obs.metrics import MetricsRegistry, merge_snapshots
from .session import QueryLike, QuerySession, SessionStats
from .transfer import ScatterCache, pack_arrays, release_segment, unpack_arrays

SCATTER_POLICIES = ("adaptive", "always", "never")
SCATTER_TRANSPORTS = ("auto", "shm", "pickle")

__all__ = [
    "PoolStats",
    "ServerPool",
    "SessionConfig",
    "WorkerError",
    "shard_of",
]


class WorkerError(RuntimeError):
    """An exception raised inside a worker process, re-raised here."""


def shard_of(shape: str, workers: int) -> int:
    """Stable shard index for a canonical query shape.

    Uses CRC-32 rather than :func:`hash` — Python string hashing is
    salted per process, and the whole point is that the same shape maps
    to the same worker across the front, restarts and tests.

    >>> shard_of("R(v0), S(v0, v1)", 4) == shard_of("R(v0), S(v0, v1)", 4)
    True
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    return zlib.crc32(shape.encode("utf-8")) % workers


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-POSIX
        return os.cpu_count() or 1


def _decompose(key, lineage: Lineage) -> tuple:
    """Plain clauses/weights for the legacy queue op: pickling a
    Lineage would drag its cached PackedLineage arrays along."""
    return (
        key, lineage.clauses, dict(lineage.weights), lineage.certainly_true
    )


@dataclass(frozen=True)
class SessionConfig:
    """Picklable recipe for building one worker's :class:`QuerySession`.

    Engines themselves do not cross process boundaries — each worker
    rebuilds its own stack from this config plus a database snapshot,
    so every shard gets private caches and its own sampling backend.
    """

    exact_fallback: bool = False
    mc_samples: int = 20_000
    mc_seed: Optional[int] = None
    compile_budget: Optional[int] = 10_000
    mc_backend: str = "auto"
    max_prepared: int = 256
    #: When False, every worker gets a disabled (null) registry —
    #: the knob ``benchmarks/bench_obs.py`` uses to price telemetry.
    metrics_enabled: bool = True
    #: Capacity of each worker's packed-lineage LRU (structures kept
    #: for reweight-only scatter refreshes); 0 disables caching.
    scatter_cache: int = 128

    def build_session(
        self,
        db: ProbabilisticDatabase,
        metrics: Optional[MetricsRegistry] = None,
    ) -> QuerySession:
        registry = (
            metrics if metrics is not None
            else MetricsRegistry(enabled=self.metrics_enabled)
        )
        return QuerySession(
            db,
            exact_fallback=self.exact_fallback,
            mc_samples=self.mc_samples,
            mc_seed=self.mc_seed,
            compile_budget=self.compile_budget,
            mc_backend=self.mc_backend,
            max_prepared=self.max_prepared,
            metrics=registry,
        )


@dataclass
class PoolStats:
    """Aggregated serving statistics across the pool.

    ``workers`` holds one :class:`SessionStats` per worker (in shard
    order); the front-side counters describe dispatch behaviour.
    """

    workers: List[SessionStats] = field(default_factory=list)
    #: Individual requests accepted by the front.
    requests: int = 0
    #: Worker messages dispatched by the batching front.
    batches: int = 0
    #: Requests that shared a dispatch with at least one other request.
    coalesced: int = 0
    #: Single-tuple update broadcasts.
    updates: int = 0
    #: Full-snapshot re-syncs forced by out-of-band front-db mutation.
    syncs: int = 0

    @property
    def combined(self) -> SessionStats:
        """The field-wise sum of every worker's session counters."""
        return SessionStats.merged(self.workers)

    def describe(self) -> str:
        return (
            f"{len(self.workers)} workers, {self.requests} requests in "
            f"{self.batches} batches ({self.coalesced} coalesced), "
            f"{self.updates} updates, {self.syncs} syncs; "
            f"combined: {self.combined.describe()}"
        )


# ----------------------------------------------------------------------
# Worker process protocol
# ----------------------------------------------------------------------
#
# Requests are (op, request_id, payload) tuples on a per-worker queue;
# replies are (request_id, ok, payload) on one shared result queue.
# "update" and "sync" are fire-and-forget (the front validated them
# already); everything else is answered exactly once.

_STOP = "stop"


def _worker_main(config, snapshot, request_queue, result_queue) -> None:
    """Entry point of one worker process."""
    db = ProbabilisticDatabase.from_snapshot(snapshot)
    session = config.build_session(db)
    # Scatter state outlives session re-syncs: cached packed lineages
    # are validated by front-computed hashes, never by db versions, so
    # a sync (or update) can't make an entry stale — at worst the front
    # ships a fresh weights vector.
    scatter = _WorkerScatter(config)
    while True:
        op, request_id, payload = request_queue.get()
        if op == _STOP:
            result_queue.put((request_id, True, None))
            return
        if op == "update":
            db.add(*payload)
            continue
        if op == "sync":
            db = ProbabilisticDatabase.from_snapshot(payload)
            stats = session.stats
            # The rebuilt session starts cold, but the worker's serving
            # history doesn't reset — keep counters monotone for /stats,
            # and re-use the metrics registry (re-registration hands the
            # new session the existing families) for /metrics.
            session = config.build_session(db, metrics=session.metrics)
            session.stats = stats
            continue
        try:
            result = _worker_execute(session, op, payload, scatter)
        except Exception as error:  # noqa: BLE001 - forwarded to the front
            result_queue.put(
                (request_id, False, f"{type(error).__name__}: {error}")
            )
        else:
            result_queue.put((request_id, True, result))


class _WorkerScatter:
    """Per-worker scatter state: the packed-lineage LRU and the arena."""

    def __init__(self, config: SessionConfig) -> None:
        self.cache = ScatterCache(config.scatter_cache)
        self.arena = SampleArena() if HAVE_NUMPY else None


def _worker_execute(
    session: QuerySession, op: str, payload,
    scatter: Optional[_WorkerScatter] = None,
):
    if op == "evaluate_many":
        return session.evaluate_many(payload)
    if op == "answers_many":
        rankings = session.answers_many([query for query, _k in payload])
        return [
            ranking if k is None else ranking[:k]
            for (_query, k), ranking in zip(payload, rankings)
        ]
    if op == "estimate":
        samples, items = payload
        monte_carlo = session.router.monte_carlo
        if samples is not None:
            # reconfigured() (not a hand-rolled ctor call) so the
            # override keeps the method, backend and metrics registry.
            monte_carlo = monte_carlo.reconfigured(samples=samples)
        return [
            (key,) + monte_carlo.estimate_lineage(
                Lineage(clauses, weights, certainly_true=certain)
            )
            for key, clauses, weights, certain in items
        ]
    if op == "estimate_packed":
        return _worker_estimate_packed(session, payload, scatter)
    if op == "stats":
        return session.stats
    if op == "metrics":
        return session.metrics.snapshot()
    raise ValueError(f"unknown worker op {op!r}")


def _worker_estimate_packed(
    session: QuerySession, payload, scatter: _WorkerScatter
):
    """Estimate a manifest of packed lineages shipped as flat buffers.

    Manifest entries are ``("full", key, shape_hash, weight_hash,
    {buffer_name: array_index})``, ``("weights", key, shape_hash,
    weight_hash, array_index)`` or ``("cached", key, shape_hash,
    weight_hash)``; array indices point into the transport payload.
    Cache lookups the front predicted wrong (evictions, races) come
    back in ``misses`` and the front retries them with full buffers —
    the worker never guesses at missing structure.
    """
    samples, transport_payload, manifest = payload
    arrays = unpack_arrays(transport_payload)
    monte_carlo = session.router.monte_carlo
    if samples is not None:
        monte_carlo = monte_carlo.reconfigured(samples=samples)
    cache = scatter.cache
    results = []
    misses = []
    start = time.perf_counter()
    for entry in manifest:
        kind, key, shape_hash, weight_hash = entry[:4]
        if kind == "full":
            packed = PackedLineage.from_buffers(
                {name: arrays[index] for name, index in entry[4].items()}
            )
            cache.put(shape_hash, weight_hash, packed)
        elif kind == "weights":
            packed = cache.get(shape_hash, weight_hash, arrays[entry[4]])
        else:  # "cached"
            packed = cache.get(shape_hash, weight_hash)
        if packed is None:
            misses.append(key)
            continue
        estimate, half_width = monte_carlo.estimate_packed(
            packed, scatter.arena
        )
        results.append((key, estimate, half_width))
    return {
        "results": results,
        "misses": misses,
        "compute_seconds": time.perf_counter() - start,
    }


@dataclass
class _PendingItem:
    kind: str  # "evaluate" | "answers"
    query: ConjunctiveQuery
    k: Optional[int]
    future: Future
    #: ``perf_counter`` at buffer entry — dispatch observes the wait.
    enqueued: float = 0.0


class ServerPool:
    """Shard :class:`QuerySession` serving across worker processes.

    Args:
        db: the authoritative database.  Mutate it through
            :meth:`update` to get incremental broadcast; direct
            mutation is tolerated but costs a full re-sync.
        workers: number of worker processes; ``0`` serves inline from
            this process (one lock-guarded session, no subprocesses).
        config: per-worker :class:`SessionConfig`; defaults match
            :class:`QuerySession` defaults.
        start_method: :mod:`multiprocessing` start method.  The default
            ``"spawn"`` is safe regardless of the front's threads; pass
            ``"fork"`` on POSIX for faster startup.
        request_timeout: seconds to wait for a worker reply before
            raising (None = wait forever).
        scatter_policy: when :meth:`estimate_lineages` ships work to
            workers — ``"adaptive"`` (cost model, the default),
            ``"always"`` or ``"never"`` (always estimate on the front).
        scatter_transport: how packed lineages travel — ``"auto"``
            (shared memory, pickle when unavailable), ``"shm"`` or
            ``"pickle"``.

    Thread-safe: any number of threads may call :meth:`evaluate`,
    :meth:`answers`, :meth:`update` etc. concurrently; concurrent
    same-shard requests coalesce into batched sweeps.  Use as a
    context manager (or call :meth:`close`) for graceful shutdown.
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        workers: int = 4,
        config: Optional[SessionConfig] = None,
        start_method: str = "spawn",
        request_timeout: Optional[float] = None,
        scatter_policy: str = "adaptive",
        scatter_transport: str = "auto",
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if scatter_policy not in SCATTER_POLICIES:
            raise ValueError(
                f"unknown scatter policy {scatter_policy!r}; "
                f"expected one of {SCATTER_POLICIES}"
            )
        if scatter_transport not in SCATTER_TRANSPORTS:
            raise ValueError(
                f"unknown scatter transport {scatter_transport!r}; "
                f"expected one of {SCATTER_TRANSPORTS}"
            )
        self.db = db
        self.config = config if config is not None else SessionConfig()
        self.workers = workers
        self.request_timeout = request_timeout
        self.scatter_policy = scatter_policy
        self.scatter_transport = scatter_transport
        #: Introspection: what the last ``estimate_lineages`` call
        #: decided (choice, estimated seconds, item counts) — consumed
        #: by the benchmark sweep and the policy tests.
        self.last_scatter_decision: Optional[dict] = None
        # Adaptive-policy cost model: EWMA of seconds per cost unit
        # (batch_cost × sample) and of per-call dispatch overhead,
        # refreshed from the same measurements that feed the
        # repro_pool_scatter_seconds histogram.  Seeds are deliberately
        # pessimistic-per-unit so a cold pool keeps small batches
        # inline until real measurements arrive.
        self._unit_seconds = 5e-9
        self._overhead_seconds = 2e-3
        self._front_mc: Optional[MonteCarloEngine] = None
        self._front_arena = SampleArena() if HAVE_NUMPY else None
        self._lock = threading.Lock()
        self._closed = False
        self._requests = 0
        self._batches = 0
        self._coalesced = 0
        self._updates = 0
        self._syncs = 0
        #: Front-side registry: dispatch and queueing metrics live
        #: here; :meth:`metrics_snapshot` merges the workers' registries
        #: in (inline mode shares this registry with the session).
        self.metrics = MetricsRegistry(enabled=self.config.metrics_enabled)
        self._metric_requests = self.metrics.counter(
            "repro_pool_requests_total",
            "Requests accepted by the pool front",
            ("kind",),
        )
        self._metric_inflight = self.metrics.gauge(
            "repro_pool_inflight_requests",
            "Requests accepted by the front but not yet resolved",
        )
        self._metric_queue_wait = self.metrics.histogram(
            "repro_pool_queue_wait_seconds",
            "Time a request spent parked in its shard buffer before "
            "the driving thread dispatched it",
        )
        self._metric_batch_size = self.metrics.histogram(
            "repro_pool_batch_size",
            "Requests per dispatched worker message (coalescing depth)",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )
        self._metric_scatter_seconds = self.metrics.histogram(
            "repro_pool_scatter_seconds",
            "End-to-end latency of Monte Carlo scatter calls "
            "(estimate_lineages)",
        )
        self._metric_scatter_policy = self.metrics.counter(
            "repro_pool_scatter_policy_total",
            "estimate_lineages calls by adaptive-policy outcome",
            ("choice",),
        )
        self._metric_scatter_items = self.metrics.counter(
            "repro_pool_scatter_items_total",
            "Lineages shipped to workers, by transfer path",
            ("path",),
        )
        self._metric_scatter_transport = self.metrics.counter(
            "repro_pool_scatter_transport_total",
            "Scatter messages dispatched, by transport",
            ("transport",),
        )
        if workers == 0:
            self._session: Optional[QuerySession] = (
                self.config.build_session(db, metrics=self.metrics)
            )
            self._session_lock = threading.RLock()
            return
        self._session = None
        import multiprocessing

        ctx = multiprocessing.get_context(start_method)
        snapshot = db.snapshot()
        self._result_queue = ctx.Queue()
        self._request_queues = []
        self._processes = []
        for _ in range(workers):
            queue = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(self.config, snapshot, queue, self._result_queue),
                daemon=True,
            )
            process.start()
            self._request_queues.append(queue)
            self._processes.append(process)
        self._synced_versions = (db.structure_version, db.version)
        #: Per shard: shape_hash -> weight_hash last shipped, the
        #: front's (optimistic) model of each worker's scatter cache.
        self._worker_shapes: List[Dict[str, str]] = [
            {} for _ in range(workers)
        ]
        #: request id -> (op, futures, shard) for in-flight messages.
        self._pending: Dict[int, Tuple[str, List[Future], int]] = {}
        self._ids = itertools.count()
        self._buffers: List[List[_PendingItem]] = [[] for _ in range(workers)]
        self._driving = [False] * workers
        self._broken: Optional[str] = None
        self._collector = threading.Thread(
            target=self._collect, name="serverpool-collector", daemon=True
        )
        self._collector.start()
        self._watcher = threading.Thread(
            target=self._watch, name="serverpool-watcher", daemon=True
        )
        self._watcher.start()

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------

    def evaluate(self, query: QueryLike) -> float:
        """``p(q)``, served by the query shape's home worker."""
        return self._request("evaluate", query, None).result(
            self.request_timeout
        )

    def evaluate_many(self, queries: Sequence[QueryLike]) -> List[float]:
        """Evaluate a batch; shards fan out and run concurrently.

        The whole batch is buffered before any dispatch, so each shard
        receives at most one ``evaluate_many`` message for it — same-
        shard queries share a worker sweep instead of paying one round
        trip each.
        """
        futures = self._request_many(
            [("evaluate", query, None) for query in queries]
        )
        return [future.result(self.request_timeout) for future in futures]

    def answers(
        self, query: QueryLike, k: Optional[int] = None
    ) -> List[Answer]:
        """Ranked answer tuples of one query."""
        return self._request("answers", query, k).result(self.request_timeout)

    def answers_many(
        self, queries: Sequence[QueryLike], k: Optional[int] = None
    ) -> List[List[Answer]]:
        """Ranked answers for a batch of queries (buffered like
        :meth:`evaluate_many`)."""
        futures = self._request_many(
            [("answers", query, k) for query in queries]
        )
        return [future.result(self.request_timeout) for future in futures]

    def update(
        self, relation: str, row: Sequence[Value], probability: Probability
    ) -> None:
        """Insert or re-weight one tuple, broadcast to every worker.

        Validation happens on the front copy first, so a bad update
        raises here and never reaches (or diverges) the replicas.
        After this returns, every subsequently submitted request
        observes the change (per-worker queues are FIFO).
        """
        if self._session is not None:
            with self._session_lock:
                self._session.update(relation, tuple(row), probability)
            with self._lock:
                self._updates += 1
            return
        with self._lock:
            self._check_open()
            self._check_alive()
            self._ensure_synced_locked()
            self.db.add(relation, tuple(row), probability)
            message = ("update", None, (relation, tuple(row), probability))
            for queue in self._request_queues:
                queue.put(message)
            self._synced_versions = (
                self.db.structure_version, self.db.version
            )
            self._updates += 1

    def estimate_lineages(
        self,
        lineages: Mapping[Hashable, Lineage],
        samples: Optional[int] = None,
    ) -> Dict[Hashable, Tuple[float, float]]:
        """Monte Carlo estimation of many lineages, scattered when worth it.

        The pool-level pressure valve for unsafe-query spikes; results
        come back as ``{key: (estimate, 95% half-width)}``, bit-
        identical regardless of where they ran (inline, shm scatter,
        pickle scatter) because every path seeds a sampler the same
        way per lineage.  ``samples`` overrides the per-lineage sample
        cap from the worker config.

        With workers, lineages travel as packed flat buffers through
        shared memory, workers keep a structural LRU so repeats ship
        nothing (or just a weights vector), and the adaptive policy
        runs batches inline on the front when their estimated compute
        wouldn't amortize the dispatch overhead — see
        ``docs/ARCHITECTURE.md`` § "Monte Carlo scatter".
        """
        start = time.perf_counter()
        if self._session is not None:
            # Copy the engine reference under the lock, then sample
            # outside it: a long unsafe batch must not block concurrent
            # evaluate/answers traffic on the inline session.
            with self._session_lock:
                monte_carlo = self._session.router.monte_carlo
            if samples is not None:
                monte_carlo = monte_carlo.reconfigured(samples=samples)
            results = monte_carlo.estimate_lineages(dict(lineages))
            self._metric_scatter_seconds.observe(time.perf_counter() - start)
            return results
        with self._lock:
            self._check_open()
            self._check_alive()
        results: Dict[Hashable, Tuple[float, float]] = {}
        packed_items: List[tuple] = []  # (key, PackedLineage, cost units)
        legacy_items: List[tuple] = []  # (key, clauses, weights, certain)
        per_lineage_samples = (
            samples if samples is not None else self.config.mc_samples
        )
        vectorized = (
            HAVE_NUMPY
            and resolve_backend(self.config.mc_backend) != "python"
        )
        for key, lineage in lineages.items():
            # Trivial lineages short-circuit exactly like
            # estimate_lineage() does, so no path ever samples them.
            if lineage.certainly_true:
                results[key] = (1.0, 0.0)
                continue
            if lineage.is_false:
                results[key] = (0.0, 0.0)
                continue
            if not vectorized:
                legacy_items.append(_decompose(key, lineage))
                continue
            try:
                packed = PackedLineage.of(lineage)
            except Exception:  # noqa: BLE001 - malformed lineage
                # Ship it unpacked so the failure happens *in a worker*
                # and surfaces uniformly as WorkerError.
                legacy_items.append(_decompose(key, lineage))
                continue
            if packed.total == 0.0:
                results[key] = (0.0, 0.0)
                continue
            packed_items.append(
                (key, packed, packed.batch_cost * per_lineage_samples)
            )
        choice, estimated, effective = self._scatter_choice(packed_items)
        self.last_scatter_decision = {
            "choice": choice,
            "estimated_seconds": estimated,
            "workers_effective": effective,
            "packed_items": len(packed_items),
            "legacy_items": len(legacy_items),
        }
        legacy_futures = self._scatter_legacy(legacy_items, samples)
        if packed_items:
            self._metric_scatter_policy.labels(choice).inc()
            if choice == "inline":
                self._estimate_inline(packed_items, samples, results)
            else:
                self._scatter_packed(packed_items, samples, results)
        for future in legacy_futures:
            for key, estimate, half_width in future.result(
                self.request_timeout
            ):
                results[key] = (estimate, half_width)
        self._metric_scatter_seconds.observe(time.perf_counter() - start)
        return results

    # -- scatter internals (workers > 0) --------------------------------

    #: On an effectively single-core host scattering can't beat inline
    #: on throughput, but batches expected to hog the front thread for
    #: longer than this still ship to a worker so concurrent traffic
    #: stays responsive.
    _FRONT_HOG_SECONDS = 0.25

    def _scatter_choice(
        self, packed_items: List[tuple]
    ) -> Tuple[str, float, int]:
        """(choice, estimated seconds, effective workers) for a batch.

        Scattering trades ``(1 - 1/W)`` of the compute for one dispatch
        round trip, so it wins when ``estimated > overhead · W/(W-1)``.
        ``W`` is capped by the cores actually available — spawning work
        across 4 workers on 1 core parallelizes nothing.
        """
        cost_units = sum(cost for _key, _packed, cost in packed_items)
        with self._lock:
            estimated = cost_units * self._unit_seconds
            overhead = self._overhead_seconds
        effective = max(1, min(self.workers, _available_cpus()))
        if self.scatter_policy == "always":
            return "scatter", estimated, effective
        if self.scatter_policy == "never":
            return "inline", estimated, effective
        if effective > 1:
            threshold = overhead * effective / (effective - 1)
            choice = "scatter" if estimated > threshold else "inline"
        else:
            choice = (
                "scatter" if estimated > self._FRONT_HOG_SECONDS
                else "inline"
            )
        return choice, estimated, effective

    def _front_engine(self, samples: Optional[int]) -> MonteCarloEngine:
        """The front's own sampler for inline-policy batches.

        Configured identically to every worker's engine (same seed,
        samples, backend), so an inline decision changes *where* the
        batch runs, never what it returns.
        """
        engine = self._front_mc
        if engine is None:
            engine = self._front_mc = MonteCarloEngine(
                samples=self.config.mc_samples,
                seed=self.config.mc_seed,
                backend=self.config.mc_backend,
                metrics=self.metrics,
            )
        if samples is not None and samples != engine.samples:
            return engine.reconfigured(samples=samples)
        return engine

    def _estimate_inline(
        self, packed_items: List[tuple], samples: Optional[int],
        results: Dict[Hashable, Tuple[float, float]],
    ) -> None:
        engine = self._front_engine(samples)
        compute_start = time.perf_counter()
        for key, packed, _cost in packed_items:
            results[key] = engine.estimate_packed(packed, self._front_arena)
        compute = time.perf_counter() - compute_start
        cost_units = sum(cost for _key, _packed, cost in packed_items)
        if cost_units:
            self._observe_scatter_costs(unit_seconds=compute / cost_units)

    def _scatter_packed(
        self, packed_items: List[tuple], samples: Optional[int],
        results: Dict[Hashable, Tuple[float, float]],
    ) -> None:
        """Ship packed lineages to workers, cost-balanced, cache-aware.

        Chunking is longest-processing-time greedy on estimated cost
        (not round-robin), so one huge lineage doesn't serialize the
        batch behind it.  Cache misses reported by a worker are retried
        once with full buffers — full entries cannot miss, so the retry
        round terminates.
        """
        chunks: List[List[tuple]] = [[] for _ in range(self.workers)]
        loads = [0.0] * self.workers
        for key, packed, cost in sorted(
            packed_items, key=lambda item: -item[2]
        ):
            shard = min(range(self.workers), key=loads.__getitem__)
            chunks[shard].append((key, packed))
            loads[shard] += cost
        wall_start = time.perf_counter()
        compute_seconds: List[float] = []
        round_items = [
            (shard, chunk) for shard, chunk in enumerate(chunks) if chunk
        ]
        force_full = False
        while round_items:
            dispatched = []
            for shard, chunk in round_items:
                future, segment = self._send_packed(
                    shard, chunk, samples, force_full
                )
                dispatched.append((shard, dict(chunk), future, segment))
            round_items = []
            for shard, by_key, future, segment in dispatched:
                try:
                    reply = future.result(self.request_timeout)
                finally:
                    release_segment(segment)
                for key, estimate, half_width in reply["results"]:
                    results[key] = (estimate, half_width)
                compute_seconds.append(reply["compute_seconds"])
                if reply["misses"]:
                    round_items.append(
                        (shard,
                         [(key, by_key[key]) for key in reply["misses"]])
                    )
            force_full = True
        wall = time.perf_counter() - wall_start
        cost_units = sum(cost for _key, _packed, cost in packed_items)
        if compute_seconds and cost_units:
            self._observe_scatter_costs(
                unit_seconds=sum(compute_seconds) / cost_units,
                overhead_seconds=max(0.0, wall - max(compute_seconds)),
            )

    def _send_packed(
        self, shard: int, chunk: List[tuple], samples: Optional[int],
        force_full: bool,
    ) -> Tuple[Future, Optional[object]]:
        """Dispatch one ``estimate_packed`` message to ``shard``.

        Builds the manifest against the front's model of the worker's
        cache (``_worker_shapes``): a structure the worker should
        already hold ships as ``cached`` (hashes only) or ``weights``
        (one float64 vector); everything else ships full buffers.  The
        model is updated at enqueue time — per-shard FIFO makes that
        sound, and a wrong guess (eviction, crash) only costs a miss
        retry.
        """
        arrays: List[object] = []
        manifest: List[tuple] = []
        paths = {"full": 0, "weights": 0, "cached": 0}
        with self._lock:
            self._check_open()
            self._check_alive()
            known = self._worker_shapes[shard]
            for key, packed in chunk:
                shape_hash = packed.shape_hash()
                weight_hash = packed.weight_hash()
                have = None if force_full else known.get(shape_hash)
                if have == weight_hash:
                    manifest.append(("cached", key, shape_hash, weight_hash))
                    paths["cached"] += 1
                elif have is not None:
                    manifest.append(
                        ("weights", key, shape_hash, weight_hash,
                         len(arrays))
                    )
                    arrays.append(packed.weights)
                    paths["weights"] += 1
                else:
                    buffers = packed.to_buffers()
                    indices = {}
                    for name in (
                        "clause_starts", "literal_events",
                        "literal_polarities", "weights",
                    ):
                        indices[name] = len(arrays)
                        arrays.append(buffers[name])
                    manifest.append(
                        ("full", key, shape_hash, weight_hash, indices)
                    )
                    paths["full"] += 1
                known[shape_hash] = weight_hash
            payload, segment = pack_arrays(arrays, self.scatter_transport)
            for path, count in paths.items():
                if count:
                    self._metric_scatter_items.labels(path).inc(count)
            self._metric_scatter_transport.labels(payload[0]).inc()
            future: Future = Future()
            request_id = next(self._ids)
            self._pending[request_id] = ("estimate_packed", [future], shard)
            self._request_queues[shard].put(
                ("estimate_packed", request_id, (samples, payload, manifest))
            )
            self._batches += 1
        return future, segment

    def _scatter_legacy(
        self, items: List[tuple], samples: Optional[int]
    ) -> List[Future]:
        """Round-robin the non-packable leftovers over the legacy op."""
        if not items:
            return []
        chunks: List[list] = [[] for _ in range(self.workers)]
        for index, item in enumerate(items):
            chunks[index % self.workers].append(item)
        futures = []
        with self._lock:
            self._check_open()
            self._check_alive()
            self._metric_scatter_items.labels("legacy").inc(len(items))
            for shard, chunk in enumerate(chunks):
                if not chunk:
                    continue
                future = Future()
                request_id = next(self._ids)
                self._pending[request_id] = ("estimate", [future], shard)
                self._request_queues[shard].put(
                    ("estimate", request_id, (samples, chunk))
                )
                self._batches += 1
                futures.append(future)
        return futures

    def _observe_scatter_costs(
        self,
        unit_seconds: Optional[float] = None,
        overhead_seconds: Optional[float] = None,
    ) -> None:
        """Fold fresh measurements into the adaptive-policy EWMAs."""
        with self._lock:
            if unit_seconds is not None:
                self._unit_seconds += 0.3 * (
                    unit_seconds - self._unit_seconds
                )
            if overhead_seconds is not None:
                self._overhead_seconds += 0.3 * (
                    overhead_seconds - self._overhead_seconds
                )

    def stats(self) -> PoolStats:
        """Aggregate per-worker :class:`SessionStats` plus front counters."""
        with self._lock:
            front = PoolStats(
                requests=self._requests,
                batches=self._batches,
                coalesced=self._coalesced,
                updates=self._updates,
                syncs=self._syncs,
            )
        if self._session is not None:
            front.workers = [self._session.stats]
            return front
        futures = []
        with self._lock:
            self._check_open()
            self._check_alive()
            for shard in range(self.workers):
                future = Future()
                request_id = next(self._ids)
                self._pending[request_id] = ("stats", [future], shard)
                self._request_queues[shard].put(("stats", request_id, None))
                futures.append(future)
        front.workers = [
            future.result(self.request_timeout) for future in futures
        ]
        return front

    def metrics_snapshot(self) -> dict:
        """One merged metrics snapshot: the front plus every worker.

        Worker registries come back as picklable snapshots; counters
        sum and histograms merge bucket-wise
        (:func:`~repro.obs.merge_snapshots`), so the result renders
        directly as the pool's ``/metrics`` exposition.  Inline mode
        (``workers=0``) shares one registry between front and session,
        so its snapshot already carries both.
        """
        snapshots = [self.metrics.snapshot()]
        if self._session is None:
            futures = []
            with self._lock:
                self._check_open()
                self._check_alive()
                for shard in range(self.workers):
                    future = Future()
                    request_id = next(self._ids)
                    self._pending[request_id] = ("metrics", [future], shard)
                    self._request_queues[shard].put(
                        ("metrics", request_id, None)
                    )
                    futures.append(future)
            snapshots.extend(
                future.result(self.request_timeout) for future in futures
            )
        return merge_snapshots(*snapshots)

    def health(self) -> dict:
        """Liveness report: overall ``ok`` plus per-shard worker status.

        A pool with a dead worker reports ``ok: False`` with the dead
        shard visible in ``shards``, so a scraper can tell "healthy",
        "degraded pool" and "closed" apart.
        """
        if self._session is not None:
            return {
                "ok": not self._closed,
                "mode": "inline",
                "workers": 0,
                "shards": [],
            }
        with self._lock:
            closed = self._closed
            broken = self._broken
        shards = [
            {
                "shard": shard,
                "alive": process.is_alive(),
                "pid": process.pid,
            }
            for shard, process in enumerate(self._processes)
        ]
        ok = (
            not closed
            and broken is None
            and all(entry["alive"] for entry in shards)
        )
        report = {
            "ok": ok,
            "mode": "pool",
            "workers": self.workers,
            "shards": shards,
        }
        if broken is not None:
            report["broken"] = broken
        return report

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain queues, stop workers, join threads.

        Idempotent.  Stop messages queue *behind* all previously
        submitted work, so in-flight requests complete first.
        """
        if self._session is not None:
            self._closed = True
            return
        with self._lock:
            if self._closed:
                return
            self._closed = True
            futures = []
            for shard in range(self.workers):
                future = Future()
                request_id = next(self._ids)
                self._pending[request_id] = (_STOP, [future], shard)
                self._request_queues[shard].put((_STOP, request_id, None))
                futures.append(future)
        for future, process in zip(futures, self._processes):
            try:
                future.result(timeout if process.is_alive() else 0.1)
            except Exception:  # noqa: BLE001 - worker already dead
                pass
        self._result_queue.put((None, True, None))  # collector sentinel
        self._collector.join(timeout)
        for process in self._processes:
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
        for queue in self._request_queues + [self._result_queue]:
            queue.close()

    def __enter__(self) -> "ServerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batching front internals
    # ------------------------------------------------------------------

    def _parse(self, query: QueryLike) -> ConjunctiveQuery:
        if isinstance(query, str):
            return parse(query)
        if not isinstance(query, ConjunctiveQuery):
            raise TypeError(
                f"expected query text or ConjunctiveQuery, got {query!r}"
            )
        return query

    def _request(self, kind: str, query: QueryLike, k: Optional[int]) -> Future:
        """Queue one request; returns the future carrying its result."""
        return self._request_many([(kind, query, k)])[0]

    def _request_many(
        self, items: Sequence[Tuple[str, QueryLike, Optional[int]]]
    ) -> List[Future]:
        """Buffer a whole batch, then drive each touched shard once.

        Buffering before dispatch is what makes single-caller batches
        coalesce: all same-shard items ride one worker message (and one
        circuit sweep) instead of one round trip each.  Items from
        other threads that land in a touched buffer meanwhile are
        flushed by whichever driver reaches them first.
        """
        parsed = [
            (kind, self._parse(query), k) for kind, query, k in items
        ]
        futures: List[Future] = []
        if self._session is not None:
            for kind, query, k in parsed:
                future: Future = Future()
                self._serve_inline(kind, query, k, future)
                futures.append(future)
            return futures
        to_drive = []
        with self._lock:
            self._check_open()
            self._check_alive()
            self._ensure_synced_locked()
            for kind, query, k in parsed:
                shape = canonical_string(
                    query.boolean() if kind == "evaluate" else query
                )
                shard = shard_of(shape, self.workers)
                future = Future()
                futures.append(future)
                self._requests += 1
                self._metric_requests.labels(kind).inc()
                self._metric_inflight.inc()
                future.add_done_callback(self._request_done)
                self._buffers[shard].append(
                    _PendingItem(kind, query, k, future, time.perf_counter())
                )
                if not self._driving[shard]:
                    self._driving[shard] = True
                    to_drive.append(shard)
        for shard in to_drive:
            self._drive(shard)
        return futures

    def _serve_inline(
        self, kind: str, query: ConjunctiveQuery, k: Optional[int],
        future: Future,
    ) -> None:
        with self._lock:
            self._requests += 1
            self._batches += 1
        self._metric_requests.labels(kind).inc()
        self._metric_inflight.inc()
        self._metric_batch_size.observe(1)  # inline: no coalescing front
        future.add_done_callback(self._request_done)
        try:
            with self._session_lock:
                if kind == "evaluate":
                    result = self._session.evaluate(query)
                else:
                    result = self._session.answers(query, k)
        except Exception as error:  # noqa: BLE001 - delivered via future
            future.set_exception(error)
        else:
            future.set_result(result)

    def _drive(self, shard: int) -> None:
        """Flush the shard's buffer until it runs dry.

        Exactly one thread drives a shard at a time; it re-checks the
        buffer after every flush so requests parked by other threads
        while it was dispatching ride the next message.
        """
        while True:
            with self._lock:
                batch = self._buffers[shard]
                if not batch:
                    self._driving[shard] = False
                    return
                self._buffers[shard] = []
            self._dispatch(shard, batch)

    def _request_done(self, _future: Future) -> None:
        self._metric_inflight.dec()

    def _dispatch(self, shard: int, batch: List[_PendingItem]) -> None:
        now = time.perf_counter()
        for item in batch:
            self._metric_queue_wait.observe(now - item.enqueued)
        self._metric_batch_size.observe(len(batch))
        evaluates = [item for item in batch if item.kind == "evaluate"]
        answers = [item for item in batch if item.kind == "answers"]
        error = None
        with self._lock:
            # Re-check under the lock: the pool may have closed (the
            # STOP message is already queued) or the worker died (the
            # watcher already swept _pending and this buffer) since
            # this batch was submitted — enqueueing now would strand
            # these futures with no reply ever coming.
            if self._broken is not None:
                error = WorkerError(self._broken)
            elif self._closed:
                error = RuntimeError("ServerPool is closed")
            else:
                for kind, items in (
                    ("evaluate", evaluates), ("answers", answers)
                ):
                    if not items:
                        continue
                    if len(items) > 1:
                        self._coalesced += len(items)
                    request_id = next(self._ids)
                    if kind == "evaluate":
                        op, payload = (
                            "evaluate_many", [item.query for item in items]
                        )
                    else:
                        op, payload = (
                            "answers_many",
                            [(item.query, item.k) for item in items],
                        )
                    self._pending[request_id] = (
                        op, [i.future for i in items], shard
                    )
                    self._batches += 1
                    self._request_queues[shard].put((op, request_id, payload))
        if error is not None:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(error)

    def _ensure_synced_locked(self) -> None:
        """Repair replicas after out-of-band front-db mutation."""
        current = (self.db.structure_version, self.db.version)
        if current == self._synced_versions:
            return
        snapshot = self.db.snapshot()
        for queue in self._request_queues:
            queue.put(("sync", None, snapshot))
        self._synced_versions = current
        self._syncs += 1

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ServerPool is closed")

    def _check_alive(self) -> None:
        if self._broken is not None:
            raise WorkerError(self._broken)
        dead = [
            index for index, process in enumerate(self._processes)
            if not process.is_alive()
        ]
        if dead:
            raise WorkerError(
                f"worker(s) {dead} died; the pool must be rebuilt"
            )

    def _watch(self) -> None:
        """Watcher thread: fail a dead worker's in-flight futures.

        Without it, a worker crashing mid-request (OOM kill, bug) would
        leave its reply missing forever and `future.result(None)`
        blocking indefinitely.  Process sentinels fire on any exit;
        exits during `close()` are the orderly case and are ignored.
        """
        from multiprocessing.connection import wait

        sentinels = {
            process.sentinel: shard
            for shard, process in enumerate(self._processes)
        }
        while sentinels:
            for sentinel in wait(list(sentinels)):
                shard = sentinels.pop(sentinel)
                self._fail_shard(shard)

    def _fail_shard(self, shard: int) -> None:
        with self._lock:
            if self._closed:
                return
            message = f"worker {shard} died; the pool must be rebuilt"
            self._broken = message
            entries = [
                (request_id, futures)
                for request_id, (_op, futures, owner)
                in list(self._pending.items())
                if owner == shard
            ]
            for request_id, _futures in entries:
                del self._pending[request_id]
            buffered = self._buffers[shard]
            self._buffers[shard] = []
        error = WorkerError(message)
        for _request_id, futures in entries:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
        for item in buffered:
            if not item.future.done():
                item.future.set_exception(error)

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        """Collector thread: route worker replies onto their futures."""
        while True:
            request_id, ok, payload = self._result_queue.get()
            if request_id is None:
                return
            with self._lock:
                op, futures, _shard = self._pending.pop(
                    request_id, (None, [], -1)
                )
            if not ok:
                error = WorkerError(payload)
                for future in futures:
                    future.set_exception(error)
                continue
            if op in ("evaluate_many", "answers_many"):
                for future, value in zip(futures, payload):
                    future.set_result(value)
            else:  # estimate / stats / stop: one future, raw payload
                for future in futures:
                    future.set_result(payload)
