"""A sharded pool of :class:`~repro.serve.session.QuerySession` workers.

One :class:`QuerySession` amortizes work across calls; a
:class:`ServerPool` amortizes it across *processes* for concurrent
traffic.  The moving parts:

* **Shape sharding.**  Requests are hash-partitioned by the canonical
  query shape (:func:`shard_of`), so every shape always lands on the
  same worker and that worker's prepared-query LRU and structural
  circuit cache stay hot.  Sharding also multiplies aggregate cache
  capacity: each worker only has to hold its own slice of the shape
  universe, where a single session would thrash its LRU.

* **A batching front.**  Requests issued concurrently (from many
  threads, or the HTTP server's handlers) park in a per-shard buffer;
  whichever thread finds the shard idle becomes the *driver* and
  flushes the whole buffer as one ``evaluate_many`` /
  ``answers_many`` message, so in-flight same-shape requests coalesce
  into a single vectorized circuit sweep inside the worker.

* **Version broadcast.**  Each worker holds a replica of the database.
  :meth:`ServerPool.update` validates against the front copy, then
  broadcasts the delta to every worker queue; per-queue FIFO order
  guarantees any request submitted after ``update`` returns observes
  it.  Direct mutations of the front database (not through the pool)
  are detected by version drift and repaired with a full snapshot
  broadcast before the next dispatch.

* **Monte Carlo scatter.**  :meth:`ServerPool.estimate_lineages`
  splits a batch of unsafe lineages round-robin across workers, each
  running its own vectorized sampling backend — the pool-level answer
  to an unsafe-query spike, exact-seed-deterministic per lineage.

``workers=0`` runs everything inline on one lock-guarded session in
this process — same API, no subprocesses — which keeps doctests, small
deployments and fork-less platforms simple::

    >>> from repro.db.database import ProbabilisticDatabase
    >>> db = ProbabilisticDatabase.from_dict(
    ...     {"R": {(1,): 0.5}, "S": {(1, 2): 0.4}})
    >>> with ServerPool(db, workers=0) as pool:
    ...     round(pool.evaluate("R(x), S(x,y)"), 6)
    0.2
"""

from __future__ import annotations

import itertools
import threading
import time
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.parser import parse
from ..core.query import ConjunctiveQuery, canonical_string
from ..db.database import ProbabilisticDatabase
from ..db.relation import Probability, Value
from ..engines.base import Answer
from ..lineage.boolean import Lineage
from ..obs.metrics import MetricsRegistry, merge_snapshots
from .session import QueryLike, QuerySession, SessionStats

__all__ = [
    "PoolStats",
    "ServerPool",
    "SessionConfig",
    "WorkerError",
    "shard_of",
]


class WorkerError(RuntimeError):
    """An exception raised inside a worker process, re-raised here."""


def shard_of(shape: str, workers: int) -> int:
    """Stable shard index for a canonical query shape.

    Uses CRC-32 rather than :func:`hash` — Python string hashing is
    salted per process, and the whole point is that the same shape maps
    to the same worker across the front, restarts and tests.

    >>> shard_of("R(v0), S(v0, v1)", 4) == shard_of("R(v0), S(v0, v1)", 4)
    True
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    return zlib.crc32(shape.encode("utf-8")) % workers


@dataclass(frozen=True)
class SessionConfig:
    """Picklable recipe for building one worker's :class:`QuerySession`.

    Engines themselves do not cross process boundaries — each worker
    rebuilds its own stack from this config plus a database snapshot,
    so every shard gets private caches and its own sampling backend.
    """

    exact_fallback: bool = False
    mc_samples: int = 20_000
    mc_seed: Optional[int] = None
    compile_budget: Optional[int] = 10_000
    mc_backend: str = "auto"
    max_prepared: int = 256
    #: When False, every worker gets a disabled (null) registry —
    #: the knob ``benchmarks/bench_obs.py`` uses to price telemetry.
    metrics_enabled: bool = True

    def build_session(
        self,
        db: ProbabilisticDatabase,
        metrics: Optional[MetricsRegistry] = None,
    ) -> QuerySession:
        registry = (
            metrics if metrics is not None
            else MetricsRegistry(enabled=self.metrics_enabled)
        )
        return QuerySession(
            db,
            exact_fallback=self.exact_fallback,
            mc_samples=self.mc_samples,
            mc_seed=self.mc_seed,
            compile_budget=self.compile_budget,
            mc_backend=self.mc_backend,
            max_prepared=self.max_prepared,
            metrics=registry,
        )


@dataclass
class PoolStats:
    """Aggregated serving statistics across the pool.

    ``workers`` holds one :class:`SessionStats` per worker (in shard
    order); the front-side counters describe dispatch behaviour.
    """

    workers: List[SessionStats] = field(default_factory=list)
    #: Individual requests accepted by the front.
    requests: int = 0
    #: Worker messages dispatched by the batching front.
    batches: int = 0
    #: Requests that shared a dispatch with at least one other request.
    coalesced: int = 0
    #: Single-tuple update broadcasts.
    updates: int = 0
    #: Full-snapshot re-syncs forced by out-of-band front-db mutation.
    syncs: int = 0

    @property
    def combined(self) -> SessionStats:
        """The field-wise sum of every worker's session counters."""
        return SessionStats.merged(self.workers)

    def describe(self) -> str:
        return (
            f"{len(self.workers)} workers, {self.requests} requests in "
            f"{self.batches} batches ({self.coalesced} coalesced), "
            f"{self.updates} updates, {self.syncs} syncs; "
            f"combined: {self.combined.describe()}"
        )


# ----------------------------------------------------------------------
# Worker process protocol
# ----------------------------------------------------------------------
#
# Requests are (op, request_id, payload) tuples on a per-worker queue;
# replies are (request_id, ok, payload) on one shared result queue.
# "update" and "sync" are fire-and-forget (the front validated them
# already); everything else is answered exactly once.

_STOP = "stop"


def _worker_main(config, snapshot, request_queue, result_queue) -> None:
    """Entry point of one worker process."""
    db = ProbabilisticDatabase.from_snapshot(snapshot)
    session = config.build_session(db)
    while True:
        op, request_id, payload = request_queue.get()
        if op == _STOP:
            result_queue.put((request_id, True, None))
            return
        if op == "update":
            db.add(*payload)
            continue
        if op == "sync":
            db = ProbabilisticDatabase.from_snapshot(payload)
            stats = session.stats
            # The rebuilt session starts cold, but the worker's serving
            # history doesn't reset — keep counters monotone for /stats,
            # and re-use the metrics registry (re-registration hands the
            # new session the existing families) for /metrics.
            session = config.build_session(db, metrics=session.metrics)
            session.stats = stats
            continue
        try:
            result = _worker_execute(session, op, payload)
        except Exception as error:  # noqa: BLE001 - forwarded to the front
            result_queue.put(
                (request_id, False, f"{type(error).__name__}: {error}")
            )
        else:
            result_queue.put((request_id, True, result))


def _worker_execute(session: QuerySession, op: str, payload):
    if op == "evaluate_many":
        return session.evaluate_many(payload)
    if op == "answers_many":
        rankings = session.answers_many([query for query, _k in payload])
        return [
            ranking if k is None else ranking[:k]
            for (_query, k), ranking in zip(payload, rankings)
        ]
    if op == "estimate":
        samples, items = payload
        monte_carlo = session.router.monte_carlo
        if samples is not None:
            monte_carlo = type(monte_carlo)(
                samples=samples,
                seed=monte_carlo.seed,
                backend=monte_carlo.backend,
            )
        return [
            (key,) + monte_carlo.estimate_lineage(
                Lineage(clauses, weights, certainly_true=certain)
            )
            for key, clauses, weights, certain in items
        ]
    if op == "stats":
        return session.stats
    if op == "metrics":
        return session.metrics.snapshot()
    raise ValueError(f"unknown worker op {op!r}")


@dataclass
class _PendingItem:
    kind: str  # "evaluate" | "answers"
    query: ConjunctiveQuery
    k: Optional[int]
    future: Future
    #: ``perf_counter`` at buffer entry — dispatch observes the wait.
    enqueued: float = 0.0


class ServerPool:
    """Shard :class:`QuerySession` serving across worker processes.

    Args:
        db: the authoritative database.  Mutate it through
            :meth:`update` to get incremental broadcast; direct
            mutation is tolerated but costs a full re-sync.
        workers: number of worker processes; ``0`` serves inline from
            this process (one lock-guarded session, no subprocesses).
        config: per-worker :class:`SessionConfig`; defaults match
            :class:`QuerySession` defaults.
        start_method: :mod:`multiprocessing` start method.  The default
            ``"spawn"`` is safe regardless of the front's threads; pass
            ``"fork"`` on POSIX for faster startup.
        request_timeout: seconds to wait for a worker reply before
            raising (None = wait forever).

    Thread-safe: any number of threads may call :meth:`evaluate`,
    :meth:`answers`, :meth:`update` etc. concurrently; concurrent
    same-shard requests coalesce into batched sweeps.  Use as a
    context manager (or call :meth:`close`) for graceful shutdown.
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        workers: int = 4,
        config: Optional[SessionConfig] = None,
        start_method: str = "spawn",
        request_timeout: Optional[float] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.db = db
        self.config = config if config is not None else SessionConfig()
        self.workers = workers
        self.request_timeout = request_timeout
        self._lock = threading.Lock()
        self._closed = False
        self._requests = 0
        self._batches = 0
        self._coalesced = 0
        self._updates = 0
        self._syncs = 0
        #: Front-side registry: dispatch and queueing metrics live
        #: here; :meth:`metrics_snapshot` merges the workers' registries
        #: in (inline mode shares this registry with the session).
        self.metrics = MetricsRegistry(enabled=self.config.metrics_enabled)
        self._metric_requests = self.metrics.counter(
            "repro_pool_requests_total",
            "Requests accepted by the pool front",
            ("kind",),
        )
        self._metric_inflight = self.metrics.gauge(
            "repro_pool_inflight_requests",
            "Requests accepted by the front but not yet resolved",
        )
        self._metric_queue_wait = self.metrics.histogram(
            "repro_pool_queue_wait_seconds",
            "Time a request spent parked in its shard buffer before "
            "the driving thread dispatched it",
        )
        self._metric_batch_size = self.metrics.histogram(
            "repro_pool_batch_size",
            "Requests per dispatched worker message (coalescing depth)",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )
        self._metric_scatter_seconds = self.metrics.histogram(
            "repro_pool_scatter_seconds",
            "End-to-end latency of Monte Carlo scatter calls "
            "(estimate_lineages)",
        )
        if workers == 0:
            self._session: Optional[QuerySession] = (
                self.config.build_session(db, metrics=self.metrics)
            )
            self._session_lock = threading.RLock()
            return
        self._session = None
        import multiprocessing

        ctx = multiprocessing.get_context(start_method)
        snapshot = db.snapshot()
        self._result_queue = ctx.Queue()
        self._request_queues = []
        self._processes = []
        for _ in range(workers):
            queue = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(self.config, snapshot, queue, self._result_queue),
                daemon=True,
            )
            process.start()
            self._request_queues.append(queue)
            self._processes.append(process)
        self._synced_versions = (db.structure_version, db.version)
        #: request id -> (op, futures, shard) for in-flight messages.
        self._pending: Dict[int, Tuple[str, List[Future], int]] = {}
        self._ids = itertools.count()
        self._buffers: List[List[_PendingItem]] = [[] for _ in range(workers)]
        self._driving = [False] * workers
        self._broken: Optional[str] = None
        self._collector = threading.Thread(
            target=self._collect, name="serverpool-collector", daemon=True
        )
        self._collector.start()
        self._watcher = threading.Thread(
            target=self._watch, name="serverpool-watcher", daemon=True
        )
        self._watcher.start()

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------

    def evaluate(self, query: QueryLike) -> float:
        """``p(q)``, served by the query shape's home worker."""
        return self._request("evaluate", query, None).result(
            self.request_timeout
        )

    def evaluate_many(self, queries: Sequence[QueryLike]) -> List[float]:
        """Evaluate a batch; shards fan out and run concurrently.

        The whole batch is buffered before any dispatch, so each shard
        receives at most one ``evaluate_many`` message for it — same-
        shard queries share a worker sweep instead of paying one round
        trip each.
        """
        futures = self._request_many(
            [("evaluate", query, None) for query in queries]
        )
        return [future.result(self.request_timeout) for future in futures]

    def answers(
        self, query: QueryLike, k: Optional[int] = None
    ) -> List[Answer]:
        """Ranked answer tuples of one query."""
        return self._request("answers", query, k).result(self.request_timeout)

    def answers_many(
        self, queries: Sequence[QueryLike], k: Optional[int] = None
    ) -> List[List[Answer]]:
        """Ranked answers for a batch of queries (buffered like
        :meth:`evaluate_many`)."""
        futures = self._request_many(
            [("answers", query, k) for query in queries]
        )
        return [future.result(self.request_timeout) for future in futures]

    def update(
        self, relation: str, row: Sequence[Value], probability: Probability
    ) -> None:
        """Insert or re-weight one tuple, broadcast to every worker.

        Validation happens on the front copy first, so a bad update
        raises here and never reaches (or diverges) the replicas.
        After this returns, every subsequently submitted request
        observes the change (per-worker queues are FIFO).
        """
        if self._session is not None:
            with self._session_lock:
                self._session.update(relation, tuple(row), probability)
            with self._lock:
                self._updates += 1
            return
        with self._lock:
            self._check_open()
            self._check_alive()
            self._ensure_synced_locked()
            self.db.add(relation, tuple(row), probability)
            message = ("update", None, (relation, tuple(row), probability))
            for queue in self._request_queues:
                queue.put(message)
            self._synced_versions = (
                self.db.structure_version, self.db.version
            )
            self._updates += 1

    def estimate_lineages(
        self,
        lineages: Mapping[Hashable, Lineage],
        samples: Optional[int] = None,
    ) -> Dict[Hashable, Tuple[float, float]]:
        """Scatter Monte Carlo estimation of many lineages across workers.

        The pool-level pressure valve for unsafe-query spikes: each
        worker estimates its slice with its own (vectorized, seeded)
        sampler, and results come back as ``{key: (estimate, 95%
        half-width)}``.  ``samples`` overrides the per-lineage sample
        cap from the worker config.
        """
        start = time.perf_counter()
        if self._session is not None:
            with self._session_lock:
                monte_carlo = self._session.router.monte_carlo
                if samples is not None:
                    monte_carlo = type(monte_carlo)(
                        samples=samples, seed=monte_carlo.seed,
                        backend=monte_carlo.backend,
                    )
                results = monte_carlo.estimate_lineages(dict(lineages))
            self._metric_scatter_seconds.observe(time.perf_counter() - start)
            return results
        # Decompose into plain clauses/weights for the queue: pickling
        # a Lineage would drag its cached PackedLineage arrays along.
        items = [
            (key, lineage.clauses, dict(lineage.weights),
             lineage.certainly_true)
            for key, lineage in lineages.items()
        ]
        chunks: List[list] = [[] for _ in range(self.workers)]
        for index, item in enumerate(items):
            chunks[index % self.workers].append(item)
        futures = []
        with self._lock:
            self._check_open()
            self._check_alive()
            for shard, chunk in enumerate(chunks):
                if not chunk:
                    continue
                future = Future()
                request_id = next(self._ids)
                self._pending[request_id] = ("estimate", [future], shard)
                self._request_queues[shard].put(
                    ("estimate", request_id, (samples, chunk))
                )
                self._batches += 1
                futures.append(future)
        results: Dict[Hashable, Tuple[float, float]] = {}
        for future in futures:
            for key, estimate, half_width in future.result(
                self.request_timeout
            ):
                results[key] = (estimate, half_width)
        self._metric_scatter_seconds.observe(time.perf_counter() - start)
        return results

    def stats(self) -> PoolStats:
        """Aggregate per-worker :class:`SessionStats` plus front counters."""
        with self._lock:
            front = PoolStats(
                requests=self._requests,
                batches=self._batches,
                coalesced=self._coalesced,
                updates=self._updates,
                syncs=self._syncs,
            )
        if self._session is not None:
            front.workers = [self._session.stats]
            return front
        futures = []
        with self._lock:
            self._check_open()
            self._check_alive()
            for shard in range(self.workers):
                future = Future()
                request_id = next(self._ids)
                self._pending[request_id] = ("stats", [future], shard)
                self._request_queues[shard].put(("stats", request_id, None))
                futures.append(future)
        front.workers = [
            future.result(self.request_timeout) for future in futures
        ]
        return front

    def metrics_snapshot(self) -> dict:
        """One merged metrics snapshot: the front plus every worker.

        Worker registries come back as picklable snapshots; counters
        sum and histograms merge bucket-wise
        (:func:`~repro.obs.merge_snapshots`), so the result renders
        directly as the pool's ``/metrics`` exposition.  Inline mode
        (``workers=0``) shares one registry between front and session,
        so its snapshot already carries both.
        """
        snapshots = [self.metrics.snapshot()]
        if self._session is None:
            futures = []
            with self._lock:
                self._check_open()
                self._check_alive()
                for shard in range(self.workers):
                    future = Future()
                    request_id = next(self._ids)
                    self._pending[request_id] = ("metrics", [future], shard)
                    self._request_queues[shard].put(
                        ("metrics", request_id, None)
                    )
                    futures.append(future)
            snapshots.extend(
                future.result(self.request_timeout) for future in futures
            )
        return merge_snapshots(*snapshots)

    def health(self) -> dict:
        """Liveness report: overall ``ok`` plus per-shard worker status.

        A pool with a dead worker reports ``ok: False`` with the dead
        shard visible in ``shards``, so a scraper can tell "healthy",
        "degraded pool" and "closed" apart.
        """
        if self._session is not None:
            return {
                "ok": not self._closed,
                "mode": "inline",
                "workers": 0,
                "shards": [],
            }
        with self._lock:
            closed = self._closed
            broken = self._broken
        shards = [
            {
                "shard": shard,
                "alive": process.is_alive(),
                "pid": process.pid,
            }
            for shard, process in enumerate(self._processes)
        ]
        ok = (
            not closed
            and broken is None
            and all(entry["alive"] for entry in shards)
        )
        report = {
            "ok": ok,
            "mode": "pool",
            "workers": self.workers,
            "shards": shards,
        }
        if broken is not None:
            report["broken"] = broken
        return report

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain queues, stop workers, join threads.

        Idempotent.  Stop messages queue *behind* all previously
        submitted work, so in-flight requests complete first.
        """
        if self._session is not None:
            self._closed = True
            return
        with self._lock:
            if self._closed:
                return
            self._closed = True
            futures = []
            for shard in range(self.workers):
                future = Future()
                request_id = next(self._ids)
                self._pending[request_id] = (_STOP, [future], shard)
                self._request_queues[shard].put((_STOP, request_id, None))
                futures.append(future)
        for future, process in zip(futures, self._processes):
            try:
                future.result(timeout if process.is_alive() else 0.1)
            except Exception:  # noqa: BLE001 - worker already dead
                pass
        self._result_queue.put((None, True, None))  # collector sentinel
        self._collector.join(timeout)
        for process in self._processes:
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
        for queue in self._request_queues + [self._result_queue]:
            queue.close()

    def __enter__(self) -> "ServerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batching front internals
    # ------------------------------------------------------------------

    def _parse(self, query: QueryLike) -> ConjunctiveQuery:
        if isinstance(query, str):
            return parse(query)
        if not isinstance(query, ConjunctiveQuery):
            raise TypeError(
                f"expected query text or ConjunctiveQuery, got {query!r}"
            )
        return query

    def _request(self, kind: str, query: QueryLike, k: Optional[int]) -> Future:
        """Queue one request; returns the future carrying its result."""
        return self._request_many([(kind, query, k)])[0]

    def _request_many(
        self, items: Sequence[Tuple[str, QueryLike, Optional[int]]]
    ) -> List[Future]:
        """Buffer a whole batch, then drive each touched shard once.

        Buffering before dispatch is what makes single-caller batches
        coalesce: all same-shard items ride one worker message (and one
        circuit sweep) instead of one round trip each.  Items from
        other threads that land in a touched buffer meanwhile are
        flushed by whichever driver reaches them first.
        """
        parsed = [
            (kind, self._parse(query), k) for kind, query, k in items
        ]
        futures: List[Future] = []
        if self._session is not None:
            for kind, query, k in parsed:
                future: Future = Future()
                self._serve_inline(kind, query, k, future)
                futures.append(future)
            return futures
        to_drive = []
        with self._lock:
            self._check_open()
            self._check_alive()
            self._ensure_synced_locked()
            for kind, query, k in parsed:
                shape = canonical_string(
                    query.boolean() if kind == "evaluate" else query
                )
                shard = shard_of(shape, self.workers)
                future = Future()
                futures.append(future)
                self._requests += 1
                self._metric_requests.labels(kind).inc()
                self._metric_inflight.inc()
                future.add_done_callback(self._request_done)
                self._buffers[shard].append(
                    _PendingItem(kind, query, k, future, time.perf_counter())
                )
                if not self._driving[shard]:
                    self._driving[shard] = True
                    to_drive.append(shard)
        for shard in to_drive:
            self._drive(shard)
        return futures

    def _serve_inline(
        self, kind: str, query: ConjunctiveQuery, k: Optional[int],
        future: Future,
    ) -> None:
        with self._lock:
            self._requests += 1
            self._batches += 1
        self._metric_requests.labels(kind).inc()
        self._metric_inflight.inc()
        self._metric_batch_size.observe(1)  # inline: no coalescing front
        future.add_done_callback(self._request_done)
        try:
            with self._session_lock:
                if kind == "evaluate":
                    result = self._session.evaluate(query)
                else:
                    result = self._session.answers(query, k)
        except Exception as error:  # noqa: BLE001 - delivered via future
            future.set_exception(error)
        else:
            future.set_result(result)

    def _drive(self, shard: int) -> None:
        """Flush the shard's buffer until it runs dry.

        Exactly one thread drives a shard at a time; it re-checks the
        buffer after every flush so requests parked by other threads
        while it was dispatching ride the next message.
        """
        while True:
            with self._lock:
                batch = self._buffers[shard]
                if not batch:
                    self._driving[shard] = False
                    return
                self._buffers[shard] = []
            self._dispatch(shard, batch)

    def _request_done(self, _future: Future) -> None:
        self._metric_inflight.dec()

    def _dispatch(self, shard: int, batch: List[_PendingItem]) -> None:
        now = time.perf_counter()
        for item in batch:
            self._metric_queue_wait.observe(now - item.enqueued)
        self._metric_batch_size.observe(len(batch))
        evaluates = [item for item in batch if item.kind == "evaluate"]
        answers = [item for item in batch if item.kind == "answers"]
        error = None
        with self._lock:
            # Re-check under the lock: the pool may have closed (the
            # STOP message is already queued) or the worker died (the
            # watcher already swept _pending and this buffer) since
            # this batch was submitted — enqueueing now would strand
            # these futures with no reply ever coming.
            if self._broken is not None:
                error = WorkerError(self._broken)
            elif self._closed:
                error = RuntimeError("ServerPool is closed")
            else:
                for kind, items in (
                    ("evaluate", evaluates), ("answers", answers)
                ):
                    if not items:
                        continue
                    if len(items) > 1:
                        self._coalesced += len(items)
                    request_id = next(self._ids)
                    if kind == "evaluate":
                        op, payload = (
                            "evaluate_many", [item.query for item in items]
                        )
                    else:
                        op, payload = (
                            "answers_many",
                            [(item.query, item.k) for item in items],
                        )
                    self._pending[request_id] = (
                        op, [i.future for i in items], shard
                    )
                    self._batches += 1
                    self._request_queues[shard].put((op, request_id, payload))
        if error is not None:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(error)

    def _ensure_synced_locked(self) -> None:
        """Repair replicas after out-of-band front-db mutation."""
        current = (self.db.structure_version, self.db.version)
        if current == self._synced_versions:
            return
        snapshot = self.db.snapshot()
        for queue in self._request_queues:
            queue.put(("sync", None, snapshot))
        self._synced_versions = current
        self._syncs += 1

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ServerPool is closed")

    def _check_alive(self) -> None:
        if self._broken is not None:
            raise WorkerError(self._broken)
        dead = [
            index for index, process in enumerate(self._processes)
            if not process.is_alive()
        ]
        if dead:
            raise WorkerError(
                f"worker(s) {dead} died; the pool must be rebuilt"
            )

    def _watch(self) -> None:
        """Watcher thread: fail a dead worker's in-flight futures.

        Without it, a worker crashing mid-request (OOM kill, bug) would
        leave its reply missing forever and `future.result(None)`
        blocking indefinitely.  Process sentinels fire on any exit;
        exits during `close()` are the orderly case and are ignored.
        """
        from multiprocessing.connection import wait

        sentinels = {
            process.sentinel: shard
            for shard, process in enumerate(self._processes)
        }
        while sentinels:
            for sentinel in wait(list(sentinels)):
                shard = sentinels.pop(sentinel)
                self._fail_shard(shard)

    def _fail_shard(self, shard: int) -> None:
        with self._lock:
            if self._closed:
                return
            message = f"worker {shard} died; the pool must be rebuilt"
            self._broken = message
            entries = [
                (request_id, futures)
                for request_id, (_op, futures, owner)
                in list(self._pending.items())
                if owner == shard
            ]
            for request_id, _futures in entries:
                del self._pending[request_id]
            buffered = self._buffers[shard]
            self._buffers[shard] = []
        error = WorkerError(message)
        for _request_id, futures in entries:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
        for item in buffered:
            if not item.future.done():
                item.future.set_exception(error)

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        """Collector thread: route worker replies onto their futures."""
        while True:
            request_id, ok, payload = self._result_queue.get()
            if request_id is None:
                return
            with self._lock:
                op, futures, _shard = self._pending.pop(
                    request_id, (None, [], -1)
                )
            if not ok:
                error = WorkerError(payload)
                for future in futures:
                    future.set_exception(error)
                continue
            if op in ("evaluate_many", "answers_many"):
                for future, value in zip(futures, payload):
                    future.set_result(value)
            else:  # estimate / stats / stop: one future, raw payload
                for future in futures:
                    future.set_result(payload)
