"""Long-lived query sessions: the MystiQ *server* architecture.

MystiQ is a server, not a batch tool: users issue a stream of queries
against databases whose tuple probabilities drift as extraction
confidences are re-estimated.  The engines in :mod:`repro.engines`
re-derive everything — classification, safe plan, grounding, circuit —
on every call; a :class:`QuerySession` is the layer that amortizes that
work *across* calls:

* **Prepared queries.**  Parsing, safety classification and tier
  choice happen once per canonical query shape (variable renamings
  collapse onto one entry) and live in an LRU of
  :class:`PreparedQuery` records.

* **Precise invalidation.**  The database is observably mutable
  (:attr:`~repro.db.relation.Relation.version` /
  :attr:`~repro.db.relation.Relation.structure_version`); every
  prepared query tracks a version snapshot of exactly the relations it
  mentions.  Unchanged relations ⇒ the cached *result* is returned
  outright.  A probability-only change ⇒ the cached grounding and
  compiled circuit survive and only the weight vector is refreshed
  (one linear — or batched — circuit sweep, no re-grounding, no
  recompilation).  A structural change (new tuple, probability moved
  onto/off the {0, 1} boundary, new relation) ⇒ re-ground; the
  structural circuit cache still catches shape-identical lineages.

* **Batched evaluation.**  :meth:`QuerySession.evaluate_many` /
  :meth:`QuerySession.answers_many` group everything that lands on the
  same canonical compiled circuit — all answers of one query *and*
  same-shape queries across the batch — into one weight matrix and a
  single vectorized bottom-up sweep
  (:func:`~repro.compile.evaluate.reweighted_probabilities`).

The session reproduces the router's numbers exactly: every exact tier
agrees with a fresh :class:`~repro.engines.router.RouterEngine` to
float-epsilon, which the invalidation-matrix suite in
``tests/test_serving.py`` pins to 1e-9 across the query zoo.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, fields
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..compile.evaluate import reweighted_probabilities
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..core.parser import parse
from ..core.query import ConjunctiveQuery, canonical_string
from ..core.union import AnyQuery, UnionQuery, disjuncts_of
from ..db.database import (
    GroundTuple,
    ProbabilisticDatabase,
    RelationVersion,
    TupleKey,
)
from ..db.relation import Probability, Value
from ..engines.base import Answer, UnsupportedQueryError, clamp01, rank_answers
from ..engines.compiled import Artifact, canonicalize_lineage
from ..engines.router import RouterEngine
from ..lineage.boolean import Lineage
from ..lineage.grounding import ground_answer_lineages, ground_lineage
from ..lineage.planner import GroundingError
from ..lineage.wmc import exact_probability

#: A query as accepted by the session API: parsed (CQ or union of
#: CQs) or source text.
QueryLike = Union[str, ConjunctiveQuery, UnionQuery]

#: Distinguishes "keyword not given" from every meaningful value
#: (``compile_budget=None`` and ``mc_seed=None`` are both legitimate).
_UNSET = object()

#: One compiled group of a prepared answer query: the shared artifact,
#: its canonical event order, and per-answer source events (original
#: tuple keys aligned with the canonical order, for weight refreshes).
CompiledGroup = Tuple[Artifact, List[TupleKey], List[Tuple[GroundTuple, List[TupleKey]]]]


@dataclass
class SessionStats:
    """Counters describing how the session served its traffic."""

    #: Distinct prepared queries created (prepared-cache misses).
    prepared: int = 0
    #: ``prepare()`` calls served from the prepared-query LRU.
    prepare_hits: int = 0
    #: Evaluations answered from the result cache (no relation the
    #: query mentions changed since the cached result).
    result_hits: int = 0
    #: Safe-tier (PTIME plan) re-evaluations.
    safe_evaluations: int = 0
    #: Probability-only refreshes: cached grounding + circuit reused,
    #: weights rebuilt from live marginals.
    reweights: int = 0
    #: Structural invalidations: grounding redone (circuits may still
    #: come from the structural cache).
    regrounds: int = 0
    #: Weight rows evaluated through batched circuit sweeps.
    batched_rows: int = 0
    #: Batched bottom-up sweeps performed.
    batched_sweeps: int = 0
    #: Evaluations that fell through to Monte Carlo / the exact oracle.
    fallbacks: int = 0

    def describe(self) -> str:
        return (
            f"prepared {self.prepared} "
            f"(+{self.prepare_hits} hits), "
            f"results: {self.result_hits} cached / "
            f"{self.safe_evaluations} safe / "
            f"{self.reweights} reweighted / "
            f"{self.regrounds} grounded, "
            f"{self.batched_rows} rows in {self.batched_sweeps} sweeps, "
            f"{self.fallbacks} fallbacks"
        )

    @classmethod
    def merged(cls, parts: Iterable["SessionStats"]) -> "SessionStats":
        """Field-wise sum — the pool's cross-worker aggregation.

        >>> a, b = SessionStats(prepared=2), SessionStats(prepared=1, reweights=4)
        >>> SessionStats.merged([a, b])
        SessionStats(prepared=3, prepare_hits=0, result_hits=0, safe_evaluations=0, reweights=4, regrounds=0, batched_rows=0, batched_sweeps=0, fallbacks=0)
        """
        total = cls()
        for part in parts:
            for spec in fields(cls):
                setattr(
                    total, spec.name,
                    getattr(total, spec.name) + getattr(part, spec.name),
                )
        return total


class PreparedQuery:
    """Per-shape cached state: classification, grounding, circuits.

    Built by :meth:`QuerySession.prepare`; callers treat it as opaque.
    ``tier`` is the database-independent routing choice (an engine
    name, or ``"unsafe"``).  For unsafe queries the grounded state
    below is valid as long as ``structure`` matches the database's
    structural snapshot; ``result`` is valid while the full snapshot
    ``result_versions`` matches.
    """

    __slots__ = (
        "query", "shape", "relations", "tier", "plan",
        "result", "result_versions",
        "structure", "lineage", "artifact", "events", "sources",
        "groups", "trivial", "leftovers",
    )

    def __init__(self, query: AnyQuery, shape: str, tier: str) -> None:
        self.query = query
        self.shape = shape
        self.relations: Tuple[str, ...] = query.relations
        self.tier = tier
        #: Grounding-plan description for unsafe tiers (None for PTIME
        #: tiers, which never ground).  Warmed at prepare time; the
        #: plan itself lives in the router's planner cache, keyed on
        #: structural versions, so reweights reuse it and structural
        #: changes replan transparently.
        self.plan: Optional[str] = None
        #: Cached result (float for Boolean, ranked answer list for
        #: answer-tuple queries) + the snapshot it was computed under.
        self.result = None
        self.result_versions: Optional[Tuple[RelationVersion, ...]] = None
        #: Structural snapshot the grounded state below belongs to.
        self.structure: Optional[Tuple[Tuple[str, int], ...]] = None
        # Boolean unsafe state -------------------------------------------------
        self.lineage: Optional[Lineage] = None
        self.artifact: Optional[Artifact] = None
        self.events: Optional[List[TupleKey]] = None
        self.sources: Optional[List[TupleKey]] = None
        # Answer-tuple unsafe state -------------------------------------------
        self.groups: Optional[List[CompiledGroup]] = None
        self.trivial: Optional[List[Answer]] = None
        self.leftovers: Optional[Dict[GroundTuple, Lineage]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedQuery({self.shape!r}, tier={self.tier!r})"


class _ArtifactBatch:
    """Accumulates weight rows per compiled artifact, flushes in sweeps.

    Rows landing on the same artifact — the answers of one prepared
    query, or same-shape queries across a batch — are stacked into one
    matrix and evaluated by a single vectorized bottom-up pass.  Each
    row carries a sink callback that receives its (clamped) value.
    """

    def __init__(
        self, stats: SessionStats, stage_seconds=None, tracer: Tracer = NULL_TRACER
    ) -> None:
        self._stats = stats
        self._stage_seconds = stage_seconds
        self._tracer = tracer
        self._groups: Dict[int, Tuple[Artifact, List[TupleKey], list, list]] = {}

    def add(
        self,
        artifact: Artifact,
        events: List[TupleKey],
        row: List[float],
        sink: Callable[[float], None],
    ) -> None:
        group = self._groups.get(id(artifact))
        if group is None:
            group = self._groups[id(artifact)] = (artifact, events, [], [])
        group[2].append(row)
        group[3].append(sink)

    def flush(self) -> None:
        for artifact, events, rows, sinks in self._groups.values():
            with self._tracer.span("sweep", rows=len(rows)):
                start = time.perf_counter()
                values = reweighted_probabilities(artifact, events, rows)
                if self._stage_seconds is not None:
                    self._stage_seconds.labels("sweep").observe(
                        time.perf_counter() - start
                    )
            self._stats.batched_sweeps += 1
            self._stats.batched_rows += len(rows)
            for sink, value in zip(sinks, values):
                sink(clamp01(value))
        self._groups.clear()


class QuerySession:
    """A long-lived serving façade over a router and a mutable database.

    Args:
        db: the database to serve; mutate it freely (directly or via
            :meth:`update`) — the session notices through the version
            counters and invalidates exactly what the change affects.
        router: optionally a pre-configured
            :class:`~repro.engines.router.RouterEngine`; by default one
            is built from the remaining keyword arguments.  Passing
            both a router *and* router-config keywords is rejected —
            the keywords could not take effect and silently dropping
            them would mask the caller's intent.
        max_prepared: LRU capacity of the prepared-query cache.
        exact_fallback, mc_samples, mc_seed, compile_budget,
        mc_backend: forwarded to the default router.
        metrics: a :class:`~repro.obs.MetricsRegistry` shared with the
            router it builds (stage timers, per-tier counters, Monte
            Carlo gauges all land in one registry, exposed as
            :attr:`metrics`).  With a pre-built ``router`` the session
            adopts ``router.metrics`` instead; passing both is
            rejected.
        tracer: a :class:`~repro.obs.Tracer`; when enabled, every
            request becomes a span tree (stages as child spans).  The
            default shared disabled tracer costs ~an attribute check
            per stage.
        slow_query_threshold, slow_query_limit: queries whose direct
            evaluation takes longer than the threshold (seconds) are
            recorded in the bounded :attr:`slow_queries` log.

    The Monte Carlo tier is stochastic: cached MC results are served
    as long as the database is unchanged (a feature for serving — one
    workload, one answer), and refreshed by re-sampling after any
    change to the query's relations.

    Raises:
        ValueError: non-positive ``max_prepared``, or a pre-built
            router combined with router-config keywords.

    Example — evaluate, drift a probability, re-evaluate::

        >>> from repro.db.database import ProbabilisticDatabase
        >>> db = ProbabilisticDatabase.from_dict(
        ...     {"R": {(1,): 0.5}, "S": {(1, 2): 0.4}})
        >>> session = QuerySession(db)
        >>> round(session.evaluate("R(x), S(x,y)"), 6)  # cold: plan + ground
        0.2
        >>> session.update("R", (1,), 0.9)              # probability-only
        >>> round(session.evaluate("R(x), S(x,y)"), 6)  # re-weighted
        0.36
        >>> session.answers("Q(x) :- R(x), S(x,y)", k=1)
        [((1,), 0.36000000000000004)]
        >>> session.stats.result_hits, session.stats.regrounds
        (0, 0)
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        router: Optional[RouterEngine] = None,
        *,
        max_prepared: int = 256,
        exact_fallback=_UNSET,
        mc_samples=_UNSET,
        mc_seed=_UNSET,
        compile_budget=_UNSET,
        mc_backend=_UNSET,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slow_query_threshold: float = 0.25,
        slow_query_limit: int = 64,
    ) -> None:
        if max_prepared <= 0:
            raise ValueError(f"max_prepared must be positive, got {max_prepared}")
        if slow_query_limit <= 0:
            raise ValueError(
                f"slow_query_limit must be positive, got {slow_query_limit}"
            )
        router_config = {
            name: value
            for name, value in (
                ("exact_fallback", exact_fallback),
                ("mc_samples", mc_samples),
                ("mc_seed", mc_seed),
                ("compile_budget", compile_budget),
                ("mc_backend", mc_backend),
            )
            if value is not _UNSET
        }
        if router is not None and router_config:
            raise ValueError(
                f"pass either a pre-built router or router configuration, "
                f"not both: {sorted(router_config)} would be ignored"
            )
        if router is not None and metrics is not None:
            raise ValueError(
                "pass either a pre-built router or a metrics registry, not "
                "both: a pre-built router already carries its own registry "
                "(router.metrics), which the session adopts"
            )
        self.db = db
        #: One registry spans the whole ladder: the session's stage
        #: timers land next to the router's per-tier counters and the
        #: Monte Carlo gauges, so a single scrape sees every layer.
        if router is not None:
            self.metrics = router.metrics
            self.router = router
        else:
            self.metrics = (
                metrics if metrics is not None else MetricsRegistry()
            )
            self.router = RouterEngine(**router_config, metrics=self.metrics)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.max_prepared = max_prepared
        self._prepared: "OrderedDict[str, PreparedQuery]" = OrderedDict()
        self.stats = SessionStats()
        self.slow_query_threshold = slow_query_threshold
        #: Bounded log of the slowest-served queries: dicts with
        #: ``shape`` / ``kind`` / ``tier`` / ``seconds``, newest last.
        #: A query lands here when its direct evaluation time (shared
        #: sweep time excluded) exceeds ``slow_query_threshold``.
        self.slow_queries: Deque[dict] = deque(maxlen=slow_query_limit)
        self._stage_seconds = self.metrics.histogram(
            "repro_session_stage_seconds",
            "Serving-stage latency inside the session "
            "(prepare/ground/compile/reweight/sweep/safe/fallback)",
            ("stage",),
        )
        self._query_seconds = self.metrics.histogram(
            "repro_session_query_seconds",
            "Per-query direct evaluation time in the session "
            "(shared batched-sweep time excluded; see stage=sweep)",
            ("kind",),
        )
        self._results_total = self.metrics.counter(
            "repro_session_results_total",
            "Results served, by how the cache matrix resolved them",
            ("path",),
        )
        self._slow_total = self.metrics.counter(
            "repro_session_slow_queries_total",
            "Queries whose direct evaluation exceeded the slow-query "
            "threshold",
        )

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------

    def prepare(self, query: QueryLike) -> PreparedQuery:
        """Parse / classify / plan once, keyed by canonical shape.

        Accepts query text or a parsed query; isomorphic queries
        (variable renamings) collapse onto one prepared entry.

        For unsafe tiers the grounding plan is warmed here as well:
        each disjunct is planned against the current database and the
        plan lands in the router's shared planner cache, keyed on the
        relations' structural versions — so every later evaluation and
        every probability-only reweight reuses the plan, and only a
        structural change (insert, 0/1 boundary crossing) replans.
        """
        query = self._parse(query)
        shape = canonical_string(query)
        prepared = self._prepared.get(shape)
        if prepared is not None:
            self._prepared.move_to_end(shape)
            self.stats.prepare_hits += 1
            return prepared
        with self.tracer.span("prepare", shape=shape):
            start = time.perf_counter()
            prepared = PreparedQuery(query, shape, self.router.plan_query(query))
            if prepared.tier == "unsafe":
                planner = self.router.grounding_planner
                try:
                    for disjunct in disjuncts_of(query):
                        planner.plan_clause(disjunct, self.db)
                except GroundingError:
                    # Not groundable (e.g. predicate-only clause with
                    # loose variables): surfaced when evaluated, not
                    # at prepare time.
                    pass
                else:
                    prepared.plan = planner.describe_cached(query)
            self._stage_seconds.labels("prepare").observe(
                time.perf_counter() - start
            )
        self._prepared[shape] = prepared
        self.stats.prepared += 1
        while len(self._prepared) > self.max_prepared:
            self._prepared.popitem(last=False)
        return prepared

    def clear(self) -> None:
        """Drop every cached plan, grounding and result."""
        self._prepared.clear()

    # ------------------------------------------------------------------
    # Database mutation sugar
    # ------------------------------------------------------------------

    def update(
        self, relation: str, row: Sequence[Value], probability: Probability
    ) -> None:
        """Insert or re-weight one tuple (``db.add`` passthrough).

        Invalidation is automatic either way; a probability-only
        change keeps every compiled circuit alive.
        """
        self.db.add(relation, tuple(row), probability)

    def set_sample_budget(self, samples: int) -> None:
        """Swap the Monte Carlo tier's per-query sample cap in place.

        The pool's overload mode calls this (through the ``configure``
        worker op) to degrade gracefully under load: fewer samples per
        unsafe query means wider intervals, not errors.  Uses
        :meth:`~repro.engines.montecarlo.MonteCarloEngine.reconfigured`
        so the method, seed, backend and metrics registry all survive
        the swap.  Cached results are untouched — only fresh Monte
        Carlo work runs at the new budget.
        """
        monte_carlo = self.router.monte_carlo
        if samples != monte_carlo.samples:
            self.router.monte_carlo = monte_carlo.reconfigured(
                samples=samples
            )

    # ------------------------------------------------------------------
    # Boolean evaluation
    # ------------------------------------------------------------------

    def evaluate(self, query: QueryLike) -> float:
        """``p(q)`` by the cheapest correct path, cache-aware."""
        return self.evaluate_many([query])[0]

    def evaluate_many(self, queries: Sequence[QueryLike]) -> List[float]:
        """Evaluate a batch of Boolean queries.

        Duplicate and same-shape queries collapse: every query whose
        canonical compiled circuit coincides contributes one weight row
        to a shared batched sweep.  Answer-tuple queries are read as
        their Boolean existential closure (engine convention).
        """
        unique: List[PreparedQuery] = []
        slot_of: Dict[str, int] = {}
        slots: List[int] = []
        for query in queries:
            parsed = self._parse(query)
            prepared = self.prepare(parsed.boolean())
            if prepared.shape not in slot_of:
                slot_of[prepared.shape] = len(unique)
                unique.append(prepared)
            slots.append(slot_of[prepared.shape])
        results: List[Optional[float]] = [None] * len(unique)
        batch = _ArtifactBatch(self.stats, self._stage_seconds, self.tracer)
        deferred: List[Tuple[int, PreparedQuery, Tuple[RelationVersion, ...]]] = []
        for index, prepared in enumerate(unique):
            with self.tracer.span(
                "evaluate", shape=prepared.shape, tier=prepared.tier
            ):
                start = time.perf_counter()
                value = self._evaluate_boolean(prepared, batch, results,
                                               index, deferred)
                self._observe_query(
                    "evaluate", prepared, time.perf_counter() - start
                )
            if value is not None:
                results[index] = value
        batch.flush()
        for index, prepared, snapshot in deferred:
            self._store(prepared, snapshot, results[index])
        return [results[slot] for slot in slots]

    def _evaluate_boolean(
        self,
        prepared: PreparedQuery,
        batch: _ArtifactBatch,
        results: List[Optional[float]],
        index: int,
        deferred: list,
    ) -> Optional[float]:
        """One Boolean query; returns its value, or None when a row was
        deferred into the batch (the sink fills ``results[index]``)."""
        snapshot = self.db.version_snapshot(prepared.relations)
        if prepared.result_versions == snapshot:
            self.stats.result_hits += 1
            self._results_total.labels("cached").inc()
            return prepared.result
        query = prepared.query
        if prepared.tier != "unsafe":
            engine = (
                self.router.safe_plan
                if prepared.tier == self.router.safe_plan.name
                else self.router.lifted
            )
            start = time.perf_counter()
            value = engine.probability(query, self.db)
            self._stage_seconds.labels("safe").observe(
                time.perf_counter() - start
            )
            self.stats.safe_evaluations += 1
            self._results_total.labels("safe").inc()
            self._store(prepared, snapshot, value)
            return value
        self._refresh_boolean(prepared, snapshot)
        lineage = prepared.lineage
        if lineage.certainly_true:
            value = 1.0
        elif lineage.is_false:
            value = 0.0
        elif prepared.artifact is not None:
            def sink(value: float, index: int = index) -> None:
                results[index] = value

            batch.add(
                prepared.artifact, prepared.events,
                self._weight_row(prepared.sources), sink,
            )
            deferred.append((index, prepared, snapshot))
            return None
        else:
            value = self._fallback_probability(lineage)
        self._store(prepared, snapshot, value)
        return value

    def _refresh_boolean(
        self, prepared: PreparedQuery, snapshot: Tuple[RelationVersion, ...]
    ) -> None:
        """Re-ground on structural change; otherwise keep the circuit."""
        structure = _structure_of(snapshot)
        if prepared.structure == structure:
            self.stats.reweights += 1
            self._results_total.labels("reweighted").inc()
            return
        with self.tracer.span("ground", shape=prepared.shape):
            start = time.perf_counter()
            lineage = ground_lineage(
                prepared.query, self.db,
                planner=self.router.grounding_planner,
            )
            prepared.plan = self.router.grounding_planner.describe_cached(
                prepared.query
            )
            self._stage_seconds.labels("ground").observe(
                time.perf_counter() - start
            )
        prepared.lineage = lineage
        prepared.artifact = prepared.events = prepared.sources = None
        if (
            self.router.compiled is not None
            and not lineage.certainly_true
            and not lineage.is_false
        ):
            with self.tracer.span("compile", shape=prepared.shape):
                start = time.perf_counter()
                canonical, weights, renaming = canonicalize_lineage(lineage)
                try:
                    artifact = self.router.compiled.compile_lineage(canonical)
                except UnsupportedQueryError:
                    artifact = None
                self._stage_seconds.labels("compile").observe(
                    time.perf_counter() - start
                )
            if artifact is not None:
                events = sorted(weights)
                inverse = {new: old for old, new in renaming.items()}
                prepared.artifact = artifact
                prepared.events = events
                prepared.sources = [inverse[event] for event in events]
        prepared.structure = structure
        self.stats.regrounds += 1
        self._results_total.labels("grounded").inc()

    def _fallback_probability(self, lineage: Lineage) -> float:
        """The router's tier-4 fallback, fed the cached lineage."""
        fresh = self._fresh_lineage(lineage)
        self.stats.fallbacks += 1
        self._results_total.labels("fallback").inc()
        with self.tracer.span("fallback"):
            start = time.perf_counter()
            if self.router.exact_fallback:
                value = float(exact_probability(fresh))
            else:
                estimate, _half_width = (
                    self.router.monte_carlo.estimate_lineage(fresh)
                )
                value = clamp01(estimate)
            self._stage_seconds.labels("fallback").observe(
                time.perf_counter() - start
            )
        return value

    # ------------------------------------------------------------------
    # Answer-tuple evaluation
    # ------------------------------------------------------------------

    def answers(
        self, query: QueryLike, k: Optional[int] = None
    ) -> List[Answer]:
        """Ranked answer tuples, cache-aware."""
        return self.answers_many([query], k)[0]

    def answers_many(
        self, queries: Sequence[QueryLike], k: Optional[int] = None
    ) -> List[List[Answer]]:
        """Ranked answers for a batch of queries.

        All per-answer lineages landing on the same canonical circuit
        — within one query and across same-shape queries — share one
        batched sweep.  The *full* ranking is cached; ``k`` truncates
        per call, so changing ``k`` against an unchanged database is a
        pure cache hit.
        """
        unique: List[PreparedQuery] = []
        slot_of: Dict[str, int] = {}
        slots: List[int] = []
        boolean_queries: List[AnyQuery] = []
        for query in queries:
            parsed = self._parse(query)
            if parsed.head is None:
                # Boolean query: single answer () with p(q), like the
                # router.  Deferred so all Boolean members of the batch
                # share one evaluate_many sweep.
                slots.append(-len(boolean_queries) - 1)
                boolean_queries.append(parsed)
                continue
            prepared = self.prepare(parsed)
            if prepared.shape not in slot_of:
                slot_of[prepared.shape] = len(unique)
                unique.append(prepared)
            slots.append(slot_of[prepared.shape])
        boolean = (
            self.evaluate_many(boolean_queries) if boolean_queries else []
        )
        results: List[Optional[List[Answer]]] = [None] * len(unique)
        batch = _ArtifactBatch(self.stats, self._stage_seconds, self.tracer)
        finals: List[Tuple[int, PreparedQuery, Tuple[RelationVersion, ...], List[Answer]]] = []
        for index, prepared in enumerate(unique):
            with self.tracer.span(
                "answers", shape=prepared.shape, tier=prepared.tier
            ):
                start = time.perf_counter()
                ranked = self._evaluate_answers(prepared, batch, finals, index)
                self._observe_query(
                    "answers", prepared, time.perf_counter() - start
                )
            if ranked is not None:
                results[index] = ranked
        batch.flush()
        for index, prepared, snapshot, collected in finals:
            ranked = rank_answers(collected)
            self._store(prepared, snapshot, ranked)
            results[index] = ranked
        out: List[List[Answer]] = []
        for slot in slots:
            if slot < 0:
                value = boolean[-slot - 1]
                ranked = rank_answers([((), value)])
            else:
                ranked = results[slot]
            # Always a fresh list: the full ranking also lives in the
            # result cache, and callers are free to mutate theirs.
            out.append(list(ranked) if k is None else ranked[:k])
        return out

    def _evaluate_answers(
        self,
        prepared: PreparedQuery,
        batch: _ArtifactBatch,
        finals: list,
        index: int,
    ) -> Optional[List[Answer]]:
        """One answer query; returns the cached/safe ranking, or None
        when compiled rows were deferred (``finals`` completes it)."""
        snapshot = self.db.version_snapshot(prepared.relations)
        if prepared.result_versions == snapshot:
            self.stats.result_hits += 1
            self._results_total.labels("cached").inc()
            return prepared.result
        query = prepared.query
        if prepared.tier == self.router.safe_plan.name:
            start = time.perf_counter()
            ranked = self.router.safe_plan.answers(query, self.db)
            self._stage_seconds.labels("safe").observe(
                time.perf_counter() - start
            )
            self.stats.safe_evaluations += 1
            self._results_total.labels("safe").inc()
            self._store(prepared, snapshot, ranked)
            return ranked
        if prepared.tier == self.router.lifted.name:
            start = time.perf_counter()
            ranked = self.router.lifted.answers(query, self.db, assume_safe=True)
            self._stage_seconds.labels("safe").observe(
                time.perf_counter() - start
            )
            self.stats.safe_evaluations += 1
            self._results_total.labels("safe").inc()
            self._store(prepared, snapshot, ranked)
            return ranked
        self._refresh_answers(prepared, snapshot)
        collected: List[Answer] = list(prepared.trivial)
        for artifact, events, members in prepared.groups:
            for answer, sources in members:
                def sink(value: float, answer: GroundTuple = answer) -> None:
                    collected.append((answer, value))

                batch.add(artifact, events, self._weight_row(sources), sink)
        if prepared.leftovers:
            collected.extend(self._fallback_answers(prepared.leftovers))
        finals.append((index, prepared, snapshot, collected))
        return None

    def _refresh_answers(
        self, prepared: PreparedQuery, snapshot: Tuple[RelationVersion, ...]
    ) -> None:
        """Answer-query grounding state, rebuilt only on structure change."""
        structure = _structure_of(snapshot)
        if prepared.structure == structure:
            self.stats.reweights += 1
            self._results_total.labels("reweighted").inc()
            return
        trivial: List[Answer] = []
        leftovers: Dict[GroundTuple, Lineage] = {}
        groups: Dict[int, CompiledGroup] = {}
        positions: Dict[int, Dict[TupleKey, int]] = {}
        with self.tracer.span("ground", shape=prepared.shape):
            start = time.perf_counter()
            lineages = ground_answer_lineages(
                prepared.query, self.db,
                planner=self.router.grounding_planner,
            )
            prepared.plan = self.router.grounding_planner.describe_cached(
                prepared.query
            )
            self._stage_seconds.labels("ground").observe(
                time.perf_counter() - start
            )
        for answer, lineage in lineages.items():
            if lineage.certainly_true:
                trivial.append((answer, 1.0))
                continue
            if lineage.is_false:
                continue
            if self.router.compiled is None:
                leftovers[answer] = lineage
                continue
            start = time.perf_counter()
            canonical, weights, renaming = canonicalize_lineage(lineage)
            try:
                artifact = self.router.compiled.compile_lineage(canonical)
            except UnsupportedQueryError:
                artifact = None
            self._stage_seconds.labels("compile").observe(
                time.perf_counter() - start
            )
            if artifact is None:
                leftovers[answer] = lineage
                continue
            key = id(artifact)
            group = groups.get(key)
            if group is None:
                group = groups[key] = (artifact, sorted(weights), [])
                positions[key] = {
                    event: index for index, event in enumerate(group[1])
                }
            # One pass over the renaming, no inverted intermediate dict.
            position = positions[key]
            sources: List[TupleKey] = [None] * len(group[1])
            for original, canonical_event in renaming.items():
                sources[position[canonical_event]] = original
            group[2].append((answer, sources))
        prepared.trivial = trivial
        prepared.groups = list(groups.values())
        prepared.leftovers = leftovers
        prepared.structure = structure
        self.stats.regrounds += 1
        self._results_total.labels("grounded").inc()

    def _fallback_answers(
        self, leftovers: Dict[GroundTuple, Lineage]
    ) -> List[Answer]:
        """Router tier-4 for answers that did not compile."""
        fresh = {
            answer: self._fresh_lineage(lineage)
            for answer, lineage in leftovers.items()
        }
        self.stats.fallbacks += 1
        self._results_total.labels("fallback").inc()
        with self.tracer.span("fallback", answers=len(fresh)):
            start = time.perf_counter()
            if self.router.exact_fallback:
                ranked = [
                    (answer, float(exact_probability(lineage)))
                    for answer, lineage in fresh.items()
                ]
            else:
                ranked = self.router.monte_carlo.answers_from_lineages(fresh)
            self._stage_seconds.labels("fallback").observe(
                time.perf_counter() - start
            )
        return ranked

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _observe_query(
        self, kind: str, prepared: PreparedQuery, seconds: float
    ) -> None:
        """Record one query's direct evaluation time; log it if slow."""
        self._query_seconds.labels(kind).observe(seconds)
        if seconds > self.slow_query_threshold:
            self._slow_total.inc()
            self.slow_queries.append({
                "shape": prepared.shape,
                "kind": kind,
                "tier": prepared.tier,
                "seconds": seconds,
            })

    def _parse(self, query: QueryLike) -> AnyQuery:
        if isinstance(query, str):
            return parse(query)
        if not isinstance(query, (ConjunctiveQuery, UnionQuery)):
            raise TypeError(
                f"expected query text, ConjunctiveQuery or UnionQuery, "
                f"got {query!r}"
            )
        return query

    def _store(
        self,
        prepared: PreparedQuery,
        snapshot: Tuple[RelationVersion, ...],
        value,
    ) -> None:
        prepared.result = value
        prepared.result_versions = snapshot

    def _weight_row(self, sources: Sequence[TupleKey]) -> List[float]:
        """Live marginals for a circuit's events, in canonical order."""
        start = time.perf_counter()
        probability = self.db.probability
        row = [float(probability(name, row)) for name, row in sources]
        self._stage_seconds.labels("reweight").observe(
            time.perf_counter() - start
        )
        return row

    def _fresh_lineage(self, lineage: Lineage) -> Lineage:
        """The cached clause structure with live marginals."""
        weights = {
            key: float(self.db.probability(key[0], key[1]))
            for key in lineage.events()
        }
        return Lineage(
            lineage.clauses, weights, certainly_true=lineage.certainly_true
        )


def _structure_of(
    snapshot: Tuple[RelationVersion, ...]
) -> Tuple[Tuple[str, int], ...]:
    """The structural part of a version snapshot."""
    return tuple((name, structure) for name, structure, _version in snapshot)
