"""Deterministic fault injection for the serving stack.

Fault tolerance that is only exercised by real crashes is fault
tolerance that rots.  This module is the chaos hook the worker loop
(:func:`repro.serve.pool._worker_main`) consults before handling each
message; it can

* **kill** the worker process hard (``os._exit`` — indistinguishable
  from a ``SIGKILL`` / OOM kill to the supervisor watching the process
  sentinel),
* **stall** it (sleep long enough that front-side deadlines expire —
  models a worker wedged on a lock or a cold page),
* **drop** the reply (the work happens but the result never reaches
  the front — models a lost message / broken pipe),
* run **slow** (a small sleep per message — models CPU contention).

Everything is *seeded*: the decision stream is a
:class:`random.Random` derived from ``(seed, worker_index)``, so a
chaos test replays the exact same fault schedule on every run, and
two workers with the same spec fault independently.

The hook is armed either through
:attr:`repro.serve.pool.SessionConfig.faults` or the ``REPRO_FAULTS``
environment variable (config wins); production deployments leave both
unset and the worker loop skips the hook entirely (``None`` — not a
no-op object — so the steady-state cost is one ``is None`` test).

Spec syntax — comma-separated ``key=value`` pairs::

    "seed=7,kill=0.01"                       # 1% of messages kill the worker
    "seed=7,stall=0.02,stall_ms=500"         # 2% stall for 500ms
    "seed=7,drop=0.01,slow=0.1,slow_ms=20"   # lost replies + jitter

Probabilities are per *request* message (fire-and-forget broadcasts —
updates, syncs, configure — are never faulted: faulting an update
would silently diverge a replica, which is a data bug, not a process
fault, and the supervisor could not detect it).

>>> plan = FaultPlan.parse("seed=7,kill=0.5")
>>> a, b = plan.injector(worker_index=0), plan.injector(worker_index=0)
>>> [a.decide() for _ in range(6)] == [b.decide() for _ in range(6)]
True
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FaultInjector", "FaultPlan", "active_fault_spec", "build_injector",
]

#: Environment switch: set ``REPRO_FAULTS="seed=7,kill=0.01"`` to arm
#: fault injection in every worker of every pool in the process tree.
ENV_VAR = "REPRO_FAULTS"

#: The hard-exit status used by the ``kill`` fault.  Chosen non-zero
#: and distinctive so a post-mortem can tell an injected kill from a
#: genuine crash in worker logs.
KILL_EXIT_STATUS = 137  # == 128 + SIGKILL, what an OOM kill reports


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, picklable fault specification.

    Travels inside :class:`~repro.serve.pool.SessionConfig` to worker
    processes; each worker derives its own :class:`FaultInjector` from
    the plan plus its shard index.
    """

    seed: int = 0
    #: Probability a message hard-kills the worker (``os._exit``).
    kill: float = 0.0
    #: Probability a message stalls for ``stall_ms`` before running.
    stall: float = 0.0
    stall_ms: float = 1000.0
    #: Probability the reply to a message is dropped after computing.
    drop: float = 0.0
    #: Probability a message runs ``slow_ms`` slower than normal.
    slow: float = 0.0
    slow_ms: float = 20.0

    _FIELDS = ("seed", "kill", "stall", "stall_ms", "drop", "slow", "slow_ms")

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"seed=7,kill=0.01,stall=0.02,stall_ms=500"``.

        Unknown keys, malformed numbers and out-of-range probabilities
        are rejected loudly — a typo in a chaos spec must not silently
        run a no-fault experiment.
        """
        values = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, eq, text = token.partition("=")
            name = name.strip()
            if not eq or name not in cls._FIELDS:
                raise ValueError(
                    f"bad fault spec token {token!r}; expected "
                    f"key=value with key in {cls._FIELDS}"
                )
            try:
                value = int(text) if name == "seed" else float(text)
            except ValueError:
                raise ValueError(
                    f"bad fault spec value for {name!r}: {text!r}"
                ) from None
            values[name] = value
        plan = cls(**values)
        for name in ("kill", "stall", "drop", "slow"):
            probability = getattr(plan, name)
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"fault probability {name}={probability} outside [0, 1]"
                )
        for name in ("stall_ms", "slow_ms"):
            if getattr(plan, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")
        return plan

    @property
    def enabled(self) -> bool:
        return any((self.kill, self.stall, self.drop, self.slow))

    def injector(self, worker_index: int) -> "FaultInjector":
        """The per-worker instance with its independent decision stream."""
        return FaultInjector(self, worker_index)

    def spec(self) -> str:
        """The canonical spec string (``parse`` round-trips it)."""
        return ",".join(
            f"{name}={getattr(self, name)}" for name in self._FIELDS
        )


class FaultInjector:
    """The per-worker chaos hook: one seeded decision per message.

    ``before(op)`` is called as a message is dequeued — it may never
    return (kill) or sleep (stall / slow); its return value says
    whether the reply should be suppressed (``"drop"``).  Fire-and-
    forget ops are exempt (see module docstring).
    """

    #: Ops whose loss would corrupt replica state rather than model a
    #: process fault — never faulted.
    EXEMPT_OPS = frozenset({"update", "sync", "configure", "stop"})

    def __init__(self, plan: FaultPlan, worker_index: int) -> None:
        self.plan = plan
        self.worker_index = worker_index
        self._rng = random.Random((plan.seed << 16) ^ (worker_index + 1))
        #: Messages seen / faults fired, for post-mortem assertions.
        self.messages = 0
        self.fired = {"kill": 0, "stall": 0, "drop": 0, "slow": 0}

    def decide(self) -> Optional[str]:
        """The next fault decision, without side effects (testable)."""
        roll = self._rng.random()
        plan = self.plan
        threshold = plan.kill
        if roll < threshold:
            return "kill"
        threshold += plan.stall
        if roll < threshold:
            return "stall"
        threshold += plan.drop
        if roll < threshold:
            return "drop"
        threshold += plan.slow
        if roll < threshold:
            return "slow"
        return None

    def before(self, op: str) -> Optional[str]:
        """Apply the next fault to this message; returns ``"drop"``
        when the caller must suppress its reply."""
        if op in self.EXEMPT_OPS:
            return None
        self.messages += 1
        fault = self.decide()
        if fault is None:
            return None
        self.fired[fault] += 1
        if fault == "kill":
            # os._exit, not sys.exit: no finally blocks, no queue
            # flushing — the front must cope with a worker that
            # vanished mid-everything, exactly like SIGKILL.
            os._exit(KILL_EXIT_STATUS)
        if fault == "stall":
            time.sleep(self.plan.stall_ms / 1000.0)
            return None
        if fault == "slow":
            time.sleep(self.plan.slow_ms / 1000.0)
            return None
        return "drop"


def active_fault_spec(config_spec: Optional[str]) -> Optional[str]:
    """The effective fault spec: config first, environment second."""
    if config_spec:
        return config_spec
    return os.environ.get(ENV_VAR) or None


def build_injector(
    config_spec: Optional[str], worker_index: int
) -> Optional[FaultInjector]:
    """The worker-side entry point: ``None`` when chaos is off."""
    spec = active_fault_spec(config_spec)
    if spec is None:
        return None
    plan = FaultPlan.parse(spec)
    if not plan.enabled:
        return None
    return plan.injector(worker_index)
