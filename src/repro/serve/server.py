"""An asyncio JSON-over-HTTP front for a :class:`ServerPool`.

Zero dependencies beyond the standard library: a minimal HTTP/1.1
parser over :func:`asyncio.start_server`, JSON request and response
bodies, and the pool's blocking calls pushed onto the default executor
so the event loop keeps accepting while workers grind.  Concurrent
handlers therefore land in the pool's batching front together, where
same-shape requests coalesce into shared circuit sweeps.

Routes (all bodies JSON):

=======  ============  =======================================  ==========================================
method   path          request body                             response body
=======  ============  =======================================  ==========================================
POST     /evaluate     ``{"query": "R(x), S(x,y)"}``            ``{"probability": 0.2}``
POST     /answers      ``{"query": "Q(x) :- ...", "top": 3}``   ``{"answers": [{"answer": [...], "probability": p}, ...]}``
POST     /batch        ``{"queries": [...]}``                   ``{"probabilities": [...]}``
POST     /update       ``{"relation": "R", "row": [1],          ``{"ok": true}``
                       "probability": 0.9}``
GET      /stats        —                                        pool + per-worker session counters
                                                                (human summary under ``"text"``)
GET      /healthz      —                                        ``{"ok": ..., "workers": n, "shards":
                                                                [{"shard": i, "alive": ...}, ...]}``
GET      /metrics      —                                        Prometheus text exposition (server +
                                                                pool front + merged worker registries)
=======  ============  =======================================  ==========================================

Malformed requests get ``400`` with ``{"error": ...}``; unknown routes
``404``.  Shutdown is graceful: the listener closes first, in-flight
requests drain, then (optionally) the pool itself is closed.

The synchronous :class:`BackgroundServer` wrapper runs the whole thing
on a daemon thread for tests, examples and notebook use::

    >>> from repro.db.database import ProbabilisticDatabase
    >>> from repro.serve.pool import ServerPool
    >>> db = ProbabilisticDatabase.from_dict({"R": {(1,): 0.5}})
    >>> with BackgroundServer(ServerPool(db, workers=0)) as server:
    ...     import json, urllib.request
    ...     reply = urllib.request.urlopen(urllib.request.Request(
    ...         f"http://127.0.0.1:{server.port}/evaluate",
    ...         data=json.dumps({"query": "R(x)"}).encode(),
    ...         method="POST"))
    ...     json.load(reply)["probability"]
    0.5
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import json
import threading
import time
from typing import Callable, Optional, Tuple, Union

from ..core.parser import QueryParseError
from ..obs.metrics import render_prometheus
from .pool import PoolOverloadError, PoolTimeoutError, ServerPool

__all__ = ["BackgroundServer", "RequestServer", "serve_forever"]

#: Refuse request bodies above this size (a plain-text DoS guard).
MAX_BODY_BYTES = 1 << 20

#: Known routes — the ``path`` label of the HTTP metrics.  Anything
#: else is folded into ``"other"`` so arbitrary request paths cannot
#: mint unbounded label cardinality.
_ROUTES = frozenset({
    "/evaluate", "/answers", "/batch", "/update",
    "/stats", "/healthz", "/metrics",
})

#: Routes exempt from the global in-flight cap: operators must be able
#: to see *into* an overloaded server, and sheds themselves must never
#: block the probes that diagnose them.
_UNSHEDDABLE = frozenset({"/healthz", "/stats", "/metrics"})

#: Deadline request header, milliseconds of budget granted by the
#: client.  Forwarded to the pool as a per-request timeout; expiry
#: returns 504 instead of keeping the client waiting past its budget.
DEADLINE_HEADER = "x-deadline-ms"


class _Raw:
    """A non-JSON response body (e.g. Prometheus text exposition)."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes, content_type: str) -> None:
        self.body = body
        self.content_type = content_type


class _BadRequest(Exception):
    """Client error — reported as HTTP 400 with the message as JSON."""


class _NotFound(Exception):
    """No such route — reported as HTTP 404.

    A dedicated type rather than ``LookupError``: a ``KeyError``
    escaping pool evaluation must surface as a 500, not be mistaken
    for an unknown route.
    """


class RequestServer:
    """The asyncio server component; one instance per listening socket.

    Args:
        pool: the :class:`ServerPool` serving the traffic (any
            ``workers`` setting, including inline ``0``).
        host: interface to bind.
        port: TCP port; ``0`` picks an ephemeral one (read it back
            from :attr:`port` after :meth:`start`).
        access_log: optional callable receiving one line per completed
            request (``METHOD path status duration-ms``); the CLI wires
            this to stdout under ``repro serve --listen ... --verbose``.
        max_inflight: global admission cap — requests arriving while
            this many are already being handled are shed immediately
            with ``503`` + ``Retry-After`` (never queued, sub-
            millisecond), keeping the event loop and executor
            responsive under overload.  ``/healthz``, ``/stats`` and
            ``/metrics`` are exempt so operators can observe an
            overloaded server.  ``None`` disables the cap.
        idle_timeout: seconds a keep-alive connection may sit idle
            between requests before the server closes it, so camping
            clients cannot hold connection slots forever.  ``None``
            waits indefinitely (the pre-existing behaviour).

    HTTP metrics (request counts by route and status, in-flight gauge,
    end-to-end latency histograms) land in ``pool.metrics``, so a
    ``GET /metrics`` scrape sees the server, the pool front and every
    worker in one exposition.

    Use :meth:`start` / :meth:`aclose` from an event loop, or the
    synchronous :class:`BackgroundServer` wrapper.
    """

    def __init__(
        self,
        pool: ServerPool,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        access_log: Optional[Callable[[str], None]] = None,
        max_inflight: Optional[int] = None,
        idle_timeout: Optional[float] = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 0:
            raise ValueError(
                f"max_inflight must be >= 0, got {max_inflight}"
            )
        self.pool = pool
        self.host = host
        self.port = port
        self.access_log = access_log
        self.max_inflight = max_inflight
        self.idle_timeout = idle_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: set = set()
        self._writers: dict = {}
        self._busy: set = set()
        self._closing = False
        #: Cheap admission counter (single event loop thread, no lock);
        #: the gauge below is the observable mirror of it.
        self._inflight = 0
        self._metric_requests = pool.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method, route and status",
            ("method", "path", "status"),
        )
        self._metric_inflight = pool.metrics.gauge(
            "repro_http_inflight_requests",
            "HTTP requests currently being handled",
        )
        self._metric_seconds = pool.metrics.histogram(
            "repro_http_request_seconds",
            "End-to-end HTTP request latency, by route",
            ("path",),
        )
        self._metric_shed = pool.metrics.counter(
            "repro_http_shed_total",
            "HTTP requests shed with 503, by reason",
            ("reason",),
        )
        self._metric_idle_closed = pool.metrics.counter(
            "repro_http_idle_closed_total",
            "Keep-alive connections closed by the idle timeout",
        )

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain and close."""
        await stop.wait()
        await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting; drain busy handlers, wake idle keep-alives.

        A handler parked in ``read`` between keep-alive requests would
        otherwise block shutdown until its client disconnected, so
        idle connections get their transports closed (the pending read
        fails, the handler exits); handlers mid-request finish writing
        their response first and then see :attr:`_closing`.
        """
        if self._server is None:
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        for task, writer in list(self._writers.items()):
            if task not in self._busy:
                writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        self._writers[task] = writer
        try:
            while not self._closing:
                request = await self._read_request(reader)
                if request is None:
                    break
                self._busy.add(task)
                try:
                    method, path, headers, body = request
                    start = time.perf_counter()
                    self._inflight += 1
                    self._metric_inflight.inc()
                    try:
                        status, payload, extra = await self._respond(
                            method, path, headers, body
                        )
                    finally:
                        self._inflight -= 1
                        self._metric_inflight.dec()
                    elapsed = time.perf_counter() - start
                    route = path if path in _ROUTES else "other"
                    self._metric_requests.labels(
                        method, route, str(status)
                    ).inc()
                    self._metric_seconds.labels(route).observe(elapsed)
                    if self.access_log is not None:
                        self.access_log(
                            f"{method} {path} {status} "
                            f"{elapsed * 1000.0:.2f}ms"
                        )
                    keep_alive = (
                        headers.get("connection", "keep-alive").lower()
                        != "close"
                    )
                    await self._write_response(
                        writer, status, payload, keep_alive, extra
                    )
                finally:
                    self._busy.discard(task)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._handlers.discard(task)
            self._writers.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - client vanished
                pass

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, dict, bytes]]:
        try:
            # The idle timeout bounds only the wait for the *next*
            # request head — a camping keep-alive client.  Body bytes
            # (below) follow the head immediately, so they stay on the
            # plain read path.
            if self.idle_timeout is not None:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), self.idle_timeout
                )
            else:
                head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.TimeoutError:
            self._metric_idle_closed.inc()
            return None
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", 0) or 0)
        except ValueError:
            return None  # unparseable framing: close, don't traceback
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _respond(
        self, method: str, path: str, headers: dict, body: bytes
    ) -> Tuple[int, Union[dict, _Raw], Optional[dict]]:
        if (
            self.max_inflight is not None
            and path not in _UNSHEDDABLE
            and self._inflight > self.max_inflight
        ):
            # Shed before any parsing or executor hop: the whole point
            # is that refusing work stays cheap when accepting it
            # would not be.  (_inflight already counts this request.)
            self._metric_shed.labels("max_inflight").inc()
            return (
                503,
                {"error": "server is at its in-flight request limit; "
                          "retry later"},
                {"Retry-After": "1"},
            )
        try:
            timeout = self._deadline(headers)
            return 200, await self._dispatch(method, path, body, timeout), None
        except _BadRequest as error:
            return 400, {"error": str(error)}, None
        except _NotFound:
            return 404, {"error": f"no route {method} {path}"}, None
        except PoolTimeoutError as error:
            return 504, {"error": f"deadline exceeded: {error}"}, None
        except PoolOverloadError as error:
            self._metric_shed.labels("pool_queue").inc()
            return 503, {"error": str(error)}, {"Retry-After": "1"}
        except (QueryParseError, ValueError, TypeError) as error:
            return 400, {"error": str(error)}, None
        except Exception as error:  # noqa: BLE001 - 500, keep serving
            return 500, {"error": f"{type(error).__name__}: {error}"}, None

    @staticmethod
    def _deadline(headers: dict) -> Optional[float]:
        """Per-request timeout (seconds) from the deadline header."""
        raw = headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            millis = float(raw)
        except ValueError:
            raise _BadRequest(
                f"{DEADLINE_HEADER} must be a number of milliseconds, "
                f"got {raw!r}"
            ) from None
        if millis <= 0:
            raise _BadRequest(
                f"{DEADLINE_HEADER} must be positive, got {raw!r}"
            )
        return millis / 1000.0

    async def _dispatch(
        self, method: str, path: str, body: bytes,
        timeout: Optional[float] = None,
    ) -> dict:
        pool = self.pool
        loop = asyncio.get_running_loop()
        if method == "GET":
            if path == "/healthz":
                return await loop.run_in_executor(None, pool.health)
            if path == "/stats":
                stats = await loop.run_in_executor(None, pool.stats)
                payload = dataclasses.asdict(stats)
                payload["combined"] = dataclasses.asdict(stats.combined)
                # "text" is the canonical human-readable key;
                # "describe" survives as an alias for older callers.
                payload["text"] = payload["describe"] = stats.describe()
                return payload
            if path == "/metrics":
                snapshot = await loop.run_in_executor(
                    None, pool.metrics_snapshot
                )
                return _Raw(
                    render_prometheus(snapshot).encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            raise _NotFound(path)
        if method != "POST":
            raise _NotFound(path)
        request = self._json_body(body)
        if path == "/evaluate":
            query = self._field(request, "query", str)
            value = await loop.run_in_executor(
                None, functools.partial(pool.evaluate, query, timeout=timeout)
            )
            return {"probability": value}
        if path == "/answers":
            query = self._field(request, "query", str)
            top = request.get("top")
            if top is not None and (
                isinstance(top, bool) or not isinstance(top, int)
                or top < 0
            ):
                raise _BadRequest(
                    f"top must be a non-negative integer, got {top!r}"
                )
            ranked = await loop.run_in_executor(
                None,
                functools.partial(pool.answers, query, top, timeout=timeout),
            )
            return {
                "answers": [
                    {"answer": list(answer), "probability": probability}
                    for answer, probability in ranked
                ]
            }
        if path == "/batch":
            queries = self._field(request, "queries", list)
            if not all(isinstance(text, str) for text in queries):
                raise _BadRequest("queries must be an array of strings")
            values = await loop.run_in_executor(
                None,
                functools.partial(
                    pool.evaluate_many, queries, timeout=timeout
                ),
            )
            return {"probabilities": values}
        if path == "/update":
            relation = self._field(request, "relation", str)
            row = self._field(request, "row", list)
            probability = request.get("probability")
            if isinstance(probability, bool) or not isinstance(
                probability, (int, float)
            ):
                raise _BadRequest(
                    f"probability must be a number, got {probability!r}"
                )
            await loop.run_in_executor(
                None, pool.update, relation, tuple(row), probability
            )
            return {"ok": True}
        raise _NotFound(path)

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            request = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _BadRequest(f"request body is not valid JSON: {error}")
        if not isinstance(request, dict):
            raise _BadRequest(
                f"request body must be a JSON object, "
                f"got {type(request).__name__}"
            )
        return request

    @staticmethod
    def _field(request: dict, name: str, kind: type):
        value = request.get(name)
        if not isinstance(value, kind) or isinstance(value, bool):
            raise _BadRequest(
                f"field {name!r} must be a {kind.__name__}, got {value!r}"
            )
        return value

    async def _write_response(
        self,
        writer,
        status: int,
        payload: Union[dict, _Raw],
        keep_alive: bool,
        extra_headers: Optional[dict] = None,
    ) -> None:
        text = {200: "OK", 400: "Bad Request", 404: "Not Found",
                500: "Internal Server Error",
                503: "Service Unavailable",
                504: "Gateway Timeout"}.get(status, "OK")
        if isinstance(payload, _Raw):
            body = payload.body
            content_type = payload.content_type
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
            content_type = "application/json"
        connection = "keep-alive" if keep_alive else "close"
        extras = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {text}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extras}"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def _announce(message: str) -> None:
    # Flush so the address line reaches pipes (tests, process managers)
    # immediately, not at exit.
    print(message, flush=True)


def serve_forever(
    pool: ServerPool,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    announce=_announce,
    access_log: Optional[Callable[[str], None]] = None,
    max_inflight: Optional[int] = None,
    idle_timeout: Optional[float] = None,
) -> None:
    """Run the HTTP server until SIGINT/SIGTERM; used by the CLI.

    Blocks the calling thread inside an event loop.  On signal, stops
    accepting, drains in-flight requests, then closes ``pool``
    gracefully (workers finish their queues before exiting).
    ``access_log`` (one line per completed request) enables the
    CLI's ``--verbose`` mode.
    """

    async def _run() -> None:
        import signal

        server = RequestServer(
            pool, host, port, access_log=access_log,
            max_inflight=max_inflight, idle_timeout=idle_timeout,
        )
        await server.start()
        announce(f"serving on http://{server.host}:{server.port} "
                 f"({pool.workers} workers; Ctrl-C to stop)")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await server.serve_until(stop)

    try:
        asyncio.run(_run())
    finally:
        pool.close()
        announce("server stopped")


class BackgroundServer:
    """Run a :class:`RequestServer` on a daemon thread.

    The synchronous face of the server for tests, examples and
    interactive use: construction returns once the socket is bound
    (read the ephemeral port from :attr:`port`), and :meth:`stop` —
    or leaving the ``with`` block — drains handlers, stops the loop
    and closes the pool.
    """

    def __init__(
        self,
        pool: ServerPool,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        access_log: Optional[Callable[[str], None]] = None,
        max_inflight: Optional[int] = None,
        idle_timeout: Optional[float] = None,
    ) -> None:
        self.pool = pool
        self.server = RequestServer(
            pool, host, port, access_log=access_log,
            max_inflight=max_inflight, idle_timeout=idle_timeout,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-http-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("HTTP server failed to start within 30s")
        if self._error is not None:
            raise self._error

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def _run(self) -> None:
        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except OSError as error:
                self._error = error
                return
            finally:
                self._ready.set()
            await self.server.serve_until(self._stop)

        asyncio.run(_main())

    def stop(self) -> None:
        """Graceful shutdown: drain handlers, stop the loop, close the pool."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        self._loop = None
        self.pool.close()

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
