"""Shared-memory transport and worker-side cache for lineage scatter.

:meth:`ServerPool.estimate_lineages <repro.serve.pool.ServerPool.estimate_lineages>`
ships :class:`~repro.lineage.packed.PackedLineage` flat buffers to
worker processes.  Pickling those arrays through a
``multiprocessing.Queue`` copies every byte twice (serialize +
deserialize) through a pipe; this module instead packs all arrays of
one message into a single ``multiprocessing.shared_memory`` segment —
the queue then carries only the segment name and a list of
``(offset, dtype, shape)`` specs, and the worker reads the arrays
straight out of the mapping.

* :func:`pack_arrays` (front side) returns a transport payload plus
  the segment handle to unlink once the reply arrives.  When shared
  memory is unavailable (or the caller forces it) the payload degrades
  to the arrays themselves — the **pickle fallback** — with identical
  semantics.
* :func:`unpack_arrays` (worker side) reconstructs the arrays.  It
  always copies out of the segment so the mapping can be closed
  immediately, and it detaches the segment from the worker's resource
  tracker: CPython registers *every* attach for cleanup, and a tracked
  attach-only segment would be unlinked a second time (with a warning)
  when the worker exits.

:class:`ScatterCache` is the worker-side LRU keyed by the lineage's
structural hash: repeated spikes on the same unsafe query re-use the
worker's packed copy, so the steady state ships no structure at all
(and a probability-only drift ships one weights vector).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised by whichever env runs the suite
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..lineage.packed import PackedLineage

__all__ = [
    "ScatterCache",
    "pack_arrays",
    "unpack_arrays",
]

#: Transport tags carried in the payload tuple.
SHM = "shm"
PICKLE = "pickle"


def pack_arrays(
    arrays: Sequence["np.ndarray"], transport: str = "auto"
) -> Tuple[tuple, Optional[object]]:
    """Bundle ``arrays`` for one worker message.

    Returns ``(payload, segment)``: the queue-safe payload and the
    shared-memory handle the *caller* must ``close()`` + ``unlink()``
    once the worker has replied (``None`` under the pickle fallback).
    ``transport`` forces a path: ``"shm"``, ``"pickle"``, or ``"auto"``
    (shared memory when available, pickle otherwise).
    """
    if transport not in ("auto", SHM, PICKLE):
        raise ValueError(f"unknown scatter transport {transport!r}")
    if transport != PICKLE and arrays:
        try:
            return _pack_shm(arrays)
        except Exception:
            if transport == SHM:
                raise
            # "auto": /dev/shm may be missing or full — fall through.
    return (PICKLE, [np.ascontiguousarray(a) for a in arrays]), None


def _pack_shm(arrays: Sequence["np.ndarray"]) -> Tuple[tuple, object]:
    from multiprocessing import shared_memory

    specs: List[Tuple[int, str, tuple]] = []
    offset = 0
    contiguous = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        contiguous.append(array)
        # 64-byte alignment keeps every view's dtype alignment valid.
        offset = (offset + 63) & ~63
        specs.append((offset, array.dtype.str, array.shape))
        offset += array.nbytes
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for array, (start, _dtype, _shape) in zip(contiguous, specs):
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=start
        )
        view[...] = array
        del view  # views into segment.buf block segment.close()
    return (SHM, segment.name, specs), segment


def release_segment(segment) -> None:
    """Close + unlink the front's shm handle, tolerating early cleanup."""
    if segment is None:
        return
    try:
        segment.close()
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def unpack_arrays(payload: tuple) -> List["np.ndarray"]:
    """Worker-side inverse of :func:`pack_arrays` (always copies)."""
    tag = payload[0]
    if tag == PICKLE:
        return list(payload[1])
    if tag != SHM:
        raise ValueError(f"unknown scatter transport payload {tag!r}")
    _tag, name, specs = payload
    segment = _attach_untracked(name)
    try:
        return [
            np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
            ).copy()
            for offset, dtype, shape in specs
        ]
    finally:
        segment.close()


def _attach_untracked(name: str):
    """Attach to an existing segment without taking ownership.

    The creating (front) process owns the segment's lifetime.  On
    CPython >= 3.13 ``track=False`` expresses that directly; older
    versions register every attach with the resource tracker — which
    pool workers *share* with the front (spawn hands the tracker down),
    so the duplicate registration collapses in the tracker's name set
    and the front's unlink still deregisters exactly once.  Explicitly
    unregistering here would double-remove and make the front's
    cleanup whine, so we deliberately leave the tracked attach alone.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - python < 3.13
        return shared_memory.SharedMemory(name=name)


class _CacheEntry:
    __slots__ = ("weight_hash", "packed")

    def __init__(self, weight_hash: str, packed: PackedLineage) -> None:
        self.weight_hash = weight_hash
        self.packed = packed


class ScatterCache:
    """Worker-side LRU of packed lineages, keyed by structural hash.

    One entry per clause *structure*; the entry remembers which weight
    vector it currently carries (``weight_hash``) so the front can ship
    a bare ``(shape, weights)`` refresh — :meth:`reweight` swaps the
    marginals in place — or, when both hashes match, nothing at all.
    Hashes always come from the front's *current* lineage, so a stale
    entry can never be served: a mismatch is a miss, answered by the
    front re-shipping full buffers.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, shape_hash: str, weight_hash: str,
        weights: Optional["np.ndarray"] = None,
    ) -> Optional[PackedLineage]:
        """The cached packed lineage for ``shape_hash``, or ``None``.

        With ``weights`` given, a structure hit whose weight hash
        differs is refreshed in place (the reweight path); without
        them, any mismatch is a miss.
        """
        entry = self._entries.get(shape_hash)
        if entry is None:
            self.misses += 1
            return None
        if entry.weight_hash != weight_hash:
            if weights is None:
                self.misses += 1
                return None
            entry.packed.reweight(weights)
            entry.weight_hash = weight_hash
        self._entries.move_to_end(shape_hash)
        self.hits += 1
        return entry.packed

    def put(
        self, shape_hash: str, weight_hash: str, packed: PackedLineage
    ) -> None:
        if self.capacity == 0:
            return
        self._entries[shape_hash] = _CacheEntry(weight_hash, packed)
        self._entries.move_to_end(shape_hash)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
