"""Query-session serving layer: cross-query caching over mutable data.

See :mod:`repro.serve.session` for the architecture.  Quickstart::

    from repro.db.io import load_database
    from repro.serve import QuerySession

    session = QuerySession(load_database("data.json"))
    session.evaluate("R(x), S(x,y)")          # cold: classify + plan
    session.evaluate("R(x), S(x,y)")          # pure result-cache hit
    session.update("R", (1,), 0.9)            # probability-only change
    session.evaluate("R(x), S(x,y)")          # re-weighted, not re-planned
    print(session.stats.describe())
"""

from .session import PreparedQuery, QuerySession, SessionStats

__all__ = ["PreparedQuery", "QuerySession", "SessionStats"]
