"""The serving subsystem: sessions, the sharded pool, the HTTP front.

Three layers, each built on the previous (full tour in
``docs/ARCHITECTURE.md``):

* :class:`QuerySession` — one long-lived session over one mutable
  database: prepared queries, precise invalidation, batched circuit
  sweeps (:mod:`repro.serve.session`);
* :class:`ServerPool` — sessions sharded across worker processes by
  canonical query shape, with a request-coalescing front and database
  version broadcast (:mod:`repro.serve.pool`);
* :class:`RequestServer` / :func:`serve_forever` — the asyncio
  JSON-over-HTTP server the CLI exposes as ``repro serve --listen``
  (:mod:`repro.serve.server`).

Quickstart (in-process session)::

    >>> from repro.db.database import ProbabilisticDatabase
    >>> from repro.serve import QuerySession
    >>> db = ProbabilisticDatabase.from_dict(
    ...     {"R": {(1,): 0.5}, "S": {(1, 2): 0.4}})
    >>> session = QuerySession(db)
    >>> round(session.evaluate("R(x), S(x,y)"), 6)   # cold: classify + plan
    0.2
    >>> session.update("R", (1,), 0.9)               # probability-only change
    >>> round(session.evaluate("R(x), S(x,y)"), 6)   # re-weighted, not re-planned
    0.36
"""

from .faults import FaultInjector, FaultPlan
from .pool import (
    PoolOverloadError,
    PoolStats,
    PoolTimeoutError,
    ServerPool,
    SessionConfig,
    WorkerDiedError,
    WorkerError,
    shard_of,
)
from .server import BackgroundServer, RequestServer, serve_forever
from .session import PreparedQuery, QuerySession, SessionStats
from .transfer import ScatterCache

__all__ = [
    "BackgroundServer",
    "FaultInjector",
    "FaultPlan",
    "PoolOverloadError",
    "PoolStats",
    "PoolTimeoutError",
    "PreparedQuery",
    "QuerySession",
    "RequestServer",
    "ScatterCache",
    "ServerPool",
    "SessionConfig",
    "SessionStats",
    "WorkerDiedError",
    "WorkerError",
    "serve_forever",
    "shard_of",
]
