"""The dichotomy classifier (Theorem 1.8).

Given a Boolean conjunctive query, decide PTIME vs #P-complete by the
paper's pipeline:

1. **Hierarchy** — minimize, test Definition 1.2; non-hierarchical
   queries are #P-hard (Theorem 1.4).
2. **Inversions** — build a strict coverage (refined on demand) and
   search the unification graph (Definition 2.6); no inversion means
   PTIME (Theorem 1.6).
3. **Erasers** — close the factors under hierarchical joins
   (Section 2.6); every inversion-carrying join needs an eraser
   (Definition 2.21).  All erased: PTIME (Theorem 3.17); otherwise
   #P-hard (Theorem 4.4).

Every verdict carries a machine-checkable witness: the crossing
variable pair, the inversion path, or the eraser-free join query.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..core.hierarchy import (
    NonHierarchicalWitness,
    find_non_hierarchical_witness,
)
from ..core.homomorphism import minimize
from ..core.query import ConjunctiveQuery
from ..core.union import AnyQuery, UnionQuery, minimize_ucq_in_dnf
from ..coverage.closure import (
    HierarchicalUnifier,
    hierarchical_closure,
    hierarchical_unifiers_of_pair,
)
from ..coverage.coverage import Coverage, build_strict_coverage
from ..coverage.erasers import find_eraser, psi_from_covers
from .inversions import (
    Inversion,
    analyze_inversions,
    find_inversion,
    has_inversion,
)


class Verdict(enum.Enum):
    """The two sides of the dichotomy."""

    PTIME = "PTIME"
    SHARP_P_HARD = "#P-hard"


class Reason(enum.Enum):
    """Which theorem produced the verdict."""

    UNSATISFIABLE = "unsatisfiable predicates (probability is 0)"
    NON_HIERARCHICAL = "non-hierarchical (Theorem 1.4)"
    NO_SELF_JOIN = "hierarchical without self-joins (Theorem 1.3)"
    INVERSION_FREE = "hierarchical and inversion-free (Theorem 1.6)"
    ERASABLE = "all inversions have erasers (Theorem 3.17)"
    ERASER_FREE_INVERSION = "inversion without eraser (Theorem 4.4)"
    UCQ_SAFE = "union fully decomposes by the lifted rules (PTIME)"
    UCQ_UNSAFE = (
        "union has no safe decomposition (#P-hard by the UCQ dichotomy)"
    )


@dataclass
class Classification:
    """Full output of the dichotomy decision."""

    query: AnyQuery
    minimized: AnyQuery
    verdict: Verdict
    reason: Reason
    hierarchy_witness: Optional[NonHierarchicalWitness] = None
    inversion: Optional[Inversion] = None
    coverage: Optional[Coverage] = None
    #: For HARD-by-eraser verdicts: the join query lacking an eraser.
    hard_join: Optional[ConjunctiveQuery] = None
    #: For PTIME-by-eraser verdicts: (join query, eraser members).
    erased_joins: List[Tuple[ConjunctiveQuery, Tuple[ConjunctiveQuery, ...]]] = field(
        default_factory=list
    )
    #: Set when the hierarchical closure hit its size cap: a HARD
    #: verdict may then be due to a missing eraser candidate.
    closure_truncated: bool = False
    #: For HARD union verdicts: the sub-query on which the lifted
    #: decomposition got stuck.
    stuck_on: Optional[str] = None

    @property
    def is_safe(self) -> bool:
        return self.verdict is Verdict.PTIME

    def describe(self) -> str:
        lines = [f"query: {self.query}", f"verdict: {self.verdict.value}",
                 f"reason: {self.reason.value}"]
        if self.hierarchy_witness is not None:
            lines.append("witness: " + self.hierarchy_witness.describe(self.minimized))
        if self.inversion is not None and self.verdict is Verdict.SHARP_P_HARD:
            lines.append("inversion: " + self.inversion.describe())
        if self.hard_join is not None:
            lines.append(f"eraser-free join: {self.hard_join}")
        for join, eraser in self.erased_joins:
            members = "; ".join(str(e) for e in eraser)
            lines.append(f"erased join: {join}  by  {members}")
        if self.stuck_on:
            lines.append(f"stuck on: {self.stuck_on}")
        return "\n".join(lines)


def classify(query: AnyQuery) -> Classification:
    """Decide the evaluation complexity of ``query`` (Theorem 1.8).

    Negated sub-goals are handled per Definition 3.9: the analysis runs
    on the positive part.  A :class:`~repro.core.union.UnionQuery` is
    DNF-minimized first — a union that collapses to one disjunct gets
    the full CQ pipeline (hierarchy, inversions, erasers); a genuine
    multi-disjunct union is decided by running the lifted decomposition
    symbolically (the executable side of the UCQ dichotomy), and a HARD
    verdict records the sub-query it got stuck on.
    """
    if isinstance(query, UnionQuery):
        return _classify_union(query)
    positive = query.positive_part()
    if not positive.is_satisfiable():
        return Classification(
            query=query,
            minimized=positive,
            verdict=Verdict.PTIME,
            reason=Reason.UNSATISFIABLE,
        )
    minimized = minimize(positive)

    witness = find_non_hierarchical_witness(minimized)
    if witness is not None:
        return Classification(
            query=query,
            minimized=minimized,
            verdict=Verdict.SHARP_P_HARD,
            reason=Reason.NON_HIERARCHICAL,
            hierarchy_witness=witness,
        )

    if not minimized.has_self_join():
        return Classification(
            query=query,
            minimized=minimized,
            verdict=Verdict.PTIME,
            reason=Reason.NO_SELF_JOIN,
        )

    # Fast path: an inversion-free strict coverage certifies PTIME
    # (Definition 2.6 asks for *one* inversion-free coverage).
    base_coverage = build_strict_coverage(minimized)
    if find_inversion(base_coverage) is None:
        return Classification(
            query=query,
            minimized=minimized,
            verdict=Verdict.PTIME,
            reason=Reason.INVERSION_FREE,
            coverage=base_coverage,
        )

    # Refinement path: splitting undetermined pairs on the inversion
    # path may reveal the inversion as spurious (Figure 1's examples).
    refined_coverage, inversion = analyze_inversions(minimized)
    if inversion is None:
        return Classification(
            query=query,
            minimized=minimized,
            verdict=Verdict.PTIME,
            reason=Reason.INVERSION_FREE,
            coverage=refined_coverage,
        )

    # Eraser phase runs on the lean base coverage (Section 4 applies to
    # any strict coverage; the lean one keeps H small).
    return _eraser_phase(query, minimized, base_coverage, inversion)


def _classify_union(query: UnionQuery) -> Classification:
    """The union side of :func:`classify`."""
    boolean = query.boolean()
    disjuncts = minimize_ucq_in_dnf(list(boolean.disjuncts))
    if not disjuncts:
        return Classification(
            query=query,
            minimized=boolean,
            verdict=Verdict.PTIME,
            reason=Reason.UNSATISFIABLE,
        )
    if len(disjuncts) == 1:
        # Redundancy pruning left a single CQ: the full CQ pipeline
        # (with its richer witnesses) applies.
        return replace(classify(disjuncts[0]), query=query)
    minimized = UnionQuery(disjuncts)
    from ..engines.lifted import is_safe_query  # lazy: avoid module cycle

    report = is_safe_query(minimized)
    if report.safe:
        return Classification(
            query=query,
            minimized=minimized,
            verdict=Verdict.PTIME,
            reason=Reason.UCQ_SAFE,
        )
    return Classification(
        query=query,
        minimized=minimized,
        verdict=Verdict.SHARP_P_HARD,
        reason=Reason.UCQ_UNSAFE,
        stuck_on=report.stuck_on,
    )


#: Guard for the exponential signature enumeration of the eraser check.
MAX_HSTAR = 16


def _eraser_phase(
    query: ConjunctiveQuery,
    minimized: ConjunctiveQuery,
    coverage: Coverage,
    inversion: Inversion,
) -> Classification:
    inversion_cache: dict = {}

    def cached_has_inversion(candidate: ConjunctiveQuery) -> bool:
        from ..core.query import canonical_string

        key = canonical_string(candidate)
        if key not in inversion_cache:
            inversion_cache[key] = has_inversion(candidate)
        return inversion_cache[key]

    inversion_free = lambda h: not cached_has_inversion(h)  # noqa: E731
    closure, hstar, truncated = hierarchical_closure(
        coverage.factors, is_inversion_free=inversion_free
    )
    if truncated:
        # The full closure is intractable here; fall back to one join
        # level.  Eraser candidates may be missing, so a HARD verdict is
        # flagged as truncated.
        closure, hstar, _ = hierarchical_closure(
            coverage.factors, is_inversion_free=inversion_free, max_levels=1
        )
    psi = psi_from_covers(coverage.cover_factors, closure, hstar)
    erased: List[Tuple[ConjunctiveQuery, Tuple[ConjunctiveQuery, ...]]] = []
    seen_joins: set = set()
    for i in range(len(hstar)):
        for j in range(i, len(hstar)):
            qi = closure[hstar[i]].query
            qj = closure[hstar[j]].query
            for joined in _all_joins(qi, qj):
                if not _needs_eraser(joined, cached_has_inversion):
                    continue
                from ..core.query import canonical_string

                key = (i, j, canonical_string(joined))
                if key in seen_joins:
                    continue
                seen_joins.add(key)
                eraser = find_eraser(joined, i, j, closure, hstar, psi)
                if eraser is None:
                    return Classification(
                        query=query,
                        minimized=minimized,
                        verdict=Verdict.SHARP_P_HARD,
                        reason=Reason.ERASER_FREE_INVERSION,
                        inversion=inversion,
                        coverage=coverage,
                        hard_join=joined,
                        closure_truncated=truncated,
                    )
                erased.append(
                    (joined, tuple(closure[hstar[e]].query for e in eraser))
                )
    return Classification(
        query=query,
        minimized=minimized,
        verdict=Verdict.PTIME,
        reason=Reason.ERASABLE,
        inversion=inversion,
        coverage=coverage,
        erased_joins=erased,
    )


def _all_joins(
    qi: ConjunctiveQuery, qj: ConjunctiveQuery
) -> List[ConjunctiveQuery]:
    """Join queries of every sub-goal unification between two factors.

    Both the *full* MGU joins (whose failure to stay hierarchical is
    what drives hardness, e.g. for ``H_0``) and the *hierarchical*
    joins of Definition 2.16 (whose inversions need erasers, e.g.
    Example 3.13's ``f12``) are produced.
    """
    from ..core.unification import all_unifications

    renamed, _ = qj.rename_apart(qi.variables, suffix="_e")
    joins: List[ConjunctiveQuery] = []
    for unification in all_unifications(qi, renamed):
        joins.append(unification.unified)
    joins.extend(hierarchical_unifiers_of_pair(qi, qj))
    return joins


def _needs_eraser(
    joined: ConjunctiveQuery, cached_has_inversion
) -> bool:
    """A join query needs an eraser unless the PTIME machinery can
    compute it directly: hierarchical and inversion-free."""
    from ..core.hierarchy import is_hierarchical

    core = minimize(joined)
    if not core.is_satisfiable():
        return False
    if not is_hierarchical(core):
        return True
    return cached_has_inversion(core)


def classify_with_coverage(
    query: ConjunctiveQuery,
    covers,
) -> Classification:
    """Classify using a caller-supplied strict coverage.

    The automatic coverage construction can explode on constant-heavy
    queries (it mechanically splits every variable–constant pair); the
    paper itself analyzes such queries with small hand-built coverages
    (Example 3.13 uses four factors).  This entry point accepts the
    covers — conjunctive queries whose disjunction is equivalent to
    ``query`` — exactly as the paper writes them, and runs the
    inversion + eraser phases on them.  The caller is responsible for
    the coverage being valid and strict.
    """
    from ..coverage.coverage import _assemble  # friend access

    minimized = minimize(query.positive_part())
    coverage = _assemble(minimized, list(covers))
    inversion = find_inversion(coverage)
    if inversion is None:
        return Classification(
            query=query,
            minimized=minimized,
            verdict=Verdict.PTIME,
            reason=Reason.INVERSION_FREE,
            coverage=coverage,
        )
    return _eraser_phase(query, minimized, coverage, inversion)


def is_ptime(query: AnyQuery) -> bool:
    """Shorthand: True iff the dichotomy puts ``query`` in PTIME."""
    return classify(query).is_safe
