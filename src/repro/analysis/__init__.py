"""Dichotomy analysis: inversions and the PTIME/#P classifier."""

from .classifier import (
    Classification,
    Reason,
    Verdict,
    classify,
    classify_with_coverage,
    is_ptime,
)
from .counting import count_satisfying_substructures, uniform_database
from .properties import (
    Prop,
    conj,
    disj,
    holds,
    is_inversion_free_property,
    neg,
    property_probability,
)
from .inversions import (
    Inversion,
    analyze_inversions,
    find_inversion,
    has_inversion,
    unification_graph,
)

__all__ = [
    "Prop",
    "classify_with_coverage",
    "conj",
    "count_satisfying_substructures",
    "disj",
    "holds",
    "is_inversion_free_property",
    "neg",
    "property_probability",
    "uniform_database",
    "Classification",
    "Inversion",
    "Reason",
    "Verdict",
    "analyze_inversions",
    "classify",
    "find_inversion",
    "has_inversion",
    "is_ptime",
    "unification_graph",
]
