"""Inversion detection (Section 2.2).

Given a strict coverage with factors ``F``, build the undirected
*unification graph* ``G``: nodes are triples ``(f, x, y)`` with
``x, y`` distinct variables of factor ``f``; an edge joins
``(f, x, y)`` and ``(f', x', y')`` when some sub-goals ``g ∈ f``,
``g' ∈ f'`` (factors renamed apart, the paper's convention) have an
admissible MGU ``θ`` with ``θ(x) = θ(x')`` and ``θ(y) = θ(y')``.

An *inversion* is a unification path from a node with ``x ⊐ y`` to a
node with ``x' ⊏ y'``.  A query is inversion-free when some strict
coverage has no inversion; by Proposition 2.7 refining a coverage never
creates inversions that the canonical coverage lacks, so the classifier
refines until the verdict is stable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.hierarchy import strictly_below
from ..core.query import ConjunctiveQuery
from ..core.terms import Variable
from ..coverage.coverage import Coverage, build_strict_coverage, factor_unifications

#: A node of the unification graph: (factor index, x, y).
Node = Tuple[int, Variable, Variable]


@dataclass(frozen=True)
class Inversion:
    """A witnessing unification path for an inversion.

    The first node has ``x ⊐ y``, the last ``x' ⊏ y'``.
    """

    path: Tuple[Node, ...]
    coverage: Coverage

    @property
    def length(self) -> int:
        """The paper's ``k``: number of edges on the path minus one."""
        return max(len(self.path) - 2, 0)

    def describe(self) -> str:
        parts = []
        for factor_index, x, y in self.path:
            factor = self.coverage.factors[factor_index]
            parts.append(f"(f{factor_index}: {factor} | {x},{y})")
        return " -> ".join(parts)


def unification_graph(coverage: Coverage) -> Dict[Node, Set[Node]]:
    """Adjacency sets of the unification graph of a coverage."""
    graph: Dict[Node, Set[Node]] = {}
    for i, factor in enumerate(coverage.factors):
        variables = factor.variables
        for x in variables:
            for y in variables:
                if x != y:
                    graph.setdefault((i, x, y), set())

    for i, j, unification in factor_unifications(coverage):
        left_vars = unification.left.variables
        right_renamed = unification.right
        # Map renamed right variables back to the original factor's names.
        original_right = coverage.factors[j]
        back = dict(zip(right_renamed.variables, original_right.variables))
        theta = unification.substitution
        images_left = {v: theta.apply(v) for v in left_vars}
        images_right = {v: theta.apply(v) for v in right_renamed.variables}
        for x in left_vars:
            for y in left_vars:
                if x == y:
                    continue
                for xr in right_renamed.variables:
                    for yr in right_renamed.variables:
                        if xr == yr:
                            continue
                        if (
                            images_left[x] == images_right[xr]
                            and images_left[y] == images_right[yr]
                        ):
                            a: Node = (i, x, y)
                            b: Node = (j, back[xr], back[yr])
                            graph.setdefault(a, set()).add(b)
                            graph.setdefault(b, set()).add(a)
    return graph


def find_inversion(coverage: Coverage) -> Optional[Inversion]:
    """Search the unification graph for an inversion path (BFS)."""
    graph = unification_graph(coverage)
    down_nodes: List[Node] = []
    up_nodes: Set[Node] = set()
    for node in graph:
        factor_index, x, y = node
        factor = coverage.factors[factor_index]
        if strictly_below(factor, y, x):  # x ⊐ y
            down_nodes.append(node)
        elif strictly_below(factor, x, y):  # x ⊏ y
            up_nodes.add(node)

    for start in down_nodes:
        parent: Dict[Node, Optional[Node]] = {start: None}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            if node in up_nodes:
                path: List[Node] = []
                cursor: Optional[Node] = node
                while cursor is not None:
                    path.append(cursor)
                    cursor = parent[cursor]
                path.reverse()
                return Inversion(path=tuple(path), coverage=coverage)
            for neighbour in graph.get(node, ()):
                if neighbour not in parent:
                    parent[neighbour] = node
                    queue.append(neighbour)
    return None


def analyze_inversions(
    query: ConjunctiveQuery,
    max_rounds: int = 16,
) -> Tuple[Coverage, Optional[Inversion]]:
    """Build a strict coverage and decide whether an inversion persists.

    When an inversion is found through a node whose variable pair is
    not yet order-determined by its factor's predicates, that pair is
    split (moving the coverage toward the canonical one) and the
    search repeats; an inversion whose path survives full determination
    is genuine.
    """
    extra: List[Tuple[ConjunctiveQuery, Variable, Variable]] = []
    for _ in range(max_rounds):
        coverage = build_strict_coverage(query, extra_split_pairs=extra)
        inversion = find_inversion(coverage)
        if inversion is None:
            return coverage, None
        pair = _undetermined_node(inversion)
        if pair is None:
            return coverage, inversion
        extra.append(pair)
    return coverage, inversion  # pragma: no cover - bounded refinement


def has_inversion(query: ConjunctiveQuery) -> bool:
    """True when no (reachable) strict coverage of ``query`` is
    inversion-free."""
    _coverage, inversion = analyze_inversions(query)
    return inversion is not None


def _undetermined_node(
    inversion: Inversion,
) -> Optional[Tuple[ConjunctiveQuery, Variable, Variable]]:
    from ..core.predicates import Comparison

    for factor_index, x, y in inversion.path:
        factor = inversion.coverage.factors[factor_index]
        if not _cooccur_in_atom(factor, x, y):
            continue
        constraints = factor.order_constraints
        determined = any(
            constraints.entails(pred)
            for pred in (
                Comparison("<", x, y),
                Comparison("=", x, y),
                Comparison("<", y, x),
            )
        )
        if not determined:
            return (factor, x, y)
    return None


def _cooccur_in_atom(factor: ConjunctiveQuery, x: Variable, y: Variable) -> bool:
    for atom in factor.atoms:
        variables = set(atom.variables)
        if x in variables and y in variables:
            return True
    return False
