"""Boolean combinations of conjunctive queries (Theorem 3.11).

Definition 3.10 calls a property *inversion-free* when it is a Boolean
combination of queries ``q_1..q_m`` whose conjunction ``q_1 q_2 ... q_m``
is inversion-free; Theorem 3.11 puts such properties in PTIME.  This
module implements the reduction the proof sketches: expand the Boolean
structure by inclusion–exclusion into probabilities of *conjunctions of
positive CQs* (each a single CQ after renaming apart), and evaluate
those with any engine — the lifted engine for the PTIME path, the
lineage oracle for ground truth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..core.query import ConjunctiveQuery
from ..db.database import ProbabilisticDatabase
from ..engines.base import Engine
from ..engines.lineage_engine import LineageEngine


@dataclass(frozen=True)
class Prop:
    """A node of a Boolean property over CQ leaves.

    ``kind`` is one of ``"cq"``, ``"not"``, ``"and"``, ``"or"``.
    Build with the module helpers :func:`holds`, :func:`neg`,
    :func:`conj`, :func:`disj`.
    """

    kind: str
    query: Optional[ConjunctiveQuery] = None
    children: Tuple["Prop", ...] = ()

    def leaves(self) -> List[ConjunctiveQuery]:
        """Distinct CQ leaves, in first-seen order."""
        seen: Dict[ConjunctiveQuery, None] = {}
        self._collect(seen)
        return list(seen)

    def _collect(self, seen: Dict[ConjunctiveQuery, None]) -> None:
        if self.kind == "cq":
            assert self.query is not None
            seen.setdefault(self.query, None)
        for child in self.children:
            child._collect(seen)

    def evaluate(self, truth: Dict[ConjunctiveQuery, bool]) -> bool:
        """Truth value under an assignment of the leaves."""
        if self.kind == "cq":
            assert self.query is not None
            return truth[self.query]
        if self.kind == "not":
            return not self.children[0].evaluate(truth)
        if self.kind == "and":
            return all(child.evaluate(truth) for child in self.children)
        return any(child.evaluate(truth) for child in self.children)

    def __str__(self) -> str:
        if self.kind == "cq":
            return f"[{self.query}]"
        if self.kind == "not":
            return f"not {self.children[0]}"
        joiner = " and " if self.kind == "and" else " or "
        return "(" + joiner.join(str(c) for c in self.children) + ")"


def holds(query: ConjunctiveQuery) -> Prop:
    """Leaf: the query is true."""
    return Prop("cq", query=query)


def neg(prop: Union[Prop, ConjunctiveQuery]) -> Prop:
    return Prop("not", children=(_coerce(prop),))


def conj(*props: Union[Prop, ConjunctiveQuery]) -> Prop:
    return Prop("and", children=tuple(_coerce(p) for p in props))


def disj(*props: Union[Prop, ConjunctiveQuery]) -> Prop:
    return Prop("or", children=tuple(_coerce(p) for p in props))


def _coerce(item: Union[Prop, ConjunctiveQuery]) -> Prop:
    return item if isinstance(item, Prop) else holds(item)


def is_inversion_free_property(prop: Prop) -> bool:
    """Definition 3.10: the conjunction of all leaves is inversion-free.

    (Checked on positive parts, per Definition 3.9.)
    """
    from ..core.hierarchy import is_hierarchical
    from ..core.homomorphism import minimize
    from .inversions import has_inversion

    leaves = prop.leaves()
    if not leaves:
        return True
    conjunction = _conjoin_all(leaves).positive_part()
    core = minimize(conjunction)
    return is_hierarchical(core) and not has_inversion(core)


def property_probability(
    prop: Prop,
    db: ProbabilisticDatabase,
    engine: Optional[Engine] = None,
) -> float:
    """Exact probability of a Boolean property of CQs.

    Expands by inclusion–exclusion into conjunction probabilities:
    for leaves ``Q_1..Q_k``, ``P(f) = Σ_S c_S · P(∧_{i∈S} Q_i)`` where
    the integer coefficients come from the minterm expansion of ``f``.
    Each conjunction is one CQ (leaves renamed apart), evaluated by
    ``engine`` (default: the exact lineage oracle; pass
    :class:`~repro.engines.lifted.LiftedEngine` for the Theorem-3.11
    PTIME path on inversion-free properties).
    """
    leaves = prop.leaves()
    evaluator = engine or LineageEngine()
    if not leaves:
        return 1.0 if prop.evaluate({}) else 0.0
    if len(leaves) > 16:
        raise ValueError(
            f"{len(leaves)} CQ leaves: the inclusion–exclusion expansion "
            "would be too large"
        )

    coefficients = _subset_coefficients(prop, leaves)
    total = 0.0
    for subset, coefficient in coefficients.items():
        if coefficient == 0:
            continue
        if not subset:
            total += coefficient  # P(empty conjunction) = 1
            continue
        conjunction = _conjoin_all([leaves[i] for i in sorted(subset)])
        total += coefficient * evaluator.probability(conjunction, db)
    return min(max(total, 0.0), 1.0)


def _subset_coefficients(
    prop: Prop, leaves: Sequence[ConjunctiveQuery]
) -> Dict[FrozenSet[int], int]:
    """Coefficients ``c_S`` with ``P(f) = Σ_S c_S P(∧_S Q_i)``.

    For each satisfying minterm ``v`` (positives ``pos(v)``), the
    negated leaves expand by inclusion–exclusion:
    ``P(minterm) = Σ_{pos(v) ⊆ S} (-1)^{|S| - |pos(v)|} P(∧_S)``.
    """
    k = len(leaves)
    coefficients: Dict[FrozenSet[int], int] = {}
    for bits in itertools.product((False, True), repeat=k):
        truth = {leaf: bit for leaf, bit in zip(leaves, bits)}
        if not prop.evaluate(truth):
            continue
        positives = frozenset(i for i in range(k) if bits[i])
        negatives = [i for i in range(k) if not bits[i]]
        for size in range(len(negatives) + 1):
            for extra in itertools.combinations(negatives, size):
                subset = positives | frozenset(extra)
                coefficients[subset] = (
                    coefficients.get(subset, 0) + (-1) ** size
                )
    return coefficients


def _conjoin_all(queries: Sequence[ConjunctiveQuery]) -> ConjunctiveQuery:
    result = queries[0]
    taken = list(result.variables)
    for query in queries[1:]:
        renamed, _ = query.rename_apart(taken, suffix="_p")
        taken.extend(renamed.variables)
        result = result.conjoin(renamed)
    return result
