"""Substructure counting — the paper's first future-work direction.

Section 5 asks "whether the hardness results can be sharpened to
counting the number of substructures (i.e. when all probabilities are
1/2)".  Under uniform 1/2 marginals the probability of a query *is* a
count: ``p(q) = #{B ⊆ A : B ⊨ q} / 2^n`` where ``n`` is the number of
tuples.  This module exposes that correspondence so counting questions
can be asked directly, with the usual engine routing (exact for safe
queries, oracle/Monte-Carlo otherwise).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..core.query import ConjunctiveQuery
from ..db.database import ProbabilisticDatabase
from ..engines.base import Engine
from ..engines.lineage_engine import LineageEngine


def uniform_database(structure: ProbabilisticDatabase) -> ProbabilisticDatabase:
    """The same tuples with every probability forced to 1/2."""
    uniform = ProbabilisticDatabase()
    for name in structure.relation_names:
        relation = structure.relation(name)
        for row in relation.tuples():
            uniform.add(name, row, Fraction(1, 2))
    return uniform


def count_satisfying_substructures(
    query: ConjunctiveQuery,
    structure: ProbabilisticDatabase,
    engine: Optional[Engine] = None,
) -> int:
    """Number of substructures of ``structure`` satisfying ``query``.

    Computed as ``p(q) * 2^n`` over the uniform-1/2 database.  The
    default engine is the exact oracle; pass a
    :class:`~repro.engines.safe_plan.SafePlanEngine` or
    :class:`~repro.engines.lifted.LiftedEngine` for safe queries to get
    the PTIME path.  The result is rounded to the nearest integer and
    sanity-checked against the float's precision budget.
    """
    uniform = uniform_database(structure)
    tuple_count = uniform.tuple_count()
    if tuple_count > 50:
        raise ValueError(
            "counting via floating-point probabilities loses integer "
            f"precision beyond ~50 tuples (instance has {tuple_count})"
        )
    evaluator = engine or LineageEngine()
    probability = evaluator.probability(query, uniform)
    scaled = probability * (2 ** tuple_count)
    count = round(scaled)
    if abs(scaled - count) > 1e-4 * max(1.0, count):
        raise ArithmeticError(
            f"count {scaled} is too far from an integer; "
            "precision exhausted"
        )
    return count
