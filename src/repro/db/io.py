"""Loading probabilistic databases from JSON files.

Two interchangeable on-disk formats, both a JSON object keyed by
relation name:

* the **list format** (what the CLI has always documented)::

      {"R": [[[1], 0.5], [[2], 0.3]], "S": [[[1, 2], 0.4]]}

  each row is a ``[tuple, probability]`` pair;

* the **mapping format**, mirroring
  :meth:`~repro.db.database.ProbabilisticDatabase.from_dict` (JSON has
  no tuple keys, so rows are encoded as strings)::

      {"R": {"[1]": 0.5, "[2]": 0.3}, "S": {"[1, 2]": 0.4}}

  a key is a JSON array (``"[1, 2]"``), a bare scalar (``"1"``,
  ``"brando"``) for unary relations, or a comma-separated list
  (``"1, 2"``).

Malformed input raises :class:`DatabaseFormatError` with the relation
and row that failed — never a raw ``KeyError``/``TypeError`` traceback.
"""

from __future__ import annotations

import json
import re
from typing import IO, List, Union

from .database import ProbabilisticDatabase

_INT_RE = re.compile(r"^-?\d+$")


class DatabaseFormatError(ValueError):
    """Raised when a database file does not match either JSON format."""


def load_database(source: Union[str, IO]) -> ProbabilisticDatabase:
    """Load a :class:`ProbabilisticDatabase` from a JSON file.

    ``source`` is a path or an open text file.  Accepts the list and
    the mapping format (see module docstring), validating as it goes.
    """
    if hasattr(source, "read"):
        name = getattr(source, "name", "<stream>")
        text = source.read()
    else:
        name = source
        with open(source) as handle:
            text = handle.read()
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as error:
        raise DatabaseFormatError(f"{name}: not valid JSON: {error}") from error
    try:
        return parse_database(raw)
    except DatabaseFormatError as error:
        raise DatabaseFormatError(f"{name}: {error}") from error


def parse_database(raw) -> ProbabilisticDatabase:
    """Build a database from already-decoded JSON data."""
    if not isinstance(raw, dict):
        raise DatabaseFormatError(
            f"top level must be an object mapping relation names to rows, "
            f"got {type(raw).__name__}"
        )
    db = ProbabilisticDatabase()
    for relation, rows in raw.items():
        if isinstance(rows, list):
            _add_list_rows(db, relation, rows)
        elif isinstance(rows, dict):
            _add_mapping_rows(db, relation, rows)
        else:
            raise DatabaseFormatError(
                f"relation {relation!r}: expected a list of [row, probability] "
                f"pairs or a row->probability mapping, got {type(rows).__name__}"
            )
    return db


def _add_list_rows(
    db: ProbabilisticDatabase, relation: str, rows: list
) -> None:
    arity = None
    for index, entry in enumerate(rows):
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
        ):
            raise DatabaseFormatError(
                f"relation {relation!r}, entry {index}: expected a "
                f"[row, probability] pair, got {entry!r}"
            )
        row, probability = entry
        if not isinstance(row, (list, tuple)):
            raise DatabaseFormatError(
                f"relation {relation!r}, entry {index}: row must be an array, "
                f"got {row!r} (write [[{row!r}], p] for a unary tuple)"
            )
        arity = _check_arity(relation, index, row, arity)
        _check_probability(relation, index, probability)
        db.add(relation, tuple(row), float(probability))


def _add_mapping_rows(
    db: ProbabilisticDatabase, relation: str, rows: dict
) -> None:
    arity = None
    for index, (key, probability) in enumerate(rows.items()):
        row = _parse_row_key(relation, key)
        arity = _check_arity(relation, index, row, arity)
        _check_probability(relation, f"key {key!r}", probability)
        db.add(relation, tuple(row), float(probability))


def _parse_row_key(relation: str, key) -> List:
    if not isinstance(key, str):
        raise DatabaseFormatError(
            f"relation {relation!r}: mapping keys must be strings, "
            f"got {key!r}"
        )
    text = key.strip()
    if text.startswith("["):
        try:
            decoded = json.loads(text)
        except json.JSONDecodeError as error:
            raise DatabaseFormatError(
                f"relation {relation!r}: row key {key!r} is not a JSON array: "
                f"{error}"
            ) from error
        if not isinstance(decoded, list):
            raise DatabaseFormatError(
                f"relation {relation!r}: row key {key!r} must decode to an "
                f"array"
            )
        return decoded
    tokens = [token.strip() for token in text.split(",")] if text else [""]
    return [int(token) if _INT_RE.match(token) else token for token in tokens]


def _check_arity(relation: str, index, row, arity):
    if arity is not None and len(row) != arity:
        raise DatabaseFormatError(
            f"relation {relation!r}, entry {index}: ragged arity — row "
            f"{list(row)!r} has {len(row)} columns, earlier rows have {arity}"
        )
    return len(row) if arity is None else arity


def _check_probability(relation: str, index, probability) -> None:
    if isinstance(probability, bool) or not isinstance(probability, (int, float)):
        raise DatabaseFormatError(
            f"relation {relation!r}, entry {index}: probability must be a "
            f"number, got {probability!r}"
        )
    if not 0.0 <= float(probability) <= 1.0:
        raise DatabaseFormatError(
            f"relation {relation!r}, entry {index}: probability "
            f"{probability!r} outside [0, 1]"
        )
