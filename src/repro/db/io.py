"""Loading probabilistic databases from JSON files.

Two interchangeable on-disk formats, both a JSON object keyed by
relation name:

* the **list format** (what the CLI has always documented)::

      {"R": [[[1], 0.5], [[2], 0.3]], "S": [[[1, 2], 0.4]]}

  each row is a ``[tuple, probability]`` pair;

* the **mapping format**, mirroring
  :meth:`~repro.db.database.ProbabilisticDatabase.from_dict` (JSON has
  no tuple keys, so rows are encoded as strings)::

      {"R": {"[1]": 0.5, "[2]": 0.3}, "S": {"[1, 2]": 0.4}}

  a key is a JSON array (``"[1, 2]"``), a bare scalar (``"1"``,
  ``"brando"``) for unary relations, or a comma-separated list
  (``"1, 2"``).

Malformed input raises :class:`DatabaseFormatError` with the relation
and row that failed — never a raw ``KeyError``/``TypeError`` traceback.

Duplicate rows are rejected by default: a file that mentions the same
tuple of a relation twice (e.g. ``{"R": [[[1], 0.5], [[1], 0.7]]}``, or
a mapping whose keys ``"[1]"`` and ``"1"`` decode to the same row) is
almost always a data-generation bug, and silently keeping the last
probability hides it.  Pass ``on_duplicate="overwrite"`` to restore
last-wins loading; when loading from a file, that also permits
textually duplicated JSON object keys (which ``json.loads`` would
otherwise collapse before validation could see them).
"""

from __future__ import annotations

import json
import re
from typing import IO, List, Union

from .database import ProbabilisticDatabase

_INT_RE = re.compile(r"^-?\d+$")


class DatabaseFormatError(ValueError):
    """Raised when a database file does not match either JSON format."""


_ON_DUPLICATE = ("error", "overwrite")


def _check_on_duplicate(on_duplicate: str) -> None:
    if on_duplicate not in _ON_DUPLICATE:
        raise ValueError(
            f"on_duplicate must be one of {_ON_DUPLICATE}, "
            f"got {on_duplicate!r}"
        )


def _strict_pairs(pairs):
    """``object_pairs_hook`` rejecting textually duplicated JSON keys.

    ``json.loads`` silently keeps the last value for a repeated object
    key, so duplicate detection must happen before decoding collapses
    the pairs into a dict.
    """
    decoded = {}
    for key, value in pairs:
        if key in decoded:
            raise DatabaseFormatError(
                f"duplicate JSON object key {key!r}; pass "
                f"on_duplicate='overwrite' to keep the last value"
            )
        decoded[key] = value
    return decoded


def load_database(
    source: Union[str, IO], on_duplicate: str = "error"
) -> ProbabilisticDatabase:
    """Load a :class:`ProbabilisticDatabase` from a JSON file.

    Args:
        source: a filesystem path, or an open text file (anything with
            ``.read()`` — the CLI passes paths, tests pass
            ``io.StringIO``).  Accepts the list and the mapping format
            (see module docstring), validating as it goes.
        on_duplicate: ``"error"`` (default) rejects files mentioning
            the same row twice — including textually duplicated JSON
            object keys — as probable data bugs; ``"overwrite"`` loads
            them last-wins.

    Returns:
        The populated database.

    Raises:
        DatabaseFormatError: invalid JSON, a malformed row/probability
            (with the relation and row named), or a duplicate row
            under ``on_duplicate="error"``.
        ValueError: an unknown ``on_duplicate`` mode.
        OSError: an unreadable path.

    Example::

        >>> import io
        >>> db = load_database(io.StringIO(
        ...     '{"R": [[[1], 0.5]], "S": {"[1, 2]": 0.4}}'))
        >>> db.probability("R", (1,)), db.probability("S", (1, 2))
        (0.5, 0.4)
        >>> load_database(io.StringIO('{"R": [[[1], 0.5], [[1], 0.7]]}'))
        Traceback (most recent call last):
            ...
        repro.db.io.DatabaseFormatError: <stream>: relation 'R', entry 1: \
duplicate row [1] (already loaded with probability 0.5); pass \
on_duplicate='overwrite' to keep the last value
    """
    _check_on_duplicate(on_duplicate)
    if hasattr(source, "read"):
        name = getattr(source, "name", "<stream>")
        text = source.read()
    else:
        name = source
        with open(source) as handle:
            text = handle.read()
    hook = _strict_pairs if on_duplicate == "error" else None
    try:
        raw = json.loads(text, object_pairs_hook=hook)
    except json.JSONDecodeError as error:
        raise DatabaseFormatError(f"{name}: not valid JSON: {error}") from error
    except DatabaseFormatError as error:
        raise DatabaseFormatError(f"{name}: {error}") from error
    try:
        return parse_database(raw, on_duplicate)
    except DatabaseFormatError as error:
        raise DatabaseFormatError(f"{name}: {error}") from error


def parse_database(raw, on_duplicate: str = "error") -> ProbabilisticDatabase:
    """Build a database from already-decoded JSON data."""
    _check_on_duplicate(on_duplicate)
    if not isinstance(raw, dict):
        raise DatabaseFormatError(
            f"top level must be an object mapping relation names to rows, "
            f"got {type(raw).__name__}"
        )
    db = ProbabilisticDatabase()
    for relation, rows in raw.items():
        if isinstance(rows, list):
            _add_list_rows(db, relation, rows, on_duplicate)
        elif isinstance(rows, dict):
            _add_mapping_rows(db, relation, rows, on_duplicate)
        else:
            raise DatabaseFormatError(
                f"relation {relation!r}: expected a list of [row, probability] "
                f"pairs or a row->probability mapping, got {type(rows).__name__}"
            )
    return db


def _add_list_rows(
    db: ProbabilisticDatabase, relation: str, rows: list,
    on_duplicate: str,
) -> None:
    arity = None
    for index, entry in enumerate(rows):
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
        ):
            raise DatabaseFormatError(
                f"relation {relation!r}, entry {index}: expected a "
                f"[row, probability] pair, got {entry!r}"
            )
        row, probability = entry
        if not isinstance(row, (list, tuple)):
            raise DatabaseFormatError(
                f"relation {relation!r}, entry {index}: row must be an array, "
                f"got {row!r} (write [[{row!r}], p] for a unary tuple)"
            )
        arity = _check_arity(relation, index, row, arity)
        _check_probability(relation, index, probability)
        _check_duplicate(db, relation, index, tuple(row), on_duplicate)
        db.add(relation, tuple(row), float(probability))


def _add_mapping_rows(
    db: ProbabilisticDatabase, relation: str, rows: dict,
    on_duplicate: str,
) -> None:
    arity = None
    for index, (key, probability) in enumerate(rows.items()):
        row = _parse_row_key(relation, key)
        arity = _check_arity(relation, index, row, arity)
        _check_probability(relation, f"key {key!r}", probability)
        _check_duplicate(db, relation, f"key {key!r}", tuple(row), on_duplicate)
        db.add(relation, tuple(row), float(probability))


def _check_duplicate(
    db: ProbabilisticDatabase, relation: str, index, row, on_duplicate: str
) -> None:
    if on_duplicate == "overwrite":
        return
    if db.has_relation(relation) and row in db.relation(relation):
        raise DatabaseFormatError(
            f"relation {relation!r}, entry {index}: duplicate row "
            f"{list(row)!r} (already loaded with probability "
            f"{float(db.probability(relation, row))}); pass "
            f"on_duplicate='overwrite' to keep the last value"
        )


def _parse_row_key(relation: str, key) -> List:
    if not isinstance(key, str):
        raise DatabaseFormatError(
            f"relation {relation!r}: mapping keys must be strings, "
            f"got {key!r}"
        )
    text = key.strip()
    if text.startswith("["):
        try:
            decoded = json.loads(text)
        except json.JSONDecodeError as error:
            raise DatabaseFormatError(
                f"relation {relation!r}: row key {key!r} is not a JSON array: "
                f"{error}"
            ) from error
        if not isinstance(decoded, list):
            raise DatabaseFormatError(
                f"relation {relation!r}: row key {key!r} must decode to an "
                f"array"
            )
        return decoded
    tokens = [token.strip() for token in text.split(",")] if text else [""]
    return [int(token) if _INT_RE.match(token) else token for token in tokens]


def _check_arity(relation: str, index, row, arity):
    if arity is not None and len(row) != arity:
        raise DatabaseFormatError(
            f"relation {relation!r}, entry {index}: ragged arity — row "
            f"{list(row)!r} has {len(row)} columns, earlier rows have {arity}"
        )
    return len(row) if arity is None else arity


def _check_probability(relation: str, index, probability) -> None:
    if isinstance(probability, bool) or not isinstance(probability, (int, float)):
        raise DatabaseFormatError(
            f"relation {relation!r}, entry {index}: probability must be a "
            f"number, got {probability!r}"
        )
    if not 0.0 <= float(probability) <= 1.0:
        raise DatabaseFormatError(
            f"relation {relation!r}, entry {index}: probability "
            f"{probability!r} outside [0, 1]"
        )
