"""Possible-world semantics by explicit enumeration.

Equation (2) of the paper defines ``p(q)`` as the total probability of
the substructures satisfying ``q``.  This module materializes that
definition literally — exponential, and therefore only usable on tiny
instances, but it is the bedrock ground truth for everything else.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Set, Tuple

from .database import ProbabilisticDatabase, TupleKey

#: A possible world: the set of tuple events that are present.
World = frozenset


MAX_ENUMERABLE_TUPLES = 22


def iterate_worlds(
    db: ProbabilisticDatabase,
) -> Iterator[Tuple[World, float]]:
    """Yield every possible world with its probability.

    Tuples with probability 1 are always present and tuples with
    probability 0 never are; only the genuinely uncertain tuples are
    branched on, which keeps small benchmarks feasible.
    """
    certain: List[TupleKey] = []
    uncertain: List[TupleKey] = []
    for key in db.tuple_keys():
        prob = db.probability(*key)
        if prob == 1:
            certain.append(key)
        elif prob > 0:
            uncertain.append(key)
    if len(uncertain) > MAX_ENUMERABLE_TUPLES:
        raise ValueError(
            f"refusing to enumerate 2^{len(uncertain)} worlds; "
            f"use the lineage engine instead"
        )
    base = frozenset(certain)
    probs = [float(db.probability(*key)) for key in uncertain]
    for choices in product((False, True), repeat=len(uncertain)):
        weight = 1.0
        present: Set[TupleKey] = set(base)
        for key, chosen, prob in zip(uncertain, choices, probs):
            if chosen:
                weight *= prob
                present.add(key)
            else:
                weight *= 1.0 - prob
        if weight > 0.0:
            yield frozenset(present), weight


def world_database(
    db: ProbabilisticDatabase, world: World
) -> ProbabilisticDatabase:
    """The deterministic database corresponding to one world."""
    deterministic = ProbabilisticDatabase()
    for name, row in world:
        deterministic.add(name, row, 1)
    for name in db.relation_names:
        deterministic.relation(name)  # keep empty relations visible
    return deterministic


def world_count(db: ProbabilisticDatabase) -> int:
    """Number of worlds with nonzero probability branching."""
    uncertain = sum(
        1 for key in db.tuple_keys() if 0 < db.probability(*key) < 1
    )
    return 2 ** uncertain
