"""Probabilistic relation instances.

A relation instance maps ground tuples to marginal probabilities; the
tuple-independence assumption (Equation 1 of the paper) lives at the
database level, where every tuple of every relation is an independent
Bernoulli event.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

Value = Union[int, str, float]
GroundTuple = Tuple[Value, ...]
Probability = Union[float, Fraction]


def canonical_row_key(row: Iterable[Value]) -> Tuple:
    """Deterministic sort key for mixed-type ground tuples.

    Python refuses ``3 < "a"``; keying every value by (type name,
    string form) gives one total order used everywhere rows, answers
    and events are ranked, so all layers agree on tie-breaks.
    """
    return tuple((type(value).__name__, str(value)) for value in row)


class Relation:
    """A named relation with per-tuple probabilities.

    Every effective mutation is tracked by two monotone counters so
    long-lived callers (the serving layer's caches) can invalidate
    precisely:

    * ``version`` bumps on *any* effective change;
    * ``structure_version`` bumps only on changes that can alter which
      tuples ground a query — inserting a new tuple, or moving a
      probability onto/off the {0, 1} boundary (grounding drops certain
      tuples and kills impossible matches, so boundary crossings change
      lineage *structure*; interior re-weights never do).

    An overwrite with the identical probability is a no-op: neither
    counter moves.

    Args:
        name: relation symbol.
        arity: number of columns; inferred from the first tuple if None.
        tuples: optional initial ``{tuple: probability}`` mapping.
    """

    __slots__ = ("name", "_arity", "_tuples", "_indexes", "_distinct",
                 "version", "structure_version")

    def __init__(
        self,
        name: str,
        arity: Optional[int] = None,
        tuples: Optional[Mapping[GroundTuple, Probability]] = None,
    ) -> None:
        self.name = name
        self._arity = arity
        self._tuples: Dict[GroundTuple, Probability] = {}
        self._indexes: Dict[int, Dict[Value, list]] = {}
        self._distinct: Dict[int, Tuple[int, int]] = {}
        self.version = 0
        self.structure_version = 0
        if tuples:
            for row, prob in tuples.items():
                self.add(row, prob)

    @property
    def arity(self) -> Optional[int]:
        """Column count (None until the first tuple arrives)."""
        return self._arity

    def add(self, row: Iterable[Value], probability: Probability) -> None:
        """Insert or overwrite a tuple with its marginal probability."""
        row = tuple(row)
        if self._arity is None:
            self._arity = len(row)
        elif len(row) != self._arity:
            raise ValueError(
                f"relation {self.name} has arity {self._arity}, "
                f"got tuple of length {len(row)}"
            )
        if not 0 <= probability <= 1:
            raise ValueError(
                f"probability must lie in [0, 1], got {probability} for {row}"
            )
        previous = self._tuples.get(row)
        if previous is not None:
            if float(previous) == float(probability):
                return
            self._tuples[row] = probability
            # Index membership is untouched by an overwrite (indexes map
            # column values to rows, never to probabilities), so the
            # column indexes stay valid as they are.
            self.version += 1
            if not (0 < previous < 1 and 0 < probability < 1):
                self.structure_version += 1
            return
        self._tuples[row] = probability
        self.version += 1
        self.structure_version += 1
        for position, index in self._indexes.items():
            index.setdefault(row[position], []).append(row)

    def probability(self, row: Iterable[Value]) -> Probability:
        """Marginal probability of a tuple; 0 when absent."""
        return self._tuples.get(tuple(row), 0)

    def __contains__(self, row: Iterable[Value]) -> bool:
        return tuple(row) in self._tuples

    def tuples(self) -> Iterator[GroundTuple]:
        """All tuples with nonzero entries, insertion-ordered."""
        return iter(self._tuples)

    def items(self) -> Iterator[Tuple[GroundTuple, Probability]]:
        return iter(self._tuples.items())

    def index_on(self, position: int) -> Dict[Value, list]:
        """The per-column index, built once and reused.

        The grounding backtracker fetches this at plan time so each
        join step is a plain dict lookup (no per-step index checks).
        Extended in place on insert; probability overwrites leave it
        untouched (membership never changes), so a fetched index stays
        valid across re-weighting.
        """
        index = self._indexes.get(position)
        if index is None:
            index = {}
            for row in self._tuples:
                index.setdefault(row[position], []).append(row)
            self._indexes[position] = index
        return index

    def matching(self, position: int, value: Value) -> list:
        """Tuples whose ``position``-th column equals ``value`` (indexed)."""
        return self.index_on(position).get(value, [])

    def indexed_positions(self) -> Tuple[int, ...]:
        """Columns whose per-column index has already been built.

        The grounding planner prefers probing through an existing
        index on cost ties, so repeated queries over one relation
        converge on the same (already paid-for) index instead of
        building one per column.
        """
        return tuple(self._indexes)

    def distinct_count(self, position: int) -> int:
        """Number of distinct values in a column (cached statistic).

        The grounding planner's selectivity estimate: an index probe
        on this column is expected to return ``len(self) /
        distinct_count(position)`` rows.  Cached per
        ``structure_version`` — probability re-weights never change
        column contents, inserts invalidate.  Reads the column index
        when one exists (free), otherwise one set-building pass that
        does *not* materialize per-value row lists.
        """
        cached = self._distinct.get(position)
        if cached is not None and cached[0] == self.structure_version:
            return cached[1]
        index = self._indexes.get(position)
        if index is not None:
            count = len(index)
        else:
            count = len({row[position] for row in self._tuples})
        self._distinct[position] = (self.structure_version, count)
        return count

    def values_at(self, position: int) -> set:
        """The set of values in a column."""
        return {row[position] for row in self._tuples}

    def deterministic_view(self) -> "Relation":
        """A copy with every probability set to 1 (for certain data)."""
        return Relation(self.name, self._arity, {t: 1 for t in self._tuples})

    def __len__(self) -> int:
        return len(self._tuples)

    def __str__(self) -> str:
        return f"{self.name}/{self._arity or 0} ({len(self)} tuples)"

    def __repr__(self) -> str:
        return f"Relation({self})"
