"""SQLite-backed storage for probabilistic databases.

MystiQ (the paper's motivating system) evaluates safe plans inside a
relational engine.  This module mirrors that architecture: a
:class:`SQLiteStore` materializes a :class:`ProbabilisticDatabase` as
SQLite tables with a ``prob`` column, and exposes join matching used by
the SQL-backed grounding and safe-plan engines.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.predicates import Comparison
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from .database import ProbabilisticDatabase


class SQLiteStore:
    """An in-memory SQLite image of a probabilistic database.

    Columns are named ``c0..c{arity-1}`` plus ``prob``.  Values are
    stored as TEXT with a type tag column-free encoding (ints keep
    their natural form via SQLite affinity on a TEXT column is lossy,
    so we encode: ints as ``i:<n>``, everything else as ``s:<str>``),
    guaranteeing round-trips for the mixed int/str domains used by the
    hardness reductions.
    """

    def __init__(self, db: ProbabilisticDatabase) -> None:
        self.connection = sqlite3.connect(":memory:")
        self.source = db
        self._arities: Dict[str, int] = {}
        self._load(db)

    # ------------------------------------------------------------------

    @staticmethod
    def encode(value) -> str:
        if isinstance(value, bool):
            return f"s:{value}"
        if isinstance(value, int):
            return f"i:{value}"
        return f"s:{value}"

    @staticmethod
    def decode(text: str):
        tag, _, payload = text.partition(":")
        if tag == "i":
            return int(payload)
        return payload

    def _load(self, db: ProbabilisticDatabase) -> None:
        cursor = self.connection.cursor()
        for relation in db.relations():
            arity = relation.arity or 0
            self._arities[relation.name] = arity
            columns = ", ".join(f"c{i} TEXT" for i in range(arity))
            spec = f"({columns}, prob REAL)" if arity else "(prob REAL)"
            cursor.execute(f'CREATE TABLE "{relation.name}" {spec}')
            rows = [
                tuple(self.encode(v) for v in row) + (float(prob),)
                for row, prob in relation.items()
            ]
            if rows:
                placeholders = ", ".join("?" for _ in range(arity + 1))
                cursor.executemany(
                    f'INSERT INTO "{relation.name}" VALUES ({placeholders})', rows
                )
        self.connection.commit()

    def arity(self, relation: str) -> int:
        return self._arities.get(relation, 0)

    # ------------------------------------------------------------------
    # Query matching (grounding backend)
    # ------------------------------------------------------------------

    def matches(
        self, query: ConjunctiveQuery
    ) -> List[Dict[Variable, object]]:
        """All assignments of the query's variables satisfied by the
        stored tuples (ignoring probabilities; negated atoms are not
        joined — callers handle negation on top).

        The query is compiled to a single SQL join over the positive
        atoms, with equality join conditions from repeated variables,
        constants pushed as filters, and arithmetic predicates
        translated when both sides are integers-or-columns.
        """
        positive = [a for a in query.atoms if not a.negated]
        if not positive:
            return [{}]
        for atom in positive:
            if self._arities.get(atom.relation) != atom.arity:
                return []  # unknown or empty relation: no matches
        sql, params, projection = self._compile(positive, query.predicates)
        cursor = self.connection.execute(sql, params)
        results = []
        for row in cursor.fetchall():
            assignment = {
                variable: self.decode(row[i])
                for i, variable in enumerate(projection)
            }
            if _predicates_hold(query.predicates, assignment):
                results.append(assignment)
        return results

    def _compile(
        self,
        atoms: Sequence[Atom],
        predicates: Sequence[Comparison],
    ) -> Tuple[str, List, List[Variable]]:
        froms: List[str] = []
        wheres: List[str] = []
        params: List = []
        first_column: Dict[Variable, str] = {}
        for index, atom in enumerate(atoms):
            alias = f"t{index}"
            froms.append(f'"{atom.relation}" AS {alias}')
            for position, term in enumerate(atom.terms):
                column = f"{alias}.c{position}"
                if isinstance(term, Constant):
                    wheres.append(f"{column} = ?")
                    params.append(self.encode(term.value))
                else:
                    if term in first_column:
                        wheres.append(f"{column} = {first_column[term]}")
                    else:
                        first_column[term] = column
        projection = list(first_column)
        select = ", ".join(first_column[v] for v in projection) or "1"
        sql = f"SELECT {select} FROM {', '.join(froms)}"
        if wheres:
            sql += " WHERE " + " AND ".join(wheres)
        return sql, params, projection

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _predicates_hold(
    predicates: Iterable[Comparison], assignment: Dict[Variable, object]
) -> bool:
    for pred in predicates:
        left = pred.left.value if isinstance(pred.left, Constant) else assignment.get(pred.left)
        right = pred.right.value if isinstance(pred.right, Constant) else assignment.get(pred.right)
        if left is None or right is None:
            continue
        try:
            if not pred.evaluate(left, right):
                return False
        except TypeError:
            if not pred.evaluate(str(left), str(right)):
                return False
    return True
