"""Tuple-independent probabilistic databases (the paper's structures).

A :class:`ProbabilisticDatabase` is the pair ``(A, p)`` of Section 1: a
finite structure together with a probability for each tuple, inducing
the product distribution of Equation (1) over substructures.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .relation import GroundTuple, Probability, Relation, Value

#: A tuple event: (relation name, ground tuple).
TupleKey = Tuple[str, GroundTuple]

#: One relation's change-tracking state: (name, structure_version,
#: version).  A sequence of these is a :func:`version snapshot
#: <ProbabilisticDatabase.version_snapshot>`.
RelationVersion = Tuple[str, int, int]


class ProbabilisticDatabase:
    """A collection of probabilistic relations over a shared domain.

    The database is *observably mutable*: every relation carries the
    monotone counters described on :class:`~repro.db.relation.Relation`,
    and :attr:`version` / :attr:`structure_version` aggregate them (plus
    relation additions), so callers holding derived state — compiled
    circuits, grounded lineages, cached results — can detect exactly
    what kind of change happened.  A probability-only change bumps
    :attr:`version` but not :attr:`structure_version`; cached circuit
    structure survives it and only needs re-weighting.
    """

    def __init__(self, relations: Optional[Iterable[Relation]] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        if relations:
            for relation in relations:
                self.add_relation(relation)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_relation(self, relation: Relation) -> None:
        if relation.name in self._relations:
            raise ValueError(f"duplicate relation {relation.name}")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        """The relation instance for ``name`` (empty singleton if absent)."""
        if name not in self._relations:
            self._relations[name] = Relation(name)
        return self._relations[name]

    def add(self, name: str, row: Iterable[Value], probability: Probability) -> None:
        """Insert one tuple: ``db.add("R", (1, 2), 0.5)``."""
        self.relation(name).add(row, probability)

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Mapping[GroundTuple, Probability]],
    ) -> "ProbabilisticDatabase":
        """Build from ``{"R": {(1, 2): 0.5, ...}, ...}``."""
        db = cls()
        for name, rows in data.items():
            for row, prob in rows.items():
                db.add(name, row, prob)
        return db

    def copy(self) -> "ProbabilisticDatabase":
        """A deep copy (tuples are immutable, probabilities copied)."""
        clone = ProbabilisticDatabase()
        for name, relation in self._relations.items():
            clone._relations[name] = Relation(
                name, relation.arity, dict(relation.items())
            )
        return clone

    def snapshot(self) -> Dict[str, List[Tuple[GroundTuple, float]]]:
        """A plain-data image of the database, cheap to pickle.

        The serving pool ships this across process boundaries instead of
        the live object graph (relations drag their column indexes and
        version counters along; workers rebuild those lazily).  Round
        trips through :meth:`from_snapshot`::

            >>> db = ProbabilisticDatabase.from_dict({"R": {(1,): 0.5}})
            >>> ProbabilisticDatabase.from_snapshot(db.snapshot()).probability("R", (1,))
            0.5
        """
        return {
            name: [(row, float(p)) for row, p in relation.items()]
            for name, relation in self._relations.items()
        }

    @classmethod
    def from_snapshot(
        cls, snapshot: Mapping[str, Iterable[Tuple[GroundTuple, float]]]
    ) -> "ProbabilisticDatabase":
        """Rebuild a database from :meth:`snapshot` output."""
        db = cls()
        for name, rows in snapshot.items():
            relation = db.relation(name)
            for row, probability in rows:
                relation.add(row, probability)
        return db

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def relations(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def probability(self, name: str, row: Iterable[Value]) -> Probability:
        """Marginal probability of tuple ``row`` in relation ``name``."""
        relation = self._relations.get(name)
        if relation is None:
            return 0
        return relation.probability(row)

    # ------------------------------------------------------------------
    # Change tracking
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter over every effective mutation.

        Derived from the per-relation counters, so mutations applied
        directly to a :class:`Relation` instance are visible too.
        """
        return sum(r.version for r in self._relations.values())

    @property
    def structure_version(self) -> int:
        """Monotone counter over structure-affecting mutations only."""
        return sum(r.structure_version for r in self._relations.values())

    def version_snapshot(
        self, names: Optional[Iterable[str]] = None
    ) -> Tuple[RelationVersion, ...]:
        """Per-relation ``(name, structure_version, version)`` triples.

        ``names`` restricts the snapshot to the relations a query
        depends on (its dependency set); a relation not yet present
        reads as ``(name, 0, 0)`` without being created, so a later
        creation-with-tuples registers as a change.  Two snapshots over
        the same names are equal iff none of those relations changed
        in between.
        """
        if names is None:
            names = sorted(self._relations)
        else:
            names = sorted(set(names))
        snapshot = []
        for name in names:
            relation = self._relations.get(name)
            if relation is None:
                snapshot.append((name, 0, 0))
            else:
                snapshot.append(
                    (name, relation.structure_version, relation.version)
                )
        return tuple(snapshot)

    def active_domain(self) -> List[Value]:
        """All values appearing anywhere, sorted canonically."""
        values: Set[Value] = set()
        for relation in self._relations.values():
            for row in relation.tuples():
                values.update(row)
        return sorted(values, key=lambda v: (type(v).__name__, str(v)))

    def tuple_keys(self) -> List[TupleKey]:
        """Every (relation, tuple) event in the database."""
        keys: List[TupleKey] = []
        for name in sorted(self._relations):
            keys.extend((name, row) for row in self._relations[name].tuples())
        return keys

    def tuple_count(self) -> int:
        return sum(len(r) for r in self._relations.values())

    def size_summary(self) -> str:
        parts = [str(r) for r in self._relations.values()]
        return "; ".join(parts) if parts else "(empty database)"

    # ------------------------------------------------------------------
    # Mutation helpers used by experiments
    # ------------------------------------------------------------------

    def with_probability(self, key: TupleKey, probability: Probability
                         ) -> "ProbabilisticDatabase":
        """A copy with one tuple's probability replaced."""
        clone = self.copy()
        name, row = key
        clone.relation(name).add(row, probability)
        return clone

    def deterministic_view(self) -> "ProbabilisticDatabase":
        """All probabilities forced to 1."""
        clone = ProbabilisticDatabase()
        for name, relation in self._relations.items():
            clone._relations[name] = relation.deterministic_view()
        return clone

    def __str__(self) -> str:
        return f"ProbabilisticDatabase({self.size_summary()})"

    __repr__ = __str__
