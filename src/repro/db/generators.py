"""Workload and instance generators.

Benchmarks and property tests need reproducible probabilistic
databases: dense/sparse random instances shaped to a query's schema,
and the structured instances from the paper's hardness proofs
(4-partite graphs, triangled graphs, bipartite clause graphs).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.query import ConjunctiveQuery
from .database import ProbabilisticDatabase


def schema_of(query: ConjunctiveQuery) -> Dict[str, int]:
    """Relation name -> arity, as used by the query."""
    schema: Dict[str, int] = {}
    for atom in query.atoms:
        existing = schema.setdefault(atom.relation, atom.arity)
        if existing != atom.arity:
            raise ValueError(
                f"inconsistent arity for {atom.relation}: {existing} vs {atom.arity}"
            )
    return schema


def random_database(
    schema: Mapping[str, int],
    domain_size: int,
    density: float = 0.5,
    seed: Optional[int] = None,
    probability_range: Tuple[float, float] = (0.1, 0.9),
    max_tuples_per_relation: Optional[int] = None,
) -> ProbabilisticDatabase:
    """A random tuple-independent database over domain ``{0..N-1}``.

    Each potential tuple of each relation is included with probability
    ``density``; included tuples get a marginal drawn uniformly from
    ``probability_range``.  For relations whose full space
    ``N**arity`` is large, sampling switches to drawing
    ``max_tuples_per_relation`` (default ``density * N**arity`` capped
    at 5000) random tuples, so generation stays linear.
    """
    rng = random.Random(seed)
    low, high = probability_range
    db = ProbabilisticDatabase()
    domain = list(range(domain_size))
    for name in sorted(schema):
        arity = schema[name]
        relation = db.relation(name)
        space = domain_size ** arity
        target = density * space
        cap = max_tuples_per_relation or 5000
        if space <= 4096:
            for row in _all_rows(domain, arity):
                if rng.random() < density:
                    relation.add(row, rng.uniform(low, high))
        else:
            count = int(min(target, cap))
            seen = set()
            while len(seen) < count:
                row = tuple(rng.choice(domain) for _ in range(arity))
                if row not in seen:
                    seen.add(row)
                    relation.add(row, rng.uniform(low, high))
    return db


def random_database_for_query(
    query: ConjunctiveQuery,
    domain_size: int,
    density: float = 0.5,
    seed: Optional[int] = None,
    probability_range: Tuple[float, float] = (0.1, 0.9),
) -> ProbabilisticDatabase:
    """Random database matching a query's schema.

    Constants appearing in the query are injected into the domain by
    also generating tuples over ``{constants} ∪ {0..N-1}`` positions
    with the same density, so that constant sub-goals can be satisfied.
    """
    rng = random.Random(seed)
    db = random_database(
        schema_of(query), domain_size, density,
        seed=rng.randint(0, 2**31), probability_range=probability_range,
    )
    constants = [c.value for c in query.constants]
    if constants:
        low, high = probability_range
        domain = list(range(domain_size)) + constants
        from ..core.terms import Constant as _Constant

        for atom in query.atoms:
            relation = db.relation(atom.relation)
            # Rows with the atom's own constants pinned, so constant
            # sub-goals are satisfiable; remaining positions random.
            pinned = {
                position: term.value
                for position, term in enumerate(atom.terms)
                if isinstance(term, _Constant)
            }
            for _ in range(max(2, domain_size)):
                row = tuple(
                    pinned.get(position, rng.choice(domain))
                    for position in range(atom.arity)
                )
                if rng.random() < density and row not in relation:
                    relation.add(row, rng.uniform(low, high))
    return db


def _all_rows(domain: Sequence, arity: int) -> Iterable[Tuple]:
    if arity == 0:
        yield ()
        return
    for row in _all_rows(domain, arity - 1):
        for value in domain:
            yield row + (value,)


# ----------------------------------------------------------------------
# Structured instances from the hardness proofs
# ----------------------------------------------------------------------


def four_partite_graph(
    x_probs: Sequence[float],
    y_probs: Sequence[float],
    clauses: Sequence[Tuple[int, int]],
    edge_relation: str = "E",
) -> ProbabilisticDatabase:
    """The 4-partite graph of Proposition B.3.

    Nodes ``u, x_1..x_m, y_1..y_n, v``; edges ``u -> x_i`` with
    probability ``x_probs[i]``, clause edges ``x_i -> y_j`` with
    probability 1, and ``y_j -> v`` with probability ``y_probs[j]``.
    The probability that a path of length 3 exists equals the
    probability that the bipartite 2DNF formula is true.
    """
    db = ProbabilisticDatabase()
    edges = db.relation(edge_relation)
    for i, prob in enumerate(x_probs):
        edges.add(("u", f"x{i}"), prob)
    for i, j in clauses:
        edges.add((f"x{i}", f"y{j}"), 1)
    for j, prob in enumerate(y_probs):
        edges.add((f"y{j}", "v"), prob)
    return db


def triangled_graph(
    x_probs: Sequence[float],
    y_probs: Sequence[float],
    clauses: Sequence[Tuple[int, int]],
    edge_relation: str = "E",
) -> ProbabilisticDatabase:
    """The triangled graph of Proposition B.3 (u and v merged into v0)."""
    db = ProbabilisticDatabase()
    edges = db.relation(edge_relation)
    for i, prob in enumerate(x_probs):
        edges.add(("v0", f"x{i}"), prob)
    for i, j in clauses:
        edges.add((f"x{i}", f"y{j}"), 1)
    for j, prob in enumerate(y_probs):
        edges.add((f"y{j}", "v0"), prob)
    return db


def star_join_instance(
    fanout: int,
    branching: int,
    seed: Optional[int] = None,
) -> ProbabilisticDatabase:
    """An R(x), S(x, y) shaped instance: ``fanout`` roots, each with
    ``branching`` S-children; probabilities uniform in (0.2, 0.8)."""
    rng = random.Random(seed)
    db = ProbabilisticDatabase()
    for x in range(fanout):
        db.add("R", (x,), rng.uniform(0.2, 0.8))
        for y in range(branching):
            db.add("S", (x, y), rng.uniform(0.2, 0.8))
    return db


def grid_edges(
    side: int,
    probability: float = 0.5,
    relation: str = "R",
    seed: Optional[int] = None,
) -> ProbabilisticDatabase:
    """Directed grid-graph edges, used by the q_2path benchmarks."""
    rng = random.Random(seed)
    db = ProbabilisticDatabase()
    edges = db.relation(relation)
    for i in range(side):
        for j in range(side):
            node = i * side + j
            if j + 1 < side:
                edges.add((node, node + 1), rng.uniform(0.1, probability * 2 - 0.1)
                          if seed is not None else probability)
            if i + 1 < side:
                edges.add((node, node + side), probability)
    return db
