"""Tuple-independent probabilistic database substrate."""

from .database import ProbabilisticDatabase, RelationVersion, TupleKey
from .io import DatabaseFormatError, load_database, parse_database
from .generators import (
    four_partite_graph,
    grid_edges,
    random_database,
    random_database_for_query,
    schema_of,
    star_join_instance,
    triangled_graph,
)
from .relation import (
    GroundTuple,
    Probability,
    Relation,
    Value,
    canonical_row_key,
)
from .sqlstore import SQLiteStore
from .worlds import (
    MAX_ENUMERABLE_TUPLES,
    World,
    iterate_worlds,
    world_count,
    world_database,
)

__all__ = [
    "DatabaseFormatError",
    "GroundTuple",
    "MAX_ENUMERABLE_TUPLES",
    "Probability",
    "ProbabilisticDatabase",
    "Relation",
    "RelationVersion",
    "SQLiteStore",
    "TupleKey",
    "Value",
    "World",
    "canonical_row_key",
    "four_partite_graph",
    "grid_edges",
    "iterate_worlds",
    "load_database",
    "parse_database",
    "random_database",
    "random_database_for_query",
    "schema_of",
    "star_join_instance",
    "triangled_graph",
    "world_count",
    "world_database",
]
