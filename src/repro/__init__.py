"""repro — Dalvi & Suciu's dichotomy of conjunctive queries, rebuilt.

A complete reimplementation of *The Dichotomy of Conjunctive Queries on
Probabilistic Structures* (PODS 2007): the query calculus, the
tuple-independent probabilistic database substrate, exact and
approximate evaluation engines, the PTIME/#P-hard classifier
(hierarchies, inversions, erasers), and the executable hardness
reductions.

Quickstart::

    from repro import parse, classify, ProbabilisticDatabase, RouterEngine

    q = parse("R(x), S(x,y)")
    print(classify(q).verdict)          # PTIME

    db = ProbabilisticDatabase.from_dict({
        "R": {(1,): 0.5},
        "S": {(1, 2): 0.4, (1, 3): 0.7},
    })
    print(RouterEngine().probability(q, db))
"""

from .analysis import Classification, Reason, Verdict, classify, is_ptime
from .core import (
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Variable,
    atom,
    comparison,
    is_hierarchical,
    minimize,
    parse,
    query,
)
from .db import (
    DatabaseFormatError,
    ProbabilisticDatabase,
    Relation,
    SQLiteStore,
    load_database,
    random_database,
    random_database_for_query,
)
from .engines import (
    BruteForceEngine,
    LiftedEngine,
    LineageEngine,
    MonteCarloEngine,
    RouterEngine,
    SafePlanEngine,
    UnsafeQueryError,
    UnsupportedQueryError,
    is_safe_query,
)
from .hardness import Bipartite2DNF, count_via_hk, hk_query, random_formula
from .lineage import exact_probability, ground_answer_lineages, ground_lineage
from .serve import QuerySession, SessionStats

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Bipartite2DNF",
    "BruteForceEngine",
    "Classification",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "DatabaseFormatError",
    "LiftedEngine",
    "LineageEngine",
    "MonteCarloEngine",
    "ProbabilisticDatabase",
    "QuerySession",
    "Reason",
    "Relation",
    "RouterEngine",
    "SessionStats",
    "SQLiteStore",
    "SafePlanEngine",
    "UnsafeQueryError",
    "UnsupportedQueryError",
    "Variable",
    "Verdict",
    "__version__",
    "atom",
    "classify",
    "comparison",
    "count_via_hk",
    "exact_probability",
    "ground_answer_lineages",
    "ground_lineage",
    "hk_query",
    "is_hierarchical",
    "is_ptime",
    "is_safe_query",
    "load_database",
    "minimize",
    "parse",
    "query",
    "random_database",
    "random_database_for_query",
    "random_formula",
]
