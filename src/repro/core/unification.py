"""Most general unifiers of sub-goals and queries (Section 2.1).

Unification always happens between two queries with disjoint variable
sets (the paper renames apart first; callers here can ask for that).
The MGU is computed by union-find over the argument positions of the two
sub-goals; a class containing two distinct constants fails, and a class
containing a constant maps all its variables to that constant.

A unification is only *admissible* for coverage analysis when the
unified query's arithmetic predicates remain satisfiable — this is what
makes the refined covers of Example 2.4 strict: the added ``!=``
predicates kill the offending unifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .atoms import Atom
from .query import ConjunctiveQuery
from .substitution import Substitution
from .terms import Constant, Term, Variable


@dataclass(frozen=True)
class Unification:
    """The result of unifying sub-goal ``left_index`` of ``left`` with
    ``right_index`` of ``right`` (queries assumed variable-disjoint).

    Attributes:
        substitution: the MGU ``theta`` over both queries' variables.
        unified: ``theta(left . right)`` — the conjunction after unification.
        pairs: the set representation ``{(x, y)}`` with ``x`` in
            ``Vars(left)``, ``y`` in ``Vars(right)``, ``theta(x) = theta(y)``.
    """

    left: ConjunctiveQuery
    right: ConjunctiveQuery
    left_index: int
    right_index: int
    substitution: Substitution
    unified: ConjunctiveQuery
    pairs: Tuple[Tuple[Variable, Variable], ...]

    def is_strict(self) -> bool:
        """Def. 2.2: the MGU is a 1-1 substitution for ``left . right``."""
        return _is_one_to_one(self.substitution, self.left, self.right)


def unify_atoms(g1: Atom, g2: Atom) -> Optional[Substitution]:
    """MGU of two atoms, or None when they do not unify.

    Negated sub-goals unify only with sub-goals of the same polarity
    (polarity plays no role in the hierarchy analysis, which works on
    positive parts, but keeping the check makes the function total).
    """
    if g1.relation != g2.relation or g1.arity != g2.arity:
        return None
    if g1.negated != g2.negated:
        return None
    parent: Dict[Term, Term] = {}

    def find(t: Term) -> Term:
        parent.setdefault(t, t)
        while parent[t] != t:
            parent[t] = parent[parent[t]]
            t = parent[t]
        return t

    def union(a: Term, b: Term) -> bool:
        ra, rb = find(a), find(b)
        if ra == rb:
            return True
        if isinstance(ra, Constant) and isinstance(rb, Constant):
            return False
        if isinstance(ra, Constant):
            parent[rb] = ra
        else:
            parent[ra] = rb
        return True

    for t1, t2 in zip(g1.terms, g2.terms):
        if not union(t1, t2):
            return None

    mapping: Dict[Variable, Term] = {}
    for term in list(parent):
        if isinstance(term, Variable):
            root = find(term)
            if root != term:
                mapping[term] = root
    return Substitution(mapping)


def unify_subgoals(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    left_index: int,
    right_index: int,
    check_satisfiable: bool = True,
) -> Optional[Unification]:
    """Unify one sub-goal of each query; None if impossible or vacuous.

    ``left`` and ``right`` must already be variable-disjoint.  When
    ``check_satisfiable`` is set (the default) a unifier that makes the
    combined arithmetic predicates unsatisfiable is rejected — such a
    unifier can never be witnessed by any structure.
    """
    shared = set(left.variables) & set(right.variables)
    if shared:
        raise ValueError(
            f"queries must be variable-disjoint before unification; "
            f"shared: {sorted(v.name for v in shared)}"
        )
    theta = unify_atoms(left.atoms[left_index], right.atoms[right_index])
    if theta is None:
        return None
    unified = left.conjoin(right).apply(theta)
    if check_satisfiable and not unified.is_satisfiable():
        return None
    pairs = _set_representation(theta, left, right)
    return Unification(
        left=left,
        right=right,
        left_index=left_index,
        right_index=right_index,
        substitution=theta,
        unified=unified,
        pairs=pairs,
    )


def all_unifications(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    check_satisfiable: bool = True,
) -> List[Unification]:
    """Every admissible sub-goal-pair unification between two queries."""
    results: List[Unification] = []
    for i in range(len(left.atoms)):
        for j in range(len(right.atoms)):
            unification = unify_subgoals(
                left, right, i, j, check_satisfiable=check_satisfiable
            )
            if unification is not None:
                results.append(unification)
    return results


def self_unifications(
    query: ConjunctiveQuery, check_satisfiable: bool = True
) -> List[Unification]:
    """Unifications between a query and a renamed copy of itself.

    The paper's convention (Example 2.8(b)): "we rename the variables
    before the unification".
    """
    copy, _ = query.rename_apart(query.variables, suffix="_c")
    return all_unifications(query, copy, check_satisfiable=check_satisfiable)


def _set_representation(
    theta: Substitution,
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
) -> Tuple[Tuple[Variable, Variable], ...]:
    pairs: List[Tuple[Variable, Variable]] = []
    for x in left.variables:
        for y in right.variables:
            if theta.apply(x) == theta.apply(y):
                pairs.append((x, y))
    return tuple(pairs)


def _is_one_to_one(
    theta: Substitution,
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
) -> bool:
    for source in (left, right):
        images: List[Term] = []
        for variable in source.variables:
            image = theta.apply(variable)
            if isinstance(image, Constant):
                return False
            images.append(image)
        if len(set(images)) != len(images):
            return False
    return True
