"""Decision procedures for conjunctions of order constraints.

Strict coverages (Section 2.1) attach ``<``/``=``/``!=`` predicates to
queries; deciding which covers are satisfiable and which are redundant
requires reasoning about conjunctions of such atomic constraints over a
dense totally ordered domain.  This module implements:

* satisfiability (union-find for ``=``, cycle detection for ``<``),
* entailment of an atomic predicate from a constraint set,
* the *order type* of a ground tuple (used by the ranking rewrite).

The domain is treated as dense and unbounded (the rationals), which is
sound for query analysis: the paper's complexity statements hold for
arbitrarily large ordered domains.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .predicates import Comparison
from .terms import Constant, Term, Variable


class _UnionFind:
    """Union-find over terms with path compression."""

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent is term or parent == term:
            return parent
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, a: Term, b: Term) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        # Prefer constants as representatives so classes expose their value.
        if isinstance(root_a, Constant):
            self._parent[root_b] = root_a
        else:
            self._parent[root_a] = root_b

    def classes(self) -> Dict[Term, List[Term]]:
        groups: Dict[Term, List[Term]] = {}
        for term in list(self._parent):
            groups.setdefault(self.find(term), []).append(term)
        return groups


class OrderConstraints:
    """A conjunction of atomic order constraints with decision methods.

    The structure is cheap to copy (:meth:`extended`), so exploration of
    alternative covers can branch without mutation.
    """

    def __init__(self, predicates: Iterable[Comparison] = ()) -> None:
        self._predicates: Tuple[Comparison, ...] = tuple(predicates)
        self._solution: Optional[_Solution] = None
        self._solved = False

    @property
    def predicates(self) -> Tuple[Comparison, ...]:
        """The atomic constraints in insertion order."""
        return self._predicates

    def extended(self, *more: Comparison) -> "OrderConstraints":
        """A new constraint set with ``more`` conjoined."""
        return OrderConstraints(self._predicates + tuple(more))

    def _solve(self) -> Optional["_Solution"]:
        if self._solved:
            return self._solution
        self._solved = True
        self._solution = _Solution.build(self._predicates)
        return self._solution

    def is_satisfiable(self) -> bool:
        """True iff some assignment over a dense ordered domain satisfies all."""
        return self._solve() is not None

    def entails(self, pred: Comparison) -> bool:
        """True iff every satisfying assignment also satisfies ``pred``.

        Implemented as: the conjunction with each disjunct of the
        negation of ``pred`` is unsatisfiable.  An unsatisfiable
        constraint set entails everything.
        """
        if not self.is_satisfiable():
            return True
        return all(
            not self.extended(disjunct).is_satisfiable()
            for disjunct in pred.negation_disjuncts()
        )

    def equivalent_terms(self, a: Term, b: Term) -> bool:
        """True iff the constraints force ``a = b``."""
        return self.entails(Comparison("=", a, b))

    def satisfied_by(self, assignment: Dict[Variable, object]) -> bool:
        """Evaluate all predicates under a concrete variable assignment."""
        def value(term: Term):
            if isinstance(term, Constant):
                return term.value
            return assignment[term]

        return all(
            pred.evaluate(value(pred.left), value(pred.right))
            for pred in self._predicates
        )

    def __iter__(self):
        return iter(self._predicates)

    def __len__(self) -> int:
        return len(self._predicates)

    def __str__(self) -> str:
        return ", ".join(str(p) for p in self._predicates) or "(true)"

    def __repr__(self) -> str:
        return f"OrderConstraints({self})"


class _Solution:
    """Internal normal form: equivalence classes plus a strict order DAG."""

    def __init__(
        self,
        representative: Dict[Term, Term],
        less_edges: Set[Tuple[Term, Term]],
    ) -> None:
        self.representative = representative
        self.less_edges = less_edges

    @staticmethod
    def build(predicates: Sequence[Comparison]) -> Optional["_Solution"]:
        uf = _UnionFind()
        terms: Set[Term] = set()
        for pred in predicates:
            terms.update(pred.terms)
        for term in terms:
            uf.find(term)

        # 1. Merge equalities; reject constant clashes.
        for pred in predicates:
            if pred.op == "=":
                uf.union(pred.left, pred.right)
        rep = {t: uf.find(t) for t in terms}
        for group in uf.classes().values():
            constants = {t for t in group if isinstance(t, Constant)}
            if len(constants) > 1:
                return None

        # 2. Strict edges between representatives, including the true
        #    order among the constants that appear.
        less: Set[Tuple[Term, Term]] = set()
        for pred in predicates:
            if pred.op == "<":
                less.add((rep[pred.left], rep[pred.right]))
        constants = sorted(
            {t for t in terms if isinstance(t, Constant)},
        )
        for i, low in enumerate(constants):
            for high in constants[i + 1:]:
                low_rep, high_rep = rep.get(low, low), rep.get(high, high)
                if low_rep != high_rep:
                    less.add((low_rep, high_rep))

        # 3. No strict cycle may exist (a < ... < a is unsatisfiable).
        if _has_cycle(less):
            return None

        # 4. Disequalities must not connect merged classes.
        for pred in predicates:
            if pred.op == "!=" and rep[pred.left] == rep[pred.right]:
                return None
        return _Solution(rep, less)


def _has_cycle(edges: Set[Tuple[Term, Term]]) -> bool:
    graph: Dict[Term, List[Term]] = {}
    for src, dst in edges:
        graph.setdefault(src, []).append(dst)
        graph.setdefault(dst, [])
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    for start in graph:
        if color[start] != WHITE:
            continue
        stack: List[Tuple[Term, int]] = [(start, 0)]
        color[start] = GRAY
        while stack:
            node, idx = stack[-1]
            neighbours = graph[node]
            if idx == len(neighbours):
                stack.pop()
                color[node] = BLACK
                continue
            stack[-1] = (node, idx + 1)
            nxt = neighbours[idx]
            if color[nxt] == GRAY:
                return True
            if color[nxt] == WHITE:
                color[nxt] = GRAY
                stack.append((nxt, 0))
    return False


def order_type(values: Sequence) -> Tuple[str, ...]:
    """The order type of a concrete tuple, as canonical tokens.

    The order type records, for every pair of positions ``i < j``,
    whether ``values[i] < values[j]``, ``=``, or ``>``.  Two tuples with
    the same order type satisfy exactly the same restricted arithmetic
    predicates over their positions; this is the semantic basis of the
    ranking rewrite (``repro.engines.ranking``).

    >>> order_type((3, 3, 5))
    ('0=1', '0<2', '1<2')
    """
    tokens: List[str] = []
    for i in range(len(values)):
        for j in range(i + 1, len(values)):
            left, right = values[i], values[j]
            if left == right:
                tokens.append(f"{i}={j}")
            elif _lt(left, right):
                tokens.append(f"{i}<{j}")
            else:
                tokens.append(f"{i}>{j}")
    return tuple(tokens)


def _lt(a, b) -> bool:
    try:
        return a < b
    except TypeError:
        return (type(a).__name__, str(a)) < (type(b).__name__, str(b))
