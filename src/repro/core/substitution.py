"""Substitutions: finite maps from variables to terms.

Substitutions drive unification (Section 2.1 "Unifiers"), grounding of
expansion variables (Section 2.3), and homomorphism search.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .terms import Constant, Term, Variable, make_term


class Substitution:
    """An immutable map ``Variable -> Term``.

    Application is *non-recursive*: the image terms are used verbatim.
    Compose two substitutions with :meth:`compose` when chained
    application is needed.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Mapping[Variable, Term]] = None) -> None:
        items: Dict[Variable, Term] = {}
        if mapping:
            for key, value in mapping.items():
                if not isinstance(key, Variable):
                    raise TypeError(f"substitution keys must be variables, got {key!r}")
                items[key] = make_term(value)
        self._mapping = items

    @classmethod
    def of(cls, **bindings) -> "Substitution":
        """Build from keyword variable names: ``Substitution.of(x='a', y=3)``."""
        return cls({Variable(name): make_term(value) for name, value in bindings.items()})

    def apply(self, term: Term) -> Term:
        """Image of a single term (identity on constants and unbound variables)."""
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        return term

    def compose(self, after: "Substitution") -> "Substitution":
        """The substitution equivalent to applying ``self`` then ``after``."""
        result: Dict[Variable, Term] = {
            var: after.apply(image) for var, image in self._mapping.items()
        }
        for var, image in after.items():
            result.setdefault(var, image)
        return Substitution(result)

    def bind(self, variable: Variable, term: Term) -> "Substitution":
        """A new substitution with one extra binding."""
        updated = dict(self._mapping)
        updated[variable] = make_term(term)
        return Substitution(updated)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """The sub-map whose keys lie in ``variables``."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._mapping.items() if v in keep})

    def is_one_to_one(self) -> bool:
        """True for a 1-1 substitution in the paper's sense (Sec. 2.1):

        no variable maps to a constant, and no two distinct variables
        share an image.
        """
        images = list(self._mapping.values())
        if any(isinstance(image, Constant) for image in images):
            return False
        return len(set(images)) == len(images)

    def as_pairs(self) -> Tuple[Tuple[Variable, Term], ...]:
        """Sorted (variable, image) pairs; the paper's set representation."""
        return tuple(sorted(self._mapping.items(), key=lambda kv: kv[0].name))

    def items(self) -> Iterator[Tuple[Variable, Term]]:
        return iter(self._mapping.items())

    def keys(self):
        return self._mapping.keys()

    def get(self, variable: Variable, default: Optional[Term] = None) -> Optional[Term]:
        return self._mapping.get(variable, default)

    def __getitem__(self, variable: Variable) -> Term:
        return self._mapping[variable]

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __bool__(self) -> bool:
        return bool(self._mapping)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __str__(self) -> str:
        inner = ", ".join(f"{v} -> {t}" for v, t in self.as_pairs())
        return "{" + inner + "}"

    def __repr__(self) -> str:
        return f"Substitution({self})"


IDENTITY = Substitution()


def fresh_renaming(variables: Iterable[Variable], taken: Iterable[Variable],
                   suffix: str = "_r") -> Substitution:
    """Rename ``variables`` away from ``taken`` with fresh names.

    Used before unifying two (copies of) queries, which the paper always
    does on disjoint variable sets.
    """
    taken_names = {v.name for v in taken}
    mapping: Dict[Variable, Term] = {}
    for variable in variables:
        if variable.name not in taken_names:
            taken_names.add(variable.name)
            continue
        counter = 0
        candidate = f"{variable.name}{suffix}"
        while candidate in taken_names:
            counter += 1
            candidate = f"{variable.name}{suffix}{counter}"
        taken_names.add(candidate)
        mapping[variable] = Variable(candidate)
    return Substitution(mapping)
