"""Terms of the conjunctive-query calculus: variables and constants.

The paper works over first-order structures whose active domain is a set
of constants drawn from an *ordered* domain (Section 2.1 introduces
arithmetic predicates ``u = v``, ``u != v``, ``u < v``).  We therefore
require constant values to be orderable and hashable; in practice they
are ints or strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Union


@dataclass(frozen=True, slots=True)
@total_ordering
class Variable:
    """A query variable, identified by name.

    Variables compare and hash by name only, so renaming has to be done
    explicitly through substitutions (:mod:`repro.core.substitution`).
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Variable):
            return self.name < other.name
        if isinstance(other, Constant):
            # Arbitrary but total order across term kinds: variables
            # sort before constants.  Only used for canonical ordering
            # of term collections, never for semantics.
            return True
        return NotImplemented


@dataclass(frozen=True, slots=True)
@total_ordering
class Constant:
    """A domain constant wrapping an orderable Python value."""

    value: Union[int, str, float]

    def __str__(self) -> str:
        return f"'{self.value}'" if isinstance(self.value, str) else str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def _key(self) -> tuple:
        # Order first by type name so int/str mixes stay totally ordered.
        return (type(self.value).__name__, self.value)

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Constant):
            return self._key() < other._key()
        if isinstance(other, Variable):
            return False
        return NotImplemented


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return True iff ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True iff ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def var(name: str) -> Variable:
    """Shorthand constructor for a variable."""
    return Variable(name)


def const(value: Union[int, str, float]) -> Constant:
    """Shorthand constructor for a constant."""
    return Constant(value)


def make_term(token: Union[Term, int, float, str]) -> Term:
    """Coerce a Python value or token into a term.

    Strings are interpreted with the usual datalog convention: an
    identifier starting with a lowercase letter ``x``–``z`` or
    containing no quotes is *not* automatically a variable; instead we
    follow the convention used throughout this package:

    * existing :class:`Variable`/:class:`Constant` instances pass through,
    * ints and floats become constants,
    * strings that are single-quoted (``"'a'"``) become string constants,
    * all other strings become variables.
    """
    if isinstance(token, (Variable, Constant)):
        return token
    if isinstance(token, (int, float)):
        return Constant(token)
    if isinstance(token, str):
        stripped = token.strip()
        if len(stripped) >= 2 and stripped[0] == stripped[-1] == "'":
            return Constant(stripped[1:-1])
        if stripped.isdigit() or (stripped.startswith("-") and stripped[1:].isdigit()):
            return Constant(int(stripped))
        return Variable(stripped)
    raise TypeError(f"cannot interpret {token!r} as a term")
