"""Relational atoms (the paper's *sub-goals*).

An atom is a relation symbol applied to a tuple of terms, optionally
negated (Section 3.2, "Queries with Negated Subgoals").  Atoms are
immutable value objects; queries are built from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

from .terms import Constant, Term, Variable, make_term


@dataclass(frozen=True, slots=True)
class Atom:
    """A sub-goal ``R(t1, ..., tk)`` or its negation ``not R(t1, ..., tk)``.

    Attributes:
        relation: relation symbol name.
        terms: tuple of :class:`Variable` / :class:`Constant`.
        negated: True for a negative sub-goal.
    """

    relation: str
    terms: Tuple[Term, ...]
    negated: bool = field(default=False)

    def __post_init__(self) -> None:
        coerced = tuple(make_term(t) for t in self.terms)
        object.__setattr__(self, "terms", coerced)

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables in positional order of first occurrence."""
        seen: dict[Variable, None] = {}
        for term in self.terms:
            if isinstance(term, Variable):
                seen.setdefault(term, None)
        return tuple(seen)

    @property
    def constants(self) -> Tuple[Constant, ...]:
        """Distinct constants in positional order of first occurrence."""
        seen: dict[Constant, None] = {}
        for term in self.terms:
            if isinstance(term, Constant):
                seen.setdefault(term, None)
        return tuple(seen)

    def is_ground(self) -> bool:
        """True iff the atom contains no variables."""
        return all(isinstance(t, Constant) for t in self.terms)

    def positions_of(self, term: Term) -> Tuple[int, ...]:
        """All argument positions at which ``term`` occurs."""
        return tuple(i for i, t in enumerate(self.terms) if t == term)

    def positive(self) -> "Atom":
        """The positive version of this atom (identity if not negated)."""
        if not self.negated:
            return self
        return Atom(self.relation, self.terms, negated=False)

    def negate(self) -> "Atom":
        """The atom with its polarity flipped."""
        return Atom(self.relation, self.terms, negated=not self.negated)

    def with_terms(self, terms: Iterable[Term]) -> "Atom":
        """Copy of this atom with a new argument tuple."""
        return Atom(self.relation, tuple(terms), negated=self.negated)

    def __str__(self) -> str:
        body = f"{self.relation}({', '.join(str(t) for t in self.terms)})"
        return f"not {body}" if self.negated else body

    def __repr__(self) -> str:
        return f"Atom({self})"


def atom(relation: str, *terms, negated: bool = False) -> Atom:
    """Convenience constructor coercing raw tokens into terms.

    >>> atom("R", "x", 3)
    Atom(R(x, 3))
    """
    return Atom(relation, tuple(make_term(t) for t in terms), negated=negated)
