"""Conjunctive queries (Boolean or with head variables).

A query is a conjunction of sub-goals (atoms) plus restricted arithmetic
predicates (Section 1).  By default every variable is existentially
quantified — a *Boolean* query.  An optional ``head`` tuple of
variables turns it into an *answer-tuple* query ``Q(x̄) :- body``: the
free head variables range over the active domain, and each valuation
making the body true is an answer tuple (MystiQ's ranked-answers
workload from the paper's introduction).  Conjunction is idempotent, so
atoms and predicates are stored deduplicated in a canonical order;
syntactic equality of :class:`ConjunctiveQuery` objects is equality of
those sets plus the head.  Semantic equivalence (via homomorphisms)
lives in :mod:`repro.core.homomorphism`.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .atoms import Atom
from .orders import OrderConstraints
from .predicates import Comparison
from .substitution import Substitution, fresh_renaming
from .terms import Constant, Term, Variable


class ConjunctiveQuery:
    """A conjunctive query ``q = g1, ..., gm, p1, ..., pn``.

    Attributes:
        atoms: deduplicated sub-goals in canonical order.
        predicates: deduplicated arithmetic predicates in canonical order.
        head: ``None`` for a Boolean query, otherwise the tuple of head
            terms of ``Q(x̄) :- body`` (variables, or constants left by
            substitution).  Head variables must occur in the body.
    """

    __slots__ = ("atoms", "predicates", "head", "__dict__")

    def __init__(
        self,
        atoms: Iterable[Atom],
        predicates: Iterable[Comparison] = (),
        head: Optional[Sequence[Term]] = None,
    ) -> None:
        self.atoms: Tuple[Atom, ...] = _canonical_atoms(atoms)
        self.predicates: Tuple[Comparison, ...] = _canonical_predicates(predicates)
        self.head: Optional[Tuple[Term, ...]] = _validated_head(head, self.atoms)

    # ------------------------------------------------------------------
    # Head (answer-tuple queries)
    # ------------------------------------------------------------------

    @property
    def is_boolean(self) -> bool:
        """True for a Boolean query (no head)."""
        return self.head is None

    @cached_property
    def head_variables(self) -> Tuple[Variable, ...]:
        """Distinct head variables, in head order (empty when Boolean)."""
        seen: Dict[Variable, None] = {}
        for term in self.head or ():
            if isinstance(term, Variable):
                seen.setdefault(term, None)
        return tuple(seen)

    def boolean(self) -> "ConjunctiveQuery":
        """The Boolean (existential-closure) query: head dropped."""
        if self.head is None:
            return self
        return ConjunctiveQuery(self.atoms, self.predicates)

    def bind_head(self, values: Sequence) -> "ConjunctiveQuery":
        """The residual *Boolean* query for one answer tuple.

        ``values`` aligns positionally with ``head``; each head variable
        is replaced by the corresponding constant.  A repeated head
        variable (or a constant head term) must be given a consistent
        value.
        """
        if self.head is None:
            raise ValueError("bind_head on a Boolean query")
        if len(values) != len(self.head):
            raise ValueError(
                f"answer arity {len(values)} != head arity {len(self.head)}"
            )
        mapping: Dict[Variable, Term] = {}
        for term, value in zip(self.head, values):
            constant = value if isinstance(value, Constant) else Constant(value)
            if isinstance(term, Variable):
                bound = mapping.setdefault(term, constant)
                if bound != constant:
                    raise ValueError(
                        f"inconsistent values {bound}, {constant} for head "
                        f"variable {term}"
                    )
            elif term != constant:
                raise ValueError(
                    f"answer value {constant} does not match head constant {term}"
                )
        bound_query = self.apply(Substitution(mapping))
        return ConjunctiveQuery(bound_query.atoms, bound_query.predicates)

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @cached_property
    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables, in order of first occurrence."""
        seen: Dict[Variable, None] = {}
        for atom in self.atoms:
            for variable in atom.variables:
                seen.setdefault(variable, None)
        for pred in self.predicates:
            for variable in pred.variables:
                seen.setdefault(variable, None)
        return tuple(seen)

    @cached_property
    def constants(self) -> Tuple[Constant, ...]:
        """Distinct constants appearing in atoms or predicates."""
        seen: Dict[Constant, None] = {}
        for atom in self.atoms:
            for constant in atom.constants:
                seen.setdefault(constant, None)
        for pred in self.predicates:
            for term in pred.terms:
                if isinstance(term, Constant):
                    seen.setdefault(term, None)
        return tuple(seen)

    @cached_property
    def relations(self) -> Tuple[str, ...]:
        """Distinct relation symbols in canonical order."""
        return tuple(sorted({atom.relation for atom in self.atoms}))

    @property
    def positive_atoms(self) -> Tuple[Atom, ...]:
        return tuple(a for a in self.atoms if not a.negated)

    @property
    def negative_atoms(self) -> Tuple[Atom, ...]:
        return tuple(a for a in self.atoms if a.negated)

    def is_ground(self) -> bool:
        """True iff the query has no variables."""
        return not self.variables

    def is_range_restricted(self) -> bool:
        """Every variable occurs in at least one positive sub-goal."""
        covered: Set[Variable] = set()
        for atom in self.positive_atoms:
            covered.update(atom.variables)
        return all(v in covered for v in self.variables)

    def has_self_join(self) -> bool:
        """True iff some relation symbol occurs in two or more sub-goals."""
        seen: Set[str] = set()
        for atom in self.atoms:
            if atom.relation in seen:
                return True
            seen.add(atom.relation)
        return False

    @cached_property
    def order_constraints(self) -> OrderConstraints:
        """The predicate set as a decidable constraint conjunction."""
        return OrderConstraints(self.predicates)

    def is_satisfiable(self) -> bool:
        """False when the arithmetic predicates are contradictory."""
        return self.order_constraints.is_satisfiable()

    # ------------------------------------------------------------------
    # sub-goal sets and variable occurrence
    # ------------------------------------------------------------------

    def subgoals_of(self, variable: Variable) -> FrozenSet[int]:
        """``sg(x)``: the indices of sub-goals containing ``variable``."""
        return frozenset(
            i for i, atom in enumerate(self.atoms) if variable in atom.variables
        )

    @cached_property
    def subgoal_map(self) -> Dict[Variable, FrozenSet[int]]:
        """``sg`` for every variable of the query."""
        return {v: self.subgoals_of(v) for v in self.variables}

    def max_variables_per_subgoal(self) -> int:
        """``V(q)``: max number of distinct variables in one sub-goal.

        Corollary 3.7 bounds the safe-evaluation formula size by
        ``O(N^{V(q)})``.
        """
        if not self.atoms:
            return 0
        return max(len(atom.variables) for atom in self.atoms)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def apply(self, substitution: Substitution) -> "ConjunctiveQuery":
        """The query with ``substitution`` applied to atoms, predicates
        and head."""
        new_atoms = [
            atom.with_terms(substitution.apply(t) for t in atom.terms)
            for atom in self.atoms
        ]
        new_preds = [
            Comparison(p.op, substitution.apply(p.left), substitution.apply(p.right))
            for p in self.predicates
        ]
        new_head = (
            None
            if self.head is None
            else tuple(substitution.apply(t) for t in self.head)
        )
        return ConjunctiveQuery(new_atoms, new_preds, head=new_head)

    def substitute(self, variable: Variable, term: Term) -> "ConjunctiveQuery":
        """``q[a/x]``: replace one variable."""
        return self.apply(Substitution({variable: term}))

    def rename_apart(self, taken: Iterable[Variable],
                     suffix: str = "_r") -> Tuple["ConjunctiveQuery", Substitution]:
        """A variable-disjoint copy w.r.t. ``taken``, plus the renaming used."""
        renaming = fresh_renaming(self.variables, taken, suffix=suffix)
        return self.apply(renaming), renaming

    def conjoin(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery":
        """The conjunction ``q q'`` (caller renames apart when needed).

        The receiver's head (if any) is kept; the argument's is dropped.
        """
        return ConjunctiveQuery(
            self.atoms + other.atoms,
            self.predicates + other.predicates,
            head=self.head,
        )

    def without_predicates(self) -> "ConjunctiveQuery":
        """The query with all arithmetic predicates dropped."""
        return ConjunctiveQuery(self.atoms, head=self.head)

    def positive_part(self) -> "ConjunctiveQuery":
        """All sub-goals made positive (Def. 3.9's inversion-freeness test)."""
        return ConjunctiveQuery(
            tuple(a.positive() for a in self.atoms), self.predicates,
            head=self.head,
        )

    def drop_trivial_predicates(self) -> "ConjunctiveQuery":
        """Remove predicates entailed by the empty constraint set.

        For example ``1 < 2`` between constants, or ``x = x``.
        """
        empty = OrderConstraints()
        kept = [p for p in self.predicates if not empty.entails(p)]
        if len(kept) == len(self.predicates):
            return self
        return ConjunctiveQuery(self.atoms, kept, head=self.head)

    # ------------------------------------------------------------------
    # Connected components (the paper's factors)
    # ------------------------------------------------------------------

    def connected_components(self) -> List["ConjunctiveQuery"]:
        """Split into connected components.

        Two sub-goals are connected when they share a variable.  Each
        ground (constant) sub-goal is its own component, following
        footnote 3: "strictly speaking each constant sub-goal should be
        a distinct factor".  Arithmetic predicates are attached to every
        component containing at least one of their variables (restricted
        predicates never straddle two components of a satisfiable
        query); variable-free predicates go to every component.
        """
        if not self.atoms:
            return []
        parent: Dict[int, int] = {i: i for i in range(len(self.atoms))}

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        occurrences: Dict[Variable, List[int]] = {}
        for idx, atom in enumerate(self.atoms):
            for variable in atom.variables:
                occurrences.setdefault(variable, []).append(idx)
        for indices in occurrences.values():
            for other in indices[1:]:
                union(indices[0], other)

        groups: Dict[int, List[Atom]] = {}
        group_vars: Dict[int, Set[Variable]] = {}
        for idx, atom in enumerate(self.atoms):
            root = find(idx)
            groups.setdefault(root, []).append(atom)
            group_vars.setdefault(root, set()).update(atom.variables)

        components: List[ConjunctiveQuery] = []
        for root in sorted(groups, key=lambda r: str(groups[r][0])):
            atoms = groups[root]
            variables = group_vars[root]
            preds = [
                p for p in self.predicates
                if (not p.variables) or any(v in variables for v in p.variables)
            ]
            components.append(ConjunctiveQuery(atoms, preds))
        return components

    def is_connected(self) -> bool:
        """True iff the query has exactly one connected component."""
        return len(self.connected_components()) <= 1

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def _key(self) -> Tuple:
        return (self.atoms, self.predicates, self.head)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __len__(self) -> int:
        return len(self.atoms)

    def __str__(self) -> str:
        parts = [str(a) for a in self.atoms] + [str(p) for p in self.predicates]
        body = ", ".join(parts) if parts else "(empty)"
        if self.head is None:
            return body
        head = ", ".join(str(t) for t in self.head)
        return f"Q({head}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self})"


def _atom_sort_key(atom: Atom) -> tuple:
    return (atom.relation, atom.negated, tuple(str(t) for t in atom.terms))


def _canonical_atoms(atoms: Iterable[Atom]) -> Tuple[Atom, ...]:
    unique: Dict[Atom, None] = {}
    for atom in atoms:
        if not isinstance(atom, Atom):
            raise TypeError(f"expected Atom, got {atom!r}")
        unique.setdefault(atom, None)
    return tuple(sorted(unique, key=_atom_sort_key))


def _validated_head(
    head: Optional[Sequence[Term]], atoms: Tuple[Atom, ...]
) -> Optional[Tuple[Term, ...]]:
    if head is None:
        return None
    # Positive occurrences only: a head variable seen just in negated
    # sub-goals has no range-restricted answer set, and engines would
    # diverge between silent emptiness and raw ValueErrors.
    body_variables: Set[Variable] = set()
    for atom in atoms:
        if not atom.negated:
            body_variables.update(atom.variables)
    validated: List[Term] = []
    for term in head:
        if not isinstance(term, (Variable, Constant)):
            raise TypeError(f"head term must be a Term, got {term!r}")
        if isinstance(term, Variable) and term not in body_variables:
            raise ValueError(
                f"head variable {term} does not occur in a positive sub-goal "
                f"of the query body"
            )
        validated.append(term)
    return tuple(validated)


def _canonical_predicates(predicates: Iterable[Comparison]) -> Tuple[Comparison, ...]:
    unique: Dict[Comparison, None] = {}
    for pred in predicates:
        if not isinstance(pred, Comparison):
            raise TypeError(f"expected Comparison, got {pred!r}")
        unique.setdefault(pred, None)
    return tuple(sorted(unique, key=str))


def canonical_string(query) -> str:
    """A renaming-invariant (best effort) textual form.

    Variables are renamed ``v0, v1, ...`` following the canonical atom
    order, iterating to a fixpoint.  Used for deduplicating factors and
    for cycle detection; it is a faithful rendering, so distinct
    queries never collide — at worst two isomorphic queries may render
    differently (harmless for its callers).

    A :class:`~repro.core.union.UnionQuery` renders as its disjuncts'
    canonical strings, sorted and ``" | "``-joined — invariant under
    disjunct order and per-disjunct renaming, so union shapes key the
    serving layer's prepared-query cache and shard hashing exactly like
    conjunctive shapes.
    """
    from .substitution import Substitution  # local import: avoid cycle
    from .terms import Variable as _Variable

    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:  # UnionQuery, without an import cycle
        return " | ".join(sorted(canonical_string(d) for d in disjuncts))
    current = query
    previous = None
    for _ in range(5):
        mapping = {}
        for variable in current.variables:
            mapping[variable] = _Variable(f"v{len(mapping)}")
        renamed = current.apply(Substitution(mapping))
        text = str(renamed)
        if text == previous:
            break
        previous = text
        current = renamed
    return previous if previous is not None else str(current)


def query(*parts, head: Optional[Sequence] = None) -> ConjunctiveQuery:
    """Build a query from a mix of atoms and comparisons.

    ``head`` (variable names or Terms) makes it an answer-tuple query.

    >>> from repro.core.atoms import atom
    >>> from repro.core.predicates import comparison
    >>> q = query(atom("R", "x"), atom("S", "x", "y"), comparison("x", "<", "y"))
    """
    atoms: List[Atom] = []
    preds: List[Comparison] = []
    for part in parts:
        if isinstance(part, Atom):
            atoms.append(part)
        elif isinstance(part, Comparison):
            preds.append(part)
        elif isinstance(part, ConjunctiveQuery):
            atoms.extend(part.atoms)
            preds.extend(part.predicates)
        else:
            raise TypeError(f"cannot add {part!r} to a conjunctive query")
    head_terms: Optional[List[Term]] = None
    if head is not None:
        head_terms = [
            t if isinstance(t, (Variable, Constant)) else Variable(t)
            for t in head
        ]
    return ConjunctiveQuery(atoms, preds, head=head_terms)
