"""Core conjunctive-query calculus.

Everything the dichotomy analysis needs to talk about queries: terms,
atoms, arithmetic predicates, order reasoning, substitutions, parsing,
unification, homomorphisms, and the hierarchy structure.
"""

from .atoms import Atom, atom
from .hierarchy import (
    HierarchyNode,
    HierarchyTree,
    NonHierarchicalWitness,
    below,
    equivalent_vars,
    find_non_hierarchical_witness,
    is_hierarchical,
    maximal_variables,
    root_variables,
    strictly_below,
    variable_classes,
)
from .homomorphism import (
    contained_in,
    equivalent,
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    is_minimal,
    minimize,
)
from .orders import OrderConstraints, order_type
from .parser import QueryParseError, parse
from .predicates import Comparison, comparison, trichotomy
from .query import ConjunctiveQuery, query
from .substitution import IDENTITY, Substitution, fresh_renaming
from .terms import Constant, Term, Variable, const, is_constant, is_variable, var
from .union import (
    AnyQuery,
    UnionQuery,
    disjuncts_of,
    minimize_ucq_in_cnf,
    minimize_ucq_in_dnf,
    shatter_constants,
    ucq_cnf,
    union_contained_in,
    union_equivalent,
)
from .unification import (
    Unification,
    all_unifications,
    self_unifications,
    unify_atoms,
    unify_subgoals,
)

__all__ = [
    "AnyQuery",
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "HierarchyNode",
    "HierarchyTree",
    "IDENTITY",
    "NonHierarchicalWitness",
    "OrderConstraints",
    "QueryParseError",
    "Substitution",
    "Term",
    "Unification",
    "UnionQuery",
    "Variable",
    "all_unifications",
    "atom",
    "below",
    "comparison",
    "const",
    "contained_in",
    "disjuncts_of",
    "equivalent",
    "equivalent_vars",
    "find_homomorphism",
    "find_non_hierarchical_witness",
    "fresh_renaming",
    "has_homomorphism",
    "homomorphisms",
    "is_constant",
    "is_hierarchical",
    "is_minimal",
    "is_variable",
    "maximal_variables",
    "minimize",
    "minimize_ucq_in_cnf",
    "minimize_ucq_in_dnf",
    "order_type",
    "parse",
    "query",
    "root_variables",
    "self_unifications",
    "shatter_constants",
    "strictly_below",
    "trichotomy",
    "ucq_cnf",
    "unify_atoms",
    "unify_subgoals",
    "union_contained_in",
    "union_equivalent",
    "var",
    "variable_classes",
]
