"""Arithmetic predicates between terms (Section 2.1).

The paper allows *restricted* arithmetic predicates ``u = v``,
``u != v`` and ``u < v`` between a variable and a constant or between
two co-occurring variables.  We represent them as normalized value
objects; ``>`` and ``>=``/``<=`` inputs are normalized away so that
equality of predicate objects coincides with logical equality of the
atomic constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .terms import Constant, Term, Variable, make_term

#: Operators kept after normalization.
NORMAL_OPS = ("<", "=", "!=")

_SWAP = {">": "<", ">=": "<="}


@dataclass(frozen=True, slots=True)
class Comparison:
    """An atomic order constraint ``left op right`` with op in {<, =, !=}.

    Commutative operators (``=``, ``!=``) store their operands sorted so
    that ``x = y`` and ``y = x`` are the same object value.
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        op, left, right = self.op, make_term(self.left), make_term(self.right)
        if op in _SWAP:
            op = _SWAP[op]
            left, right = right, left
        if op == "<=":
            raise ValueError(
                "non-strict comparisons are not part of the predicate "
                "language; decompose '<=' into '<' or '=' covers"
            )
        if op not in NORMAL_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")
        if op in ("=", "!=") and _term_key(right) < _term_key(left):
            left, right = right, left
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    @property
    def terms(self) -> Tuple[Term, Term]:
        """The two operand terms."""
        return (self.left, self.right)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Variables among the operands."""
        return tuple(t for t in self.terms if isinstance(t, Variable))

    def negation_disjuncts(self) -> Tuple["Comparison", ...]:
        """Atomic disjuncts equivalent to the negation of this predicate.

        Over a totally ordered domain: ``not (a < b)`` is
        ``a = b or b < a``; ``not (a = b)`` is ``a < b or b < a``;
        ``not (a != b)`` is ``a = b``.
        """
        a, b = self.left, self.right
        if self.op == "<":
            return (Comparison("=", a, b), Comparison("<", b, a))
        if self.op == "=":
            return (Comparison("<", a, b), Comparison("<", b, a))
        return (Comparison("=", a, b),)

    def evaluate(self, left_value, right_value) -> bool:
        """Evaluate against concrete Python values."""
        if self.op == "<":
            return left_value < right_value
        if self.op == "=":
            return left_value == right_value
        return left_value != right_value

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    def __repr__(self) -> str:
        return f"Comparison({self})"


def _term_key(term: Term) -> tuple:
    if isinstance(term, Variable):
        return (0, term.name)
    value = term.value
    return (1, type(value).__name__, str(value))


def comparison(left, op: str, right) -> Comparison:
    """Convenience constructor: ``comparison('x', '<', 'y')``."""
    return Comparison(op, make_term(left), make_term(right))


def trichotomy(left: Term, right: Term) -> Tuple[Comparison, Comparison, Comparison]:
    """The three mutually exclusive order types of a term pair.

    Used to build the canonical coverage ``C<(q)`` (Section 2.1): for
    each co-occurring pair one of ``u < v``, ``u = v``, ``u > v`` holds.
    """
    return (
        Comparison("<", left, right),
        Comparison("=", left, right),
        Comparison("<", right, left),
    )


def constants_order_consistent(pred: Comparison) -> bool:
    """For a predicate between two constants, check it against reality.

    Returns True when at least one operand is a variable (nothing to
    check), otherwise evaluates the comparison on the constant values.
    """
    if isinstance(pred.left, Constant) and isinstance(pred.right, Constant):
        try:
            return pred.evaluate(pred.left.value, pred.right.value)
        except TypeError:
            # Incomparable constant types (e.g. int vs str): use the
            # canonical cross-type ordering from Constant.
            if pred.op == "<":
                return pred.left < pred.right
            if pred.op == "=":
                return pred.left == pred.right
            return pred.left != pred.right
    return True
