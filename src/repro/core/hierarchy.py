"""The hierarchy structure of a conjunctive query (Definition 1.2).

For a query ``q`` and variable ``x``, ``sg(x)`` is the set of sub-goals
containing ``x``.  The query is *hierarchical* when for any two
variables the sets ``sg(x)``, ``sg(y)`` are disjoint or nested.  This
module exposes the preorder ``x ⊑ y`` (written ``below``), equivalence
``x ≡ y``, strict comparison ``x ⊏ y``, maximal variables, the
hierarchy tree of a connected query (Section 3.4), and a witness object
explaining non-hierarchicality (used by the classifier and by the
hardness construction of Corollary B.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .query import ConjunctiveQuery
from .terms import Variable


@dataclass(frozen=True)
class NonHierarchicalWitness:
    """Variables ``x, y`` with crossing sub-goal sets, plus witness atoms.

    ``only_x`` contains ``x`` but not ``y``; ``shared`` contains both;
    ``only_y`` contains ``y`` but not ``x``.  This is exactly the
    ``R1(v1), R2(v2), R3(v3)`` pattern of Theorem B.5.
    """

    x: Variable
    y: Variable
    only_x: int
    shared: int
    only_y: int

    def describe(self, query: ConjunctiveQuery) -> str:
        return (
            f"sg({self.x}) and sg({self.y}) cross: "
            f"{query.atoms[self.only_x]} has {self.x} only, "
            f"{query.atoms[self.shared]} has both, "
            f"{query.atoms[self.only_y]} has {self.y} only"
        )


def below(query: ConjunctiveQuery, x: Variable, y: Variable) -> bool:
    """``x ⊑ y``: every sub-goal containing ``x`` also contains ``y``.

    Note the direction: the paper writes ``x ⊑ y`` for
    ``sg(x) ⊆ sg(y)``, so ``y`` is the "bigger" (more widely occurring)
    variable.
    """
    return query.subgoal_map[x] <= query.subgoal_map[y]


def equivalent_vars(query: ConjunctiveQuery, x: Variable, y: Variable) -> bool:
    """``x ≡ y``: identical sub-goal sets."""
    return query.subgoal_map[x] == query.subgoal_map[y]


def strictly_below(query: ConjunctiveQuery, x: Variable, y: Variable) -> bool:
    """``x ⊏ y``: ``sg(x) ⊂ sg(y)`` strictly."""
    return query.subgoal_map[x] < query.subgoal_map[y]


def find_non_hierarchical_witness(
    query: ConjunctiveQuery,
) -> Optional[NonHierarchicalWitness]:
    """A crossing variable pair, or None when the query is hierarchical."""
    sg = query.subgoal_map
    variables = query.variables
    for i, x in enumerate(variables):
        for y in variables[i + 1:]:
            sx, sy = sg[x], sg[y]
            common = sx & sy
            if not common or sx <= sy or sy <= sx:
                continue
            return NonHierarchicalWitness(
                x=x,
                y=y,
                only_x=min(sx - sy),
                shared=min(common),
                only_y=min(sy - sx),
            )
    return None


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """Definition 1.2 applied to the query as written.

    The paper's *property*-level notion minimizes first; use
    ``is_hierarchical(minimize(q))`` for that reading.
    """
    return find_non_hierarchical_witness(query) is None


def maximal_variables(query: ConjunctiveQuery) -> List[Variable]:
    """Variables ``x`` maximal under ⊑: ``y ⊒ x`` implies ``x ⊒ y``."""
    result: List[Variable] = []
    for x in query.variables:
        if all(
            not strictly_below(query, x, y)
            for y in query.variables
            if y != x
        ):
            result.append(x)
    return result


def root_variables(query: ConjunctiveQuery) -> List[Variable]:
    """Variables occurring in *every* sub-goal of the query.

    For a connected hierarchical query these are the candidates for the
    root variable of a unary coverage (Definition 2.10).
    """
    if not query.atoms:
        return []
    all_goals = frozenset(range(len(query.atoms)))
    return [v for v in query.variables if query.subgoal_map[v] == all_goals]


@dataclass(frozen=True)
class HierarchyNode:
    """A node of the hierarchy tree: one ≡-class of variables.

    Attributes:
        variables: the equivalence class.
        scope: ``⌈x⌉`` — all variables weakly above the class (ancestors
            plus the class itself); the arity of the paper's ``S[x]_f``
            relations.
        subgoals: indices of sub-goals whose variable set is exactly
            ``scope``.
        children: child nodes.
    """

    variables: Tuple[Variable, ...]
    scope: Tuple[Variable, ...]
    subgoals: Tuple[int, ...]
    children: Tuple["HierarchyNode", ...]

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __str__(self) -> str:
        names = ",".join(v.name for v in self.variables)
        return f"[{names}]"


class HierarchyTree:
    """The hierarchy tree of a connected hierarchical query (Sec. 3.4).

    Nodes are ≡-classes; the parent relation is the covering relation of
    ⊑ (a class sits below the classes occurring in strictly more
    sub-goals that contain it).  For a connected hierarchical query the
    maximal classes form a single root; we verify this and raise
    otherwise.
    """

    def __init__(self, query: ConjunctiveQuery) -> None:
        if not is_hierarchical(query):
            raise ValueError(f"query is not hierarchical: {query}")
        if not query.is_connected():
            raise ValueError(f"hierarchy tree needs a connected query: {query}")
        self.query = query
        self.roots: Tuple[HierarchyNode, ...] = tuple(_build_forest(query))

    @property
    def root(self) -> HierarchyNode:
        """The unique root class.

        A connected query with at least one variable has one maximal
        ≡-class only when some class occurs in every sub-goal; queries
        like ``R(x), S(x, y), S(y, x)`` after ranking do.  When several
        maximal classes exist, accessing :attr:`root` raises.
        """
        if len(self.roots) != 1:
            raise ValueError(
                f"query has {len(self.roots)} maximal variable classes, "
                f"no unique hierarchy root: {self.query}"
            )
        return self.roots[0]

    def nodes(self) -> List[HierarchyNode]:
        result: List[HierarchyNode] = []
        for root in self.roots:
            result.extend(root.walk())
        return result

    def __str__(self) -> str:
        return " | ".join(_render(root) for root in self.roots)


def variable_classes(query: ConjunctiveQuery) -> List[Tuple[Variable, ...]]:
    """≡-classes of the query's variables, ordered by first occurrence."""
    classes: Dict[FrozenSet[int], List[Variable]] = {}
    for variable in query.variables:
        classes.setdefault(query.subgoal_map[variable], []).append(variable)
    return [tuple(group) for group in classes.values()]


def _build_forest(query: ConjunctiveQuery) -> List[HierarchyNode]:
    classes = variable_classes(query)
    if not classes:
        return []
    sg = query.subgoal_map
    class_sg = [sg[group[0]] for group in classes]

    def strict_ancestors(i: int) -> List[int]:
        return [
            j for j in range(len(classes))
            if j != i and class_sg[i] < class_sg[j]
        ]

    # Parent of class i: the strict ancestor with the smallest sub-goal
    # superset (the covering class).
    parent: Dict[int, Optional[int]] = {}
    for i in range(len(classes)):
        ancestors = strict_ancestors(i)
        if not ancestors:
            parent[i] = None
            continue
        best = min(ancestors, key=lambda j: len(class_sg[j]))
        parent[i] = best

    children_of: Dict[Optional[int], List[int]] = {}
    for i, par in parent.items():
        children_of.setdefault(par, []).append(i)

    def scope_of(i: int) -> Tuple[Variable, ...]:
        scope: List[Variable] = []
        node: Optional[int] = i
        chain: List[int] = []
        while node is not None:
            chain.append(node)
            node = parent[node]
        for idx in reversed(chain):
            scope.extend(classes[idx])
        return tuple(scope)

    def subgoals_exact(i: int) -> Tuple[int, ...]:
        scope = set(scope_of(i))
        result = []
        for idx, atom in enumerate(query.atoms):
            if set(atom.variables) == scope:
                result.append(idx)
        return tuple(result)

    def build(i: int) -> HierarchyNode:
        kids = tuple(build(j) for j in sorted(children_of.get(i, ())))
        return HierarchyNode(
            variables=classes[i],
            scope=scope_of(i),
            subgoals=subgoals_exact(i),
            children=kids,
        )

    return [build(i) for i in sorted(children_of.get(None, ()))]


def _render(node: HierarchyNode, depth: int = 0) -> str:
    line = "  " * depth + str(node)
    parts = [line]
    for child in node.children:
        parts.append(_render(child, depth + 1))
    return "\n".join(parts)
