"""Homomorphisms, containment, equivalence and minimization of CQs.

A homomorphism ``h : q -> q'`` maps the variables of ``q`` to terms of
``q'`` (constants are fixed) such that every sub-goal of ``q`` lands on
a sub-goal of ``q'`` with the same relation and polarity, and every
arithmetic predicate of ``q``, after mapping, is entailed by the
predicates of ``q'``.  The classic theorem then gives containment:
``q' implies q`` iff ``h : q -> q'`` exists (for predicate-free CQs;
with restricted order predicates the entailment condition keeps the
direction sound, which is all the dichotomy analysis needs).

Minimization computes the core by folding the query along shrinking
endomorphisms; the paper assumes minimal queries throughout (e.g.
Theorem B.4, Figure 1's "need to minimize covers").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .atoms import Atom
from .predicates import Comparison
from .query import ConjunctiveQuery
from .substitution import Substitution
from .terms import Constant, Term, Variable


def homomorphisms(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    fixed: Optional[Dict[Variable, Term]] = None,
) -> Iterator[Substitution]:
    """Yield all homomorphisms ``source -> target``.

    Args:
        source: the query being mapped.
        target: the query being mapped into.
        fixed: optional pre-commitments for some source variables.
    """
    assignment: Dict[Variable, Term] = dict(fixed or {})
    atoms = _ordered_atoms(source)
    target_by_signature: Dict[Tuple[str, int, bool], List[Atom]] = {}
    for atom in target.atoms:
        key = (atom.relation, atom.arity, atom.negated)
        target_by_signature.setdefault(key, []).append(atom)

    def mapped_predicates_ok() -> bool:
        constraints = target.order_constraints
        for pred in source.predicates:
            left = _image(pred.left, assignment)
            right = _image(pred.right, assignment)
            if left is None or right is None:
                continue  # not yet fully mapped; checked once complete
            if not constraints.entails(Comparison(pred.op, left, right)):
                return False
        return True

    def backtrack(index: int) -> Iterator[Substitution]:
        if index == len(atoms):
            if mapped_predicates_ok():
                yield Substitution(dict(assignment))
            return
        atom = atoms[index]
        key = (atom.relation, atom.arity, atom.negated)
        for candidate in target_by_signature.get(key, ()):
            added = _try_match(atom, candidate, assignment)
            if added is None:
                continue
            if _partial_predicates_ok(source, target, assignment):
                yield from backtrack(index + 1)
            for variable in added:
                del assignment[variable]

    yield from backtrack(0)


def find_homomorphism(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    fixed: Optional[Dict[Variable, Term]] = None,
) -> Optional[Substitution]:
    """The first homomorphism ``source -> target``, or None."""
    for hom in homomorphisms(source, target, fixed=fixed):
        return hom
    return None


def has_homomorphism(source: ConjunctiveQuery, target: ConjunctiveQuery) -> bool:
    """True iff some homomorphism ``source -> target`` exists."""
    return find_homomorphism(source, target) is not None


def contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True iff ``q1`` implies ``q2`` on all structures.

    Standard CQ containment: ``q1 subseteq q2`` iff a homomorphism
    ``q2 -> q1`` exists.  Unsatisfiable queries are contained in
    everything.
    """
    if not q1.is_satisfiable():
        return True
    return has_homomorphism(q2, q1)


def equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Logical equivalence via mutual containment."""
    return contained_in(q1, q2) and contained_in(q2, q1)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of ``query``: an equivalent query with minimal sub-goals.

    Folds the query along endomorphisms whose atom image is strictly
    smaller, until none exists.  Predicates are carried through the
    folding substitution and trivially-true ones are dropped.
    """
    current = query
    while True:
        folded = _shrinking_fold(current)
        if folded is None:
            return current
        current = folded


def _shrinking_fold(query: ConjunctiveQuery) -> Optional[ConjunctiveQuery]:
    total = len(query.atoms)
    if total <= 1:
        return None
    for hom in homomorphisms(query, query):
        image_atoms = {
            atom.with_terms(hom.apply(t) for t in atom.terms)
            for atom in query.atoms
        }
        if len(image_atoms) < total:
            folded = query.apply(hom).drop_trivial_predicates()
            if len(folded.atoms) < total:
                return folded
    return None


def is_minimal(query: ConjunctiveQuery) -> bool:
    """True iff the query equals its core (up to canonical form)."""
    return minimize(query) == query


def endomorphisms(query: ConjunctiveQuery) -> Iterator[Substitution]:
    """All homomorphisms from a query to itself."""
    yield from homomorphisms(query, query)


def is_automorphism(query: ConjunctiveQuery, hom: Substitution) -> bool:
    """True iff ``hom`` permutes the query's atoms bijectively."""
    image = query.apply(hom)
    return set(image.atoms) == set(query.atoms) and len(image.atoms) == len(query.atoms)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _ordered_atoms(query: ConjunctiveQuery) -> List[Atom]:
    """Source atoms ordered most-constrained-first for faster search."""
    return sorted(
        query.atoms,
        key=lambda a: (-len(a.constants), -a.arity, a.relation),
    )


def _try_match(
    source_atom: Atom,
    target_atom: Atom,
    assignment: Dict[Variable, Term],
) -> Optional[List[Variable]]:
    """Extend ``assignment`` so that ``source_atom`` maps onto
    ``target_atom``; return newly bound variables, or None on clash."""
    added: List[Variable] = []
    for s_term, t_term in zip(source_atom.terms, target_atom.terms):
        if isinstance(s_term, Constant):
            if s_term != t_term:
                _rollback(assignment, added)
                return None
            continue
        bound = assignment.get(s_term)
        if bound is None:
            assignment[s_term] = t_term
            added.append(s_term)
        elif bound != t_term:
            _rollback(assignment, added)
            return None
    return added


def _rollback(assignment: Dict[Variable, Term], added: List[Variable]) -> None:
    for variable in added:
        del assignment[variable]


def _image(term: Term, assignment: Dict[Variable, Term]) -> Optional[Term]:
    if isinstance(term, Constant):
        return term
    return assignment.get(term)


def _partial_predicates_ok(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    assignment: Dict[Variable, Term],
) -> bool:
    """Prune: fully-mapped predicates must already be entailed."""
    constraints = target.order_constraints
    for pred in source.predicates:
        left = _image(pred.left, assignment)
        right = _image(pred.right, assignment)
        if left is None or right is None:
            continue
        if not constraints.entails(Comparison(pred.op, left, right)):
            return False
    return True
