"""A small text parser for conjunctive queries.

Grammar (comma-separated items, with an optional datalog-style head)::

    query      ::= [head ":-"] item ("," item)*
    head       ::= NAME "(" [term ("," term)*] ")"
    item       ::= ["not"] NAME "(" term ("," term)* ")"   -- sub-goal
                 | term OP term                            -- predicate
    term       ::= NAME | NUMBER | "'" chars "'"
    OP         ::= "<" | ">" | "=" | "!="

A plain body (``R(x), S(x,y)``) is a Boolean query, so all existing
call sites keep working; ``Q(x) :- R(x), S(x,y)`` is an answer-tuple
query whose head variables must occur in the body.  By default
identifiers are variables and numbers / quoted tokens are constants;
names listed in ``constants`` are parsed as string constants, matching
the paper's habit of writing constants ``a, b, c`` unquoted.

>>> parse("R(x), S(x,y)")
ConjunctiveQuery(R(x), S(x, y))
>>> parse("Q(x) :- R(x), S(x,y)")
ConjunctiveQuery(Q(x) :- R(x), S(x, y))
>>> parse("R(a,x), x < y, S(x,y)", constants=("a",))
ConjunctiveQuery(R('a', x), S(x, y), x < y)
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Tuple

from .atoms import Atom
from .predicates import Comparison
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable

_SUBGOAL_RE = re.compile(
    r"^(?P<neg>not\s+)?(?P<rel>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<args>[^()]*)\)$"
)
_PREDICATE_RE = re.compile(
    r"^(?P<left>[^<>=!]+?)\s*(?P<op><|>|=|!=)\s*(?P<right>[^<>=!]+)$"
)
_NUMBER_RE = re.compile(r"^-?\d+$")


class QueryParseError(ValueError):
    """Raised on malformed query text."""


_HEAD_RE = re.compile(
    r"^(?P<rel>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<args>[^()]*)\)$"
)


def parse(text: str, constants: Iterable[str] = ()) -> ConjunctiveQuery:
    """Parse ``text`` into a :class:`ConjunctiveQuery`.

    Args:
        text: the query, e.g. ``"R(x), S(x,y), x != y"`` (Boolean) or
            ``"Q(x) :- R(x), S(x,y)"`` (answer-tuple).
        constants: identifier names to treat as string constants.
    """
    constant_names = set(constants)
    head: Optional[Tuple[Term, ...]] = None
    head_text, body_text = _split_on_neck(text)
    if head_text is not None:
        head = _parse_head(head_text.strip(), constant_names)
        text = body_text
    atoms: List[Atom] = []
    predicates: List[Comparison] = []
    for item in _split_items(text):
        subgoal = _SUBGOAL_RE.match(item)
        if subgoal:
            args = subgoal.group("args").strip()
            if not args:
                raise QueryParseError(f"sub-goal with no arguments: {item!r}")
            terms = tuple(
                _parse_term(tok.strip(), constant_names)
                for tok in args.split(",")
            )
            atoms.append(
                Atom(subgoal.group("rel"), terms, negated=bool(subgoal.group("neg")))
            )
            continue
        predicate = _PREDICATE_RE.match(item)
        if predicate:
            left = _parse_term(predicate.group("left").strip(), constant_names)
            right = _parse_term(predicate.group("right").strip(), constant_names)
            predicates.append(Comparison(predicate.group("op"), left, right))
            continue
        raise QueryParseError(f"cannot parse query item: {item!r}")
    try:
        return ConjunctiveQuery(atoms, predicates, head=head)
    except ValueError as error:
        raise QueryParseError(str(error)) from error


def _split_on_neck(text: str) -> Tuple[Optional[str], str]:
    """Split ``head :- body`` at the first ``:-`` outside quotes.

    Returns ``(None, text)`` for a Boolean query; a ``:-`` inside a
    quoted constant is part of the constant, not a head separator.
    """
    positions = []
    quote = None
    index = 0
    while index < len(text):
        char = text[index]
        if quote is not None:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == ":" and text[index:index + 2] == ":-":
            positions.append(index)
            index += 2
            continue
        index += 1
    if not positions:
        return None, text
    if len(positions) > 1:
        raise QueryParseError(f"more than one ':-' in {text!r}")
    split = positions[0]
    return text[:split], text[split + 2:]


def _parse_head(text: str, constant_names: set) -> Tuple[Term, ...]:
    match = _HEAD_RE.match(text)
    if not match:
        raise QueryParseError(
            f"cannot parse query head {text!r} (expected e.g. 'Q(x, y)')"
        )
    args = match.group("args").strip()
    if not args:
        return ()
    return tuple(
        _parse_term(token.strip(), constant_names) for token in args.split(",")
    )


def _split_items(text: str) -> List[str]:
    """Split on commas that are outside parentheses."""
    items: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError(f"unbalanced parentheses in {text!r}")
        if char == "," and depth == 0:
            items.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise QueryParseError(f"unbalanced parentheses in {text!r}")
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return [item for item in items if item]


def _parse_term(token: str, constant_names: set) -> Term:
    if not token:
        raise QueryParseError("empty term")
    if len(token) >= 2 and token[0] == token[-1] and token[0] in ("'", '"'):
        return Constant(token[1:-1])
    if _NUMBER_RE.match(token):
        return Constant(int(token))
    if token in constant_names:
        return Constant(token)
    if not re.match(r"^[A-Za-z_][A-Za-z0-9_']*$", token):
        raise QueryParseError(f"invalid term token: {token!r}")
    return Variable(token)
