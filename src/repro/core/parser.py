"""A small text parser for conjunctive queries.

Grammar (comma-separated items)::

    query      ::= item ("," item)*
    item       ::= ["not"] NAME "(" term ("," term)* ")"   -- sub-goal
                 | term OP term                            -- predicate
    term       ::= NAME | NUMBER | "'" chars "'"
    OP         ::= "<" | ">" | "=" | "!="

By default identifiers are variables and numbers / quoted tokens are
constants; names listed in ``constants`` are parsed as string constants,
matching the paper's habit of writing constants ``a, b, c`` unquoted.

>>> parse("R(x), S(x,y)")
ConjunctiveQuery(R(x), S(x, y))
>>> parse("R(a,x), x < y, S(x,y)", constants=("a",))
ConjunctiveQuery(R('a', x), S(x, y), x < y)
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple

from .atoms import Atom
from .predicates import Comparison
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable

_SUBGOAL_RE = re.compile(
    r"^(?P<neg>not\s+)?(?P<rel>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<args>[^()]*)\)$"
)
_PREDICATE_RE = re.compile(
    r"^(?P<left>[^<>=!]+?)\s*(?P<op><|>|=|!=)\s*(?P<right>[^<>=!]+)$"
)
_NUMBER_RE = re.compile(r"^-?\d+$")


class QueryParseError(ValueError):
    """Raised on malformed query text."""


def parse(text: str, constants: Iterable[str] = ()) -> ConjunctiveQuery:
    """Parse ``text`` into a :class:`ConjunctiveQuery`.

    Args:
        text: the query, e.g. ``"R(x), S(x,y), x != y"``.
        constants: identifier names to treat as string constants.
    """
    constant_names = set(constants)
    atoms: List[Atom] = []
    predicates: List[Comparison] = []
    for item in _split_items(text):
        subgoal = _SUBGOAL_RE.match(item)
        if subgoal:
            args = subgoal.group("args").strip()
            if not args:
                raise QueryParseError(f"sub-goal with no arguments: {item!r}")
            terms = tuple(
                _parse_term(tok.strip(), constant_names)
                for tok in args.split(",")
            )
            atoms.append(
                Atom(subgoal.group("rel"), terms, negated=bool(subgoal.group("neg")))
            )
            continue
        predicate = _PREDICATE_RE.match(item)
        if predicate:
            left = _parse_term(predicate.group("left").strip(), constant_names)
            right = _parse_term(predicate.group("right").strip(), constant_names)
            predicates.append(Comparison(predicate.group("op"), left, right))
            continue
        raise QueryParseError(f"cannot parse query item: {item!r}")
    return ConjunctiveQuery(atoms, predicates)


def _split_items(text: str) -> List[str]:
    """Split on commas that are outside parentheses."""
    items: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError(f"unbalanced parentheses in {text!r}")
        if char == "," and depth == 0:
            items.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise QueryParseError(f"unbalanced parentheses in {text!r}")
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return [item for item in items if item]


def _parse_term(token: str, constant_names: set) -> Term:
    if not token:
        raise QueryParseError("empty term")
    if len(token) >= 2 and token[0] == token[-1] and token[0] in ("'", '"'):
        return Constant(token[1:-1])
    if _NUMBER_RE.match(token):
        return Constant(int(token))
    if token in constant_names:
        return Constant(token)
    if not re.match(r"^[A-Za-z_][A-Za-z0-9_']*$", token):
        raise QueryParseError(f"invalid term token: {token!r}")
    return Variable(token)
