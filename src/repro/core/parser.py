"""A small text parser for conjunctive queries and unions (UCQs).

Grammar (comma-separated items, with an optional datalog-style head;
rules separated by ``;`` or newlines, alternative bodies by ``|``)::

    query      ::= rule ((";" | NEWLINE) rule)*
    rule       ::= [head ":-"] body ("|" body)*
    body       ::= item ("," item)*
    head       ::= NAME "(" [term ("," term)*] ")"
    item       ::= ["not"] NAME "(" term ("," term)* ")"   -- sub-goal
                 | term OP term                            -- predicate
    term       ::= NAME | NUMBER | "'" chars "'"
    OP         ::= "<" | ">" | "=" | "!="

A plain body (``R(x), S(x,y)``) is a Boolean query, so all existing
call sites keep working; ``Q(x) :- R(x), S(x,y)`` is an answer-tuple
query whose head variables must occur in the body.  A query with
several bodies — ``R(x) | S(x,y)``, or several rules with one head
relation — parses to a :class:`~repro.core.union.UnionQuery`; a single
body still parses to a plain :class:`~repro.core.query.ConjunctiveQuery`.
By default identifiers are variables and numbers / quoted tokens are
constants; names listed in ``constants`` are parsed as string
constants, matching the paper's habit of writing constants ``a, b, c``
unquoted.

>>> parse("R(x), S(x,y)")
ConjunctiveQuery(R(x), S(x, y))
>>> parse("Q(x) :- R(x), S(x,y)")
ConjunctiveQuery(Q(x) :- R(x), S(x, y))
>>> parse("R(a,x), x < y, S(x,y)", constants=("a",))
ConjunctiveQuery(R('a', x), S(x, y), x < y)

Unions — alternative bodies with ``|`` (Boolean)::

>>> parse("R(x) | S(x,y)")
UnionQuery(R(x) | S(x, y))

Several rules defining one answer relation (``;`` or newlines)::

>>> parse("Q(x) :- R(x); Q(y) :- S(y,y)")
UnionQuery(Q(x) :- R(x) ; Q(y) :- S(y, y))

A rule head distributes over its ``|``-bodies, and a union round-trips
through ``str``::

>>> u = parse("Q(x) :- R(x) | S(x,x)")
>>> parse(str(u)) == u
True

Rules must agree on the head relation:

>>> parse("Q(x) :- R(x); P(y) :- S(y,y)")
Traceback (most recent call last):
    ...
repro.core.parser.QueryParseError: rules define different head relations: 'Q' and 'P'
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Tuple

from .atoms import Atom
from .predicates import Comparison
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable
from .union import AnyQuery, UnionQuery

_SUBGOAL_RE = re.compile(
    r"^(?P<neg>not\s+)?(?P<rel>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<args>[^()]*)\)$"
)
_PREDICATE_RE = re.compile(
    r"^(?P<left>[^<>=!]+?)\s*(?P<op><|>|=|!=)\s*(?P<right>[^<>=!]+)$"
)
_NUMBER_RE = re.compile(r"^-?\d+$")


class QueryParseError(ValueError):
    """Raised on malformed query text."""


_HEAD_RE = re.compile(
    r"^(?P<rel>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<args>[^()]*)\)$"
)


def parse(text: str, constants: Iterable[str] = ()) -> AnyQuery:
    """Parse ``text`` into a :class:`ConjunctiveQuery` or, when it has
    several rules / ``|``-separated bodies, a :class:`UnionQuery`.

    Args:
        text: the query, e.g. ``"R(x), S(x,y), x != y"`` (Boolean),
            ``"Q(x) :- R(x), S(x,y)"`` (answer-tuple), or a union such
            as ``"R(x) | S(x,y)"`` / ``"Q(x) :- R(x); Q(y) :- S(y,y)"``.
        constants: identifier names to treat as string constants.
    """
    constant_names = set(constants)
    rules = _split_top(text, ";\n")
    if not rules:
        # Empty text is the trivially-true Boolean query (atomless CQ),
        # matching the seed parser's behaviour.
        return ConjunctiveQuery((), ())
    disjuncts: List[ConjunctiveQuery] = []
    first_head: Optional[Tuple[Optional[str], Optional[int]]] = None
    for rule in rules:
        head_name, head, bodies = _parse_rule(rule, constant_names)
        shape = (head_name, None if head is None else len(head))
        if first_head is None:
            first_head = shape
        else:
            _check_head_shape(first_head, shape)
        for body in bodies:
            disjuncts.append(_parse_body(body, head, constant_names))
    if len(disjuncts) == 1:
        return disjuncts[0]
    try:
        return UnionQuery.of(disjuncts)
    except ValueError as error:
        raise QueryParseError(str(error)) from error


def _check_head_shape(
    first: Tuple[Optional[str], Optional[int]],
    current: Tuple[Optional[str], Optional[int]],
) -> None:
    first_name, first_arity = first
    name, arity = current
    if (first_arity is None) != (arity is None):
        boolean, headed = (
            ("the first rule", f"{name}/{arity}")
            if first_arity is None
            else ("a later rule", f"{first_name}/{first_arity}")
        )
        raise QueryParseError(
            f"rules mix Boolean and answer-tuple forms: {boolean} is "
            f"Boolean but another defines the head {headed}"
        )
    if first_name != name:
        raise QueryParseError(
            f"rules define different head relations: "
            f"{first_name!r} and {name!r}"
        )
    if first_arity != arity:
        raise QueryParseError(
            f"rules disagree on head arity: "
            f"{first_name}/{first_arity} vs {name}/{arity}"
        )


def _parse_rule(
    text: str, constant_names: set
) -> Tuple[Optional[str], Optional[Tuple[Term, ...]], List[str]]:
    """One rule → (head relation name, head terms, ``|``-split bodies)."""
    head_name: Optional[str] = None
    head: Optional[Tuple[Term, ...]] = None
    head_text, body_text = _split_on_neck(text)
    if head_text is not None:
        head_name, head = _parse_head(head_text.strip(), constant_names)
        text = body_text
    bodies = _split_top(text, "|")
    if not bodies:
        raise QueryParseError(f"rule with an empty body: {text!r}")
    return head_name, head, bodies


def _parse_body(
    text: str, head: Optional[Tuple[Term, ...]], constant_names: set
) -> ConjunctiveQuery:
    atoms: List[Atom] = []
    predicates: List[Comparison] = []
    items = _split_items(text)
    if not items:
        raise QueryParseError(f"empty disjunct in {text!r}")
    for item in items:
        subgoal = _SUBGOAL_RE.match(item)
        if subgoal:
            args = subgoal.group("args").strip()
            if not args:
                raise QueryParseError(f"sub-goal with no arguments: {item!r}")
            terms = tuple(
                _parse_term(tok.strip(), constant_names)
                for tok in args.split(",")
            )
            atoms.append(
                Atom(subgoal.group("rel"), terms, negated=bool(subgoal.group("neg")))
            )
            continue
        predicate = _PREDICATE_RE.match(item)
        if predicate:
            left = _parse_term(predicate.group("left").strip(), constant_names)
            right = _parse_term(predicate.group("right").strip(), constant_names)
            predicates.append(Comparison(predicate.group("op"), left, right))
            continue
        raise QueryParseError(f"cannot parse query item: {item!r}")
    try:
        return ConjunctiveQuery(atoms, predicates, head=head)
    except ValueError as error:
        raise QueryParseError(str(error)) from error


def _split_on_neck(text: str) -> Tuple[Optional[str], str]:
    """Split ``head :- body`` at the first ``:-`` outside quotes.

    Returns ``(None, text)`` for a Boolean query; a ``:-`` inside a
    quoted constant is part of the constant, not a head separator.
    """
    positions = []
    quote = None
    index = 0
    while index < len(text):
        char = text[index]
        if quote is not None:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == ":" and text[index:index + 2] == ":-":
            positions.append(index)
            index += 2
            continue
        index += 1
    if not positions:
        return None, text
    if len(positions) > 1:
        raise QueryParseError(f"more than one ':-' in {text!r}")
    split = positions[0]
    return text[:split], text[split + 2:]


def _split_top(text: str, separators: str) -> List[str]:
    """Split on any of ``separators`` outside quotes and parentheses.

    Empty segments (a trailing ``;``, blank lines) are dropped.
    """
    parts: List[str] = []
    current: List[str] = []
    depth = 0
    quote = None
    for char in text:
        if quote is not None:
            if char == quote:
                quote = None
            current.append(char)
            continue
        if char in ("'", '"'):
            quote = char
            current.append(char)
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError(f"unbalanced parentheses in {text!r}")
        if char in separators and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    parts.append("".join(current).strip())
    return [part for part in parts if part]


def _parse_head(
    text: str, constant_names: set
) -> Tuple[str, Tuple[Term, ...]]:
    match = _HEAD_RE.match(text)
    if not match:
        raise QueryParseError(
            f"cannot parse query head {text!r} (expected e.g. 'Q(x, y)')"
        )
    args = match.group("args").strip()
    if not args:
        return match.group("rel"), ()
    return match.group("rel"), tuple(
        _parse_term(token.strip(), constant_names) for token in args.split(",")
    )


def _split_items(text: str) -> List[str]:
    """Split on commas that are outside parentheses."""
    items: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError(f"unbalanced parentheses in {text!r}")
        if char == "," and depth == 0:
            items.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise QueryParseError(f"unbalanced parentheses in {text!r}")
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return [item for item in items if item]


def _parse_term(token: str, constant_names: set) -> Term:
    if not token:
        raise QueryParseError("empty term")
    if len(token) >= 2 and token[0] == token[-1] and token[0] in ("'", '"'):
        return Constant(token[1:-1])
    if _NUMBER_RE.match(token):
        return Constant(int(token))
    if token in constant_names:
        return Constant(token)
    if not re.match(r"^[A-Za-z_][A-Za-z0-9_']*$", token):
        raise QueryParseError(f"invalid term token: {token!r}")
    return Variable(token)
