"""Unions of conjunctive queries (UCQs) and their transforms.

A :class:`UnionQuery` is a disjunction ``q = d1 ∨ ... ∨ dn`` of
:class:`~repro.core.query.ConjunctiveQuery` disjuncts sharing one head
shape: either every disjunct is Boolean, or every disjunct carries a
head of the same arity (datalog rules for one answer relation).  The
constructor canonicalizes — disjuncts are deduplicated *up to variable
renaming* (via :func:`~repro.core.query.canonical_string`) and stored
in canonical order — so syntactic equality of two ``UnionQuery``
objects is insensitive to disjunct order and renaming.

The module also provides the reusable UCQ transforms the lifted engine
and classifier build on (mirroring NeuroLang's ``dalvi_suciu_lift``):

* :func:`minimize_ucq_in_dnf` — containment-based minimization of a
  disjunct list (drop unsatisfiable, core-minimize, drop disjuncts
  implied by another — Sagiv–Yannakakis);
* :func:`ucq_cnf` / :func:`minimize_ucq_in_cnf` — the CNF view
  (conjunction of unions of factors) obtained by distributing
  connected components, with clause-level containment pruning;
* :func:`shatter_constants` — split variable/constant positions of
  self-joined relation symbols (``q ≡ q[x:=c] ∨ (q, x≠c)``) so that
  downstream independence tests see syntactically disjoint atoms.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .homomorphism import contained_in, minimize
from .predicates import Comparison
from .query import ConjunctiveQuery, canonical_string
from .substitution import Substitution
from .terms import Constant, Term, Variable


class UnionQuery:
    """A union (disjunction) of conjunctive queries with a shared head.

    Attributes:
        disjuncts: the member conjunctive queries, deduplicated up to
            renaming and stored in canonical order.  Either all Boolean
            or all carrying heads of one arity.
    """

    __slots__ = ("disjuncts", "__dict__")

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery]) -> None:
        self.disjuncts: Tuple[ConjunctiveQuery, ...] = _canonical_disjuncts(
            disjuncts
        )

    @classmethod
    def of(
        cls, disjuncts: Iterable[ConjunctiveQuery]
    ) -> "AnyQuery":
        """A :class:`UnionQuery`, collapsed to the single disjunct when
        canonical deduplication leaves only one."""
        union = cls(disjuncts)
        if len(union.disjuncts) == 1:
            return union.disjuncts[0]
        return union

    # ------------------------------------------------------------------
    # Head (mirrors ConjunctiveQuery)
    # ------------------------------------------------------------------

    @property
    def head(self) -> Optional[Tuple[Term, ...]]:
        """The first disjunct's head terms (all disjuncts agree on
        Boolean-ness and arity; variable names may differ)."""
        return self.disjuncts[0].head

    @property
    def is_boolean(self) -> bool:
        return self.head is None

    @property
    def head_variables(self) -> Tuple[Variable, ...]:
        """The first disjunct's distinct head variables (see ``head``)."""
        return self.disjuncts[0].head_variables

    def boolean(self) -> "UnionQuery":
        """The union of the disjuncts' existential closures."""
        if self.is_boolean:
            return self
        return UnionQuery(d.boolean() for d in self.disjuncts)

    def bind_head(self, values: Sequence) -> "UnionQuery":
        """The residual Boolean union for one answer tuple.

        Each disjunct's head is bound positionally; disjuncts whose
        head constants (or repeated head variables) are inconsistent
        with ``values`` contribute *false* and are dropped.
        """
        if self.is_boolean:
            raise ValueError("bind_head on a Boolean query")
        bound: List[ConjunctiveQuery] = []
        for disjunct in self.disjuncts:
            try:
                bound.append(disjunct.bind_head(values))
            except ValueError:
                continue
        if not bound:
            raise ValueError(
                f"no disjunct of {self} admits the answer tuple {values!r}"
            )
        return UnionQuery(bound)

    # ------------------------------------------------------------------
    # Basic structure (mirrors ConjunctiveQuery where engines need it)
    # ------------------------------------------------------------------

    @property
    def variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for disjunct in self.disjuncts:
            for variable in disjunct.variables:
                seen.setdefault(variable, None)
        return tuple(seen)

    @property
    def constants(self) -> Tuple[Constant, ...]:
        seen: Dict[Constant, None] = {}
        for disjunct in self.disjuncts:
            for constant in disjunct.constants:
                seen.setdefault(constant, None)
        return tuple(seen)

    @property
    def relations(self) -> Tuple[str, ...]:
        """Distinct relation symbols across all disjuncts, sorted."""
        symbols: Set[str] = set()
        for disjunct in self.disjuncts:
            symbols.update(disjunct.relations)
        return tuple(sorted(symbols))

    def has_self_join(self) -> bool:
        """True iff some relation symbol occurs in two or more sub-goals
        — within one disjunct or across different disjuncts."""
        seen: Set[str] = set()
        for disjunct in self.disjuncts:
            for atom in disjunct.atoms:
                if atom.relation in seen:
                    return True
                seen.add(atom.relation)
        return False

    def is_range_restricted(self) -> bool:
        return all(d.is_range_restricted() for d in self.disjuncts)

    def is_satisfiable(self) -> bool:
        """A union is satisfiable when any disjunct is."""
        return any(d.is_satisfiable() for d in self.disjuncts)

    def apply(self, substitution: Substitution) -> "UnionQuery":
        return UnionQuery(d.apply(substitution) for d in self.disjuncts)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionQuery):
            return NotImplemented
        return self.disjuncts == other.disjuncts

    def __hash__(self) -> int:
        return hash(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self):
        return iter(self.disjuncts)

    def __str__(self) -> str:
        if self.is_boolean:
            return " | ".join(str(d) for d in self.disjuncts)
        return " ; ".join(str(d) for d in self.disjuncts)

    def __repr__(self) -> str:
        return f"UnionQuery({self})"


#: Either query IR type — what the parser returns and engines accept.
AnyQuery = Union[ConjunctiveQuery, UnionQuery]


def disjuncts_of(query: AnyQuery) -> Tuple[ConjunctiveQuery, ...]:
    """The disjunct view of either IR type (a CQ is its own disjunct)."""
    if isinstance(query, UnionQuery):
        return query.disjuncts
    if isinstance(query, ConjunctiveQuery):
        return (query,)
    raise TypeError(
        f"expected ConjunctiveQuery or UnionQuery, got {query!r}"
    )


def _canonical_disjuncts(
    disjuncts: Iterable[ConjunctiveQuery],
) -> Tuple[ConjunctiveQuery, ...]:
    keyed: Dict[str, ConjunctiveQuery] = {}
    for disjunct in disjuncts:
        if not isinstance(disjunct, ConjunctiveQuery):
            raise TypeError(
                f"expected ConjunctiveQuery disjunct, got {disjunct!r}"
            )
        keyed.setdefault(canonical_string(disjunct), disjunct)
    if not keyed:
        raise ValueError("a union query needs at least one disjunct")
    ordered = tuple(keyed[key] for key in sorted(keyed))
    heads = {
        (d.head is None, len(d.head) if d.head is not None else 0)
        for d in ordered
    }
    if len(heads) > 1:
        shapes = sorted(
            "Boolean" if boolean else f"arity {arity}"
            for boolean, arity in heads
        )
        raise ValueError(
            f"disjuncts disagree on the head shape ({', '.join(shapes)}): "
            f"all rules of a union must be Boolean or share one head arity"
        )
    return ordered


# ----------------------------------------------------------------------
# DNF minimization (containment-based, Sagiv–Yannakakis)
# ----------------------------------------------------------------------


def minimize_ucq_in_dnf(
    disjuncts: Sequence[ConjunctiveQuery], minimize_each: bool = True
) -> List[ConjunctiveQuery]:
    """A containment-minimal disjunct list equivalent to ``∨ disjuncts``.

    Unsatisfiable disjuncts are dropped, each remaining disjunct is
    core-minimized (positive-only disjuncts, when ``minimize_each``),
    and a disjunct contained in another is redundant (``d ⊑ d'`` means
    ``d ⇒ d'``).  The result may be empty (the union is false) or
    contain a single atomless disjunct (the union is trivially true).
    For answer-tuple disjuncts the containment test runs on the generic
    residuals (heads frozen positionally), so only head-compatible
    redundancy is pruned.
    """
    cleaned: List[ConjunctiveQuery] = []
    for disjunct in disjuncts:
        candidate = disjunct.drop_trivial_predicates()
        if not candidate.is_satisfiable():
            continue
        if (
            minimize_each
            and candidate.head is None
            and not candidate.negative_atoms
        ):
            candidate = minimize(candidate)
        if not candidate.atoms:
            return [candidate]
        if candidate not in cleaned:
            cleaned.append(candidate)
    kept: List[ConjunctiveQuery] = []
    residuals = [_containment_view(d) for d in cleaned]
    for i, candidate in enumerate(cleaned):
        redundant = False
        for j in range(len(cleaned)):
            if i == j:
                continue
            if contained_in(residuals[i], residuals[j]):
                # Keep the earlier one when they are equivalent.
                if not contained_in(residuals[j], residuals[i]) or j < i:
                    redundant = True
                    break
        if not redundant:
            kept.append(candidate)
    return kept


def _containment_view(disjunct: ConjunctiveQuery) -> ConjunctiveQuery:
    """The Boolean query whose containment order is the disjunct's.

    Boolean disjuncts are their own view; answer-tuple disjuncts freeze
    head variables positionally to shared placeholder constants, so
    ``d ⊑ d'`` respects the head alignment of the union.
    """
    if disjunct.head is None:
        return disjunct
    mapping: Dict[Variable, Term] = {}
    for position, term in enumerate(disjunct.head):
        if isinstance(term, Variable) and term not in mapping:
            mapping[term] = Constant(f"@answer{position}")
    bound = disjunct.apply(Substitution(mapping))
    return ConjunctiveQuery(bound.atoms, bound.predicates)


def union_contained_in(q1: AnyQuery, q2: AnyQuery) -> bool:
    """UCQ containment ``q1 ⊑ q2``: every satisfiable disjunct of
    ``q1`` is contained in some disjunct of ``q2`` (Sagiv–Yannakakis;
    sound and complete for positive UCQs, best-effort with predicates
    exactly like :func:`~repro.core.homomorphism.contained_in`)."""
    rights = [_containment_view(d) for d in disjuncts_of(q2)]
    for left in disjuncts_of(q1):
        if not left.is_satisfiable():
            continue
        view = _containment_view(left)
        if not any(contained_in(view, right) for right in rights):
            return False
    return True


def union_equivalent(q1: AnyQuery, q2: AnyQuery) -> bool:
    """Semantic equivalence of two UCQs (mutual containment)."""
    return union_contained_in(q1, q2) and union_contained_in(q2, q1)


# ----------------------------------------------------------------------
# CNF view
# ----------------------------------------------------------------------

#: Distribution guard: a CNF with more clauses than this is refused.
MAX_CNF_CLAUSES = 256


def ucq_cnf(
    query: AnyQuery, max_clauses: int = MAX_CNF_CLAUSES
) -> List[UnionQuery]:
    """The CNF view of a Boolean UCQ: a list of clauses (unions of
    factors) whose conjunction is equivalent to the union.

    Distributes over the disjuncts' connected components (the paper's
    factors): ``∨_i ∧_j c_ij  ≡  ∧_f ∨_i c_{i,f(i)}`` for every choice
    ``f`` of one component per disjunct.

    Raises:
        ValueError: the query is not Boolean, or distribution would
            produce more than ``max_clauses`` clauses.
    """
    disjuncts = disjuncts_of(query)
    if any(d.head is not None for d in disjuncts):
        raise ValueError("ucq_cnf applies to Boolean unions only")
    factor_lists: List[List[ConjunctiveQuery]] = []
    for disjunct in disjuncts:
        components = disjunct.connected_components()
        factor_lists.append(components if components else [disjunct])
    total = 1
    for factors in factor_lists:
        total *= len(factors)
        if total > max_clauses:
            raise ValueError(
                f"CNF distribution would exceed {max_clauses} clauses"
            )
    return [
        UnionQuery(choice) for choice in itertools.product(*factor_lists)
    ]


def minimize_ucq_in_cnf(
    clauses: Sequence[AnyQuery], minimize_each: bool = True
) -> List[UnionQuery]:
    """Minimize a CNF (conjunction of unions) by containment.

    Each clause's disjunct list is DNF-minimized, then a clause implied
    by another kept clause is dropped (``C' ⊑ C`` as unions means
    ``C' ⇒ C``, so ``C`` is redundant in the conjunction).  A trivially
    true clause disappears; a clause with no satisfiable disjunct makes
    the whole conjunction false and is returned alone.
    """
    reduced: List[UnionQuery] = []
    for clause in clauses:
        disjuncts = minimize_ucq_in_dnf(
            list(disjuncts_of(clause)), minimize_each=minimize_each
        )
        if not disjuncts:
            # An unsatisfiable clause falsifies the conjunction.
            return [UnionQuery(disjuncts_of(clause))]
        if any(not d.atoms for d in disjuncts):
            continue  # trivially true clause
        reduced.append(UnionQuery(disjuncts))
    kept: List[UnionQuery] = []
    for i, clause in enumerate(reduced):
        redundant = False
        for j, other in enumerate(reduced):
            if i == j:
                continue
            if union_contained_in(other, clause):
                if not union_contained_in(clause, other) or j < i:
                    redundant = True
                    break
        if not redundant:
            kept.append(clause)
    return kept


# ----------------------------------------------------------------------
# Shattering of constants
# ----------------------------------------------------------------------

#: Guard against pathological blow-up: shattering stops splitting once
#: the disjunct list reaches this size (the transform stays equivalence-
#: preserving — it just leaves some positions unshattered).
MAX_SHATTER_DISJUNCTS = 64


def shatter_constants(
    query_or_disjuncts: Union[AnyQuery, Sequence[ConjunctiveQuery]],
    max_disjuncts: int = MAX_SHATTER_DISJUNCTS,
) -> List[ConjunctiveQuery]:
    """Split variable/constant positions of self-joined relations.

    Wherever a relation symbol occurs in several sub-goals (of one
    disjunct or across disjuncts) with a constant ``c`` at position
    ``p`` in one occurrence and a variable ``x`` at position ``p`` in
    another, the variable occurrence is split by the equivalence
    ``q ≡ q[x:=c] ∨ (q, x ≠ c)``, iterated to a fixpoint.  Afterwards
    every such pair is *determined* (equal or distinct), so the tuple-
    sharing tests of the lifted engine see syntactically disjoint
    atoms instead of having to refine on demand.

    Accepts a query (CQ or union) or a raw disjunct list; returns the
    shattered disjunct list (equivalent as a union to the input).
    """
    if isinstance(query_or_disjuncts, (ConjunctiveQuery, UnionQuery)):
        pending = list(disjuncts_of(query_or_disjuncts))
    else:
        pending = list(query_or_disjuncts)
    result: List[ConjunctiveQuery] = list(pending)
    changed = True
    while changed and len(result) < max_disjuncts:
        changed = False
        constants_at = _constant_positions(result)
        for index, disjunct in enumerate(result):
            split = _shatter_step(disjunct, constants_at)
            if split is not None:
                result[index:index + 1] = split
                changed = True
                break
    return result


def _constant_positions(
    disjuncts: Sequence[ConjunctiveQuery],
) -> Dict[Tuple[str, int], Set[Constant]]:
    """Constants by (relation, position) across all sub-goals of all
    disjuncts — but only for relation symbols occurring more than once
    (shattering single-occurrence symbols cannot enable independence)."""
    occurrence_count: Dict[str, int] = {}
    for disjunct in disjuncts:
        for atom in disjunct.atoms:
            occurrence_count[atom.relation] = (
                occurrence_count.get(atom.relation, 0) + 1
            )
    positions: Dict[Tuple[str, int], Set[Constant]] = {}
    for disjunct in disjuncts:
        for atom in disjunct.atoms:
            if occurrence_count[atom.relation] < 2:
                continue
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    positions.setdefault(
                        (atom.relation, position), set()
                    ).add(term)
    return positions


def _shatter_step(
    disjunct: ConjunctiveQuery,
    constants_at: Dict[Tuple[str, int], Set[Constant]],
) -> Optional[List[ConjunctiveQuery]]:
    """One split ``d → [d[x:=c], (d, x≠c)]``, or None at fixpoint."""
    constraints = disjunct.order_constraints
    for atom in disjunct.atoms:
        for position, term in enumerate(atom.terms):
            if not isinstance(term, Variable):
                continue
            for constant in sorted(
                constants_at.get((atom.relation, position), ()),
                key=str,
            ):
                determined = constraints.entails(
                    Comparison("=", term, constant)
                ) or constraints.entails(
                    Comparison("!=", term, constant)
                )
                if determined:
                    continue
                equal = disjunct.substitute(term, constant)
                distinct = ConjunctiveQuery(
                    disjunct.atoms,
                    disjunct.predicates
                    + (Comparison("!=", term, constant),),
                    head=disjunct.head,
                )
                return [equal, distinct]
    return None
