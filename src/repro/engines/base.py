"""Common engine interface and error types."""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from ..core.query import ConjunctiveQuery
from ..core.union import AnyQuery
from ..db.database import GroundTuple, ProbabilisticDatabase
from ..db.relation import canonical_row_key

#: One ranked answer: (answer tuple, probability).
Answer = Tuple[GroundTuple, float]


def clamp01(value: float) -> float:
    """Clamp a probability into [0, 1].

    Shared by every engine that reports estimates or float-summed
    exact values: the unbiased Monte Carlo estimators can overshoot on
    small sample counts, and deterministic circuit sums can drift by
    float epsilons on huge circuits.
    """
    return min(max(value, 0.0), 1.0)


class EngineError(Exception):
    """Base class for evaluation errors."""


class UnsupportedQueryError(EngineError):
    """The engine's preconditions exclude this query.

    The message names the *precise* cause — a union handed to a
    CQ-only engine, the self-joined relation symbol, the
    non-hierarchical variable pair, a blown compilation budget — so
    :class:`~repro.engines.router.RoutingDecision.fallback_reason` and
    serving-layer errors explain the routing instead of reporting a
    generic "unsupported query".  Engines whose admission is syntactic
    produce the message through :meth:`Engine.supports`.
    """


class UnsafeQueryError(EngineError):
    """The lifted engine found no PTIME decomposition.

    By the dichotomy theorem (Theorem 1.8) this means the query is
    #P-hard (assuming the search was exhaustive), and callers should
    fall back to the exact-but-exponential oracle or to Monte Carlo.
    """

    def __init__(self, message: str, query: Optional[AnyQuery] = None):
        super().__init__(message)
        self.query = query


class Engine(abc.ABC):
    """An evaluator mapping (query, database) to a probability."""

    #: Human-readable engine name, used by the router and benchmark reports.
    name: str = "engine"

    @abc.abstractmethod
    def probability(
        self, query: AnyQuery, db: ProbabilisticDatabase
    ) -> float:
        """The probability that ``query`` is true on ``db``.

        ``query`` is a :class:`~repro.core.query.ConjunctiveQuery` or a
        :class:`~repro.core.union.UnionQuery` (engines that only handle
        CQs say so through :meth:`supports`).  An answer-tuple query is
        read as its Boolean existential closure (the head does not add
        sub-goals).
        """

    def supports(self, query: AnyQuery) -> Optional[str]:
        """``None`` when the engine's *syntactic* preconditions admit
        ``query``; otherwise a precise human-readable reason.

        The reason names the exact cause — union vs self-join vs
        predicate vs hierarchy — and becomes the message of the
        :class:`UnsupportedQueryError` that :meth:`prepare` raises, and
        (via the router) the ``fallback_reason`` users see.  The
        default accepts everything.
        """
        return None

    def prepare(self, query: AnyQuery) -> None:
        """Database-independent admission check, run once per query.

        The serving layer (and the router's :meth:`plan_query
        <repro.engines.router.RouterEngine.plan_query>`) call this when
        a query is *prepared*: an engine whose preconditions are purely
        syntactic raises :class:`UnsupportedQueryError` /
        :class:`UnsafeQueryError` here, so routing is decided once
        instead of per evaluation.  The default raises exactly when
        :meth:`supports` reports a reason — engines whose admission
        depends on the database (e.g. the compiled engine's node
        budget) decide at evaluation time.
        """
        reason = self.supports(query)
        if reason is not None:
            raise UnsupportedQueryError(f"{reason}: {query}")

    def answers(
        self,
        query: AnyQuery,
        db: ProbabilisticDatabase,
        k: Optional[int] = None,
    ) -> List[Answer]:
        """The answer tuples of ``query``, ranked by probability.

        A Boolean query yields the single answer ``()`` with ``p(q)``.
        The default implementation enumerates candidate answers with
        one shared grounding pass, then evaluates each *residual*
        Boolean query (head variables bound to the answer's constants)
        through :meth:`probability`; engines override this with
        shared-work plans.

        Args:
            query: Boolean or answer-tuple conjunctive query (an
                answer-tuple query carries a head, e.g. parsed from
                ``"Q(x) :- R(x), S(x,y)"``).
            db: the database to evaluate over.
            k: keep only the ``k`` most probable answers (None = all).

        Returns:
            ``(answer tuple, probability)`` pairs sorted by descending
            probability (ties broken by canonical tuple order); exact
            zeros are dropped.

        Raises:
            UnsupportedQueryError: the engine's preconditions exclude
                this query (e.g. a self-join handed to the safe-plan
                engine).
            UnsafeQueryError: the lifted engine found no PTIME
                decomposition — the query is #P-hard.

        Example (with the router as the engine)::

            >>> from repro.core.parser import parse
            >>> from repro.db.database import ProbabilisticDatabase
            >>> from repro.engines.router import RouterEngine
            >>> db = ProbabilisticDatabase.from_dict(
            ...     {"R": {(1,): 0.5, (2,): 0.9}, "S": {(1, 7): 0.4, (2, 7): 0.8}})
            >>> RouterEngine().answers(parse("Q(x) :- R(x), S(x,y)"), db, k=1)
            [((2,), 0.7200000000000001)]
        """
        if query.head is None:
            return rank_answers([((), self.probability(query, db))], k)
        from ..lineage.grounding import answer_tuples

        results = [
            (answer, self.probability(query.bind_head(answer), db))
            for answer in answer_tuples(query, db)
        ]
        return rank_answers(results, k)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def rank_answers(
    results: List[Answer], k: Optional[int] = None
) -> List[Answer]:
    """Sort by descending probability (ties by canonical tuple order),
    drop exact zeros, truncate to the top ``k``."""
    ranked = sorted(
        (item for item in results if item[1] > 0.0),
        key=lambda item: (-item[1], canonical_row_key(item[0])),
    )
    return ranked if k is None else ranked[:k]
