"""Common engine interface and error types."""

from __future__ import annotations

import abc
from typing import Optional

from ..core.query import ConjunctiveQuery
from ..db.database import ProbabilisticDatabase


class EngineError(Exception):
    """Base class for evaluation errors."""


class UnsupportedQueryError(EngineError):
    """The engine's preconditions exclude this query.

    E.g. the safe-plan engine refuses self-joins; the brute-force engine
    refuses instances with too many uncertain tuples.
    """


class UnsafeQueryError(EngineError):
    """The lifted engine found no PTIME decomposition.

    By the dichotomy theorem (Theorem 1.8) this means the query is
    #P-hard (assuming the search was exhaustive), and callers should
    fall back to the exact-but-exponential oracle or to Monte Carlo.
    """

    def __init__(self, message: str, query: Optional[ConjunctiveQuery] = None):
        super().__init__(message)
        self.query = query


class Engine(abc.ABC):
    """An evaluator mapping (query, database) to a probability."""

    #: Human-readable engine name, used by the router and benchmark reports.
    name: str = "engine"

    @abc.abstractmethod
    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        """The probability that ``query`` is true on ``db``."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
