"""Exact evaluation through lineage + weighted model counting.

Always exact, for *every* query — the cost is potentially exponential
(#P-hardness is real), but component decomposition and caching make it
polynomial on lineages of safe queries in practice.  Serves as the
repository's oracle and as the router's exact fallback.
"""

from __future__ import annotations

from ..core.query import ConjunctiveQuery
from ..db.database import ProbabilisticDatabase
from ..lineage.grounding import ground_lineage
from ..lineage.wmc import exact_probability
from .base import Engine


class LineageEngine(Engine):
    """Ground to DNF lineage, then exact weighted model counting."""

    name = "lineage-wmc"

    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        return exact_probability(ground_lineage(query, db))
