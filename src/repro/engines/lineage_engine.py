"""Exact evaluation through lineage + weighted model counting.

Always exact, for *every* query — the cost is potentially exponential
(#P-hardness is real), but component decomposition and caching make it
polynomial on lineages of safe queries in practice.  Serves as the
repository's oracle and as the router's exact fallback.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.union import AnyQuery
from ..db.database import ProbabilisticDatabase
from ..lineage.grounding import ground_answer_lineages, ground_lineage
from ..lineage.planner import GroundingPlanner
from ..lineage.wmc import exact_probability
from .base import Answer, Engine, rank_answers


class LineageEngine(Engine):
    """Ground to DNF lineage, then exact weighted model counting.

    Args:
        planner: grounding planner to use (shared plan cache +
            metrics); the module-wide default when None.
    """

    name = "lineage-wmc"

    def __init__(self, planner: Optional[GroundingPlanner] = None) -> None:
        self.planner = planner

    def probability(
        self, query: AnyQuery, db: ProbabilisticDatabase
    ) -> float:
        return exact_probability(
            ground_lineage(query, db, planner=self.planner)
        )

    def answers(
        self,
        query: AnyQuery,
        db: ProbabilisticDatabase,
        k: Optional[int] = None,
    ) -> List[Answer]:
        """One shared grounding pass, one WMC run per answer lineage."""
        if query.head is None:
            return super().answers(query, db, k)
        results = [
            (answer, exact_probability(lineage))
            for answer, lineage in ground_answer_lineages(
                query, db, planner=self.planner
            ).items()
        ]
        return rank_answers(results, k)
