"""Optional numba-jitted sampling kernels (gated, never required).

The vectorized numpy Karp–Luby path evaluates *every* clause of every
trial: the padded gather has no way to stop at the chosen clause, so a
trial whose first clause is already satisfied still pays for the full
clause matrix.  A scalar jitted loop can do what the python oracle
does — scan clauses in order and break at the first satisfied one, and
sample *world* bits only inside the comparison — while running at
compiled speed.

numba is deliberately not a dependency: this module degrades to
``HAVE_NUMBA = False`` when the import fails, and
:func:`repro.engines.montecarlo.resolve_backend` then never selects
the ``"numba"`` backend.  Nothing here is imported for its side
effects; the kernel is compiled lazily on first call.

Determinism contract: the kernel consumes *pre-drawn* uniforms (the
same ``(n_events, batch)`` float32 matrix the numpy path compares
against the weights), so its hit counts are bit-identical to the numpy
backend's for the same generator stream — the parity suite pins this.
"""

from __future__ import annotations

try:  # pragma: no cover - which branch runs depends on the env
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    numba = None
    HAVE_NUMBA = False

__all__ = ["HAVE_NUMBA", "kl_coverage_hits"]


def _kl_coverage_hits_py(
    clause_starts,
    literal_events,
    literal_polarities,
    weights_f32,
    chosen,
    uniforms,
    forced,
):
    """Karp–Luby coverage count over one pre-drawn uniform batch.

    For each trial (column of ``uniforms``): force the chosen clause's
    literals, then scan the *earlier* clauses in order; the trial is a
    hit iff none of them is satisfied.  World bits are materialized
    lazily — ``uniforms[event, trial] < weight`` — only when a clause
    scan actually reads them, and the scan breaks at the first
    satisfied clause, which is exactly the work the fully-vectorized
    path cannot skip.

    ``forced`` is caller-provided int8 scratch of length ``n_events``
    (-1 unset, else the forced bit) so the kernel allocates nothing;
    it is reset clause-locally after every trial.
    """
    hits = 0
    batch = uniforms.shape[1]
    for trial in range(batch):
        clause = chosen[trial]
        for position in range(clause_starts[clause], clause_starts[clause + 1]):
            forced[literal_events[position]] = literal_polarities[position]
        covered = True
        for earlier in range(clause):
            satisfied = True
            for position in range(
                clause_starts[earlier], clause_starts[earlier + 1]
            ):
                event = literal_events[position]
                state = forced[event]
                if state < 0:
                    value = uniforms[event, trial] < weights_f32[event]
                else:
                    value = state != 0
                if value != (literal_polarities[position] != 0):
                    satisfied = False
                    break
            if satisfied:
                covered = False
                break
        if covered:
            hits += 1
        for position in range(clause_starts[clause], clause_starts[clause + 1]):
            forced[literal_events[position]] = -1
    return hits


if HAVE_NUMBA:  # pragma: no cover - numba absent in the reference env
    kl_coverage_hits = numba.njit(cache=True, nogil=True)(
        _kl_coverage_hits_py
    )
else:
    kl_coverage_hits = _kl_coverage_hits_py
