"""Exact evaluation through knowledge compilation.

The second exact backend next to :class:`LineageEngine`: ground the
query to its lineage DNF, compile the DNF into a structured circuit
(OBDD or d-DNNF), evaluate in time linear in circuit size.  The
compiled artifact is cached on the lineage's clause structure, so
repeated or re-weighted queries skip compilation entirely — the
capability the recursive WMC oracle fundamentally lacks.

Modes:

* ``obdd`` — bottom-up Apply compilation under a variable-ordering
  heuristic (see :mod:`repro.compile.ordering`);
* ``dnnf`` — top-down decomposition mirroring the WMC oracle's trace;
* ``auto`` — try the OBDD first (smaller, canonical, cheapest to
  re-evaluate), fall back to d-DNNF when the OBDD blows the node
  budget.

With ``max_nodes`` set, compilation failure raises
:class:`UnsupportedQueryError`, which the router interprets as "fall
through to Monte Carlo".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..compile.cache import CircuitCache
from ..compile.circuit import BudgetExceeded
from ..compile.dnnf import CompiledDNNF, compile_dnnf
from ..compile.obdd import CompiledOBDD, compile_obdd
from ..core.query import ConjunctiveQuery
from ..db.database import ProbabilisticDatabase
from ..lineage.boolean import Lineage
from ..lineage.grounding import ground_lineage
from .base import Engine, UnsupportedQueryError

MODES = ("obdd", "dnnf", "auto")

Artifact = Union[CompiledOBDD, CompiledDNNF]


@dataclass
class CompilationReport:
    """What the last compilation produced (CLI and benchmark output)."""

    mode: str
    ordering: str
    size: int
    variables: int
    clauses: int
    cached: bool

    def describe(self) -> str:
        origin = "cache" if self.cached else "fresh"
        ordering = f", ordering={self.ordering}" if self.ordering else ""
        return (
            f"{self.mode} circuit: {self.size} nodes over "
            f"{self.variables} events / {self.clauses} clauses "
            f"({origin}{ordering})"
        )


class CompiledEngine(Engine):
    """Ground to lineage, compile to a circuit, evaluate linearly."""

    name = "compiled"

    def __init__(
        self,
        mode: str = "auto",
        ordering: str = "auto",
        max_nodes: Optional[int] = None,
        cache: Optional[CircuitCache] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
        self.mode = mode
        self.ordering = ordering
        self.max_nodes = max_nodes
        self.cache = cache if cache is not None else CircuitCache()
        self.last_report: Optional[CompilationReport] = None

    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        lineage = ground_lineage(query, db)
        if lineage.certainly_true:
            return 1.0
        if lineage.is_false:
            return 0.0
        artifact = self.compile_lineage(lineage, query)
        value = float(artifact.probability(lineage.weights))
        # Deterministic sums can drift by float epsilons on huge circuits.
        return min(max(value, 0.0), 1.0)

    def compile_lineage(
        self, lineage: Lineage, query: Optional[ConjunctiveQuery] = None
    ) -> Artifact:
        """The compiled artifact for a lineage, via the structural cache."""
        key = CircuitCache.key_for(lineage, self.mode, self.ordering)
        artifact = self.cache.get(key)
        cached = artifact is not None
        if not cached:
            artifact = self._compile(lineage, query)
            self.cache.put(key, artifact)
        self.last_report = CompilationReport(
            mode="obdd" if isinstance(artifact, CompiledOBDD) else "dnnf",
            ordering=getattr(artifact, "ordering", ""),
            size=artifact.size,
            variables=lineage.variable_count,
            clauses=lineage.clause_count(),
            cached=cached,
        )
        return artifact

    def _compile(
        self, lineage: Lineage, query: Optional[ConjunctiveQuery]
    ) -> Artifact:
        try:
            if self.mode == "obdd":
                return compile_obdd(
                    lineage, self.ordering, query, self.max_nodes
                )
            if self.mode == "dnnf":
                return compile_dnnf(lineage, query, self.max_nodes)
            try:
                return compile_obdd(
                    lineage, self.ordering, query, self.max_nodes
                )
            except BudgetExceeded:
                return compile_dnnf(lineage, query, self.max_nodes)
        except (BudgetExceeded, RecursionError) as error:
            raise UnsupportedQueryError(
                f"lineage did not compile within budget "
                f"({lineage.variable_count} events, "
                f"{lineage.clause_count()} clauses): {error}"
            ) from error
