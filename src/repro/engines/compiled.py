"""Exact evaluation through knowledge compilation.

The second exact backend next to :class:`LineageEngine`: ground the
query to its lineage DNF, compile the DNF into a structured circuit
(OBDD or d-DNNF), evaluate in time linear in circuit size.  The
compiled artifact is cached on the lineage's clause structure, so
repeated or re-weighted queries skip compilation entirely — the
capability the recursive WMC oracle fundamentally lacks.

Modes:

* ``obdd`` — bottom-up Apply compilation under a variable-ordering
  heuristic (see :mod:`repro.compile.ordering`);
* ``dnnf`` — top-down decomposition mirroring the WMC oracle's trace;
* ``auto`` — try the OBDD first (smaller, canonical, cheapest to
  re-evaluate), fall back to d-DNNF when the OBDD blows the node
  budget.

With ``max_nodes`` set, compilation failure raises
:class:`UnsupportedQueryError`, which the router interprets as "fall
through to Monte Carlo".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple, Union

from ..compile.cache import CircuitCache
from ..compile.circuit import BudgetExceeded
from ..compile.dnnf import CompiledDNNF, compile_dnnf
from ..compile.evaluate import reweighted_probabilities
from ..compile.obdd import CompiledOBDD, compile_obdd
from ..core.query import ConjunctiveQuery
from ..core.union import AnyQuery
from ..db.database import ProbabilisticDatabase, TupleKey
from ..db.relation import canonical_row_key
from ..lineage.boolean import Lineage
from ..lineage.grounding import ground_answer_lineages, ground_lineage
from ..lineage.planner import GroundingPlanner
from .base import Answer, Engine, UnsupportedQueryError, clamp01, rank_answers

MODES = ("obdd", "dnnf", "auto")

Artifact = Union[CompiledOBDD, CompiledDNNF]


@dataclass
class CompilationReport:
    """What the last compilation produced (CLI and benchmark output)."""

    mode: str
    ordering: str
    size: int
    variables: int
    clauses: int
    cached: bool

    def describe(self) -> str:
        origin = "cache" if self.cached else "fresh"
        ordering = f", ordering={self.ordering}" if self.ordering else ""
        return (
            f"{self.mode} circuit: {self.size} nodes over "
            f"{self.variables} events / {self.clauses} clauses "
            f"({origin}{ordering})"
        )


class CompiledEngine(Engine):
    """Ground to lineage, compile to a circuit, evaluate linearly."""

    name = "compiled"

    def __init__(
        self,
        mode: str = "auto",
        ordering: str = "auto",
        max_nodes: Optional[int] = None,
        cache: Optional[CircuitCache] = None,
        planner: Optional[GroundingPlanner] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
        self.mode = mode
        self.ordering = ordering
        self.max_nodes = max_nodes
        self.cache = cache if cache is not None else CircuitCache()
        self.planner = planner
        self.last_report: Optional[CompilationReport] = None

    def probability(
        self, query: AnyQuery, db: ProbabilisticDatabase
    ) -> float:
        lineage = ground_lineage(query, db, planner=self.planner)
        # The query only guides the OBDD variable order, and the order
        # heuristics read CQ structure — a union compiles order-free
        # from its (already DNF) lineage.
        hint = query if isinstance(query, ConjunctiveQuery) else None
        return self.probability_of_lineage(lineage, hint)

    def probability_of_lineage(
        self, lineage: Lineage, query: Optional[ConjunctiveQuery] = None
    ) -> float:
        """Exact probability of an already-grounded lineage."""
        if lineage.certainly_true:
            return 1.0
        if lineage.is_false:
            return 0.0
        artifact = self.compile_lineage(lineage, query)
        value = float(artifact.probability(lineage.weights))
        # Deterministic sums can drift by float epsilons on huge circuits.
        return clamp01(value)

    def answers(
        self,
        query: AnyQuery,
        db: ProbabilisticDatabase,
        k: Optional[int] = None,
    ) -> List[Answer]:
        """Per-answer lineages compiled through one shared circuit.

        The per-answer lineages of one query are instances of the same
        clause *shape* — only the tuple events differ.  Each lineage is
        renamed onto canonical integer events before compilation, so
        the structural cache key collides across answers and the
        circuit is compiled once.  Answers sharing a circuit are then
        re-weighted together: their canonical marginals become the rows
        of one weight matrix and a single batched bottom-up sweep
        (``probability_batch``) evaluates every answer at once, instead
        of one linear pass per answer.
        """
        if query.head is None:
            return super().answers(query, db, k)
        results: List[Answer] = []
        # cache key -> (artifact, canonical event order, [(answer, weights)])
        groups: Dict[Hashable, Tuple[Artifact, List, List]] = {}
        for answer, lineage in ground_answer_lineages(
            query, db, planner=self.planner
        ).items():
            if lineage.certainly_true:
                results.append((answer, 1.0))
                continue
            if lineage.is_false:
                results.append((answer, 0.0))
                continue
            canonical, weights, _renaming = canonicalize_lineage(lineage)
            key = CircuitCache.key_for(canonical, self.mode, self.ordering)
            entry = groups.get(key)
            if entry is None:
                artifact = self.compile_lineage(canonical, None)
                # Same clause set => same canonical event set, so the
                # first member's event order serves the whole group.
                entry = groups[key] = (artifact, sorted(weights), [])
            entry[2].append((answer, weights))
        for artifact, events, members in groups.values():
            rows = [[w[event] for event in events] for _answer, w in members]
            values = reweighted_probabilities(artifact, events, rows)
            for (answer, _w), value in zip(members, values):
                results.append((answer, clamp01(value)))
        return rank_answers(results, k)

    def answer_probability(self, lineage: Lineage) -> float:
        """Probability of one answer's lineage via the shape-canonical
        circuit cache."""
        if lineage.certainly_true:
            return 1.0
        if lineage.is_false:
            return 0.0
        canonical, weights, _renaming = canonicalize_lineage(lineage)
        artifact = self.compile_lineage(canonical, None)
        value = float(artifact.probability(weights))
        return clamp01(value)

    def compile_lineage(
        self, lineage: Lineage, query: Optional[ConjunctiveQuery] = None
    ) -> Artifact:
        """The compiled artifact for a lineage, via the structural cache."""
        key = CircuitCache.key_for(lineage, self.mode, self.ordering)
        artifact = self.cache.get(key)
        cached = artifact is not None
        if not cached:
            artifact = self._compile(lineage, query)
            self.cache.put(key, artifact)
        self.last_report = CompilationReport(
            mode="obdd" if isinstance(artifact, CompiledOBDD) else "dnnf",
            ordering=getattr(artifact, "ordering", ""),
            size=artifact.size,
            variables=lineage.variable_count,
            clauses=lineage.clause_count(),
            cached=cached,
        )
        return artifact

    def _compile(
        self, lineage: Lineage, query: Optional[ConjunctiveQuery]
    ) -> Artifact:
        try:
            if self.mode == "obdd":
                return compile_obdd(
                    lineage, self.ordering, query, self.max_nodes
                )
            if self.mode == "dnnf":
                return compile_dnnf(lineage, query, self.max_nodes)
            try:
                return compile_obdd(
                    lineage, self.ordering, query, self.max_nodes
                )
            except BudgetExceeded:
                return compile_dnnf(lineage, query, self.max_nodes)
        except (BudgetExceeded, RecursionError) as error:
            raise UnsupportedQueryError(
                f"lineage did not compile within budget "
                f"({lineage.variable_count} events, "
                f"{lineage.clause_count()} clauses): {error}"
            ) from error


def canonicalize_lineage(
    lineage: Lineage,
) -> Tuple[Lineage, Dict[TupleKey, float], Dict[TupleKey, TupleKey]]:
    """Rename tuple events onto canonical integer ids.

    Events are ordered by an iteratively-refined structural signature
    (clause sizes and polarities they appear under, then the signatures
    of their co-literals), so isomorphic lineages — e.g. the per-answer
    lineages of one query — usually map to the *same* renamed clause
    set and share a cache entry.  Signature ties fall back to the
    original event key: that can only miss a cache hit, never conflate
    two lineages, because the cache key is the renamed clause set
    itself.

    Returns the renamed lineage, the weight map for its events, and
    the renaming itself (original event → canonical event) — the
    serving layer inverts it to refresh canonical weight vectors from
    live database marginals.
    """
    occurrence_lists: Dict[TupleKey, List[tuple]] = {}
    for clause in lineage.clauses:
        for key, polarity in clause:
            occurrence_lists.setdefault(key, []).append((len(clause), polarity))
    signatures: Dict[TupleKey, tuple] = {
        key: tuple(sorted(entries))
        for key, entries in occurrence_lists.items()
    }
    # One refinement pass: extend each occurrence with the signatures
    # of its co-literals, again visiting every clause only once.
    refined_lists: Dict[TupleKey, List[tuple]] = {key: [] for key in signatures}
    for clause in lineage.clauses:
        members = sorted(clause, key=lambda lit: (signatures[lit[0]], lit[1]))
        member_signatures = [
            (signatures[key], polarity) for key, polarity in members
        ]
        for position, (key, polarity) in enumerate(members):
            others = tuple(
                member_signatures[:position] + member_signatures[position + 1:]
            )
            refined_lists[key].append((len(clause), polarity, others))
    refined: Dict[TupleKey, tuple] = {
        key: tuple(sorted(entries))
        for key, entries in refined_lists.items()
    }
    order = sorted(
        signatures,
        key=lambda key: (refined[key], signatures[key], _event_tiebreak(key)),
    )
    renamed_key: Dict[TupleKey, TupleKey] = {
        key: ("e", (index,)) for index, key in enumerate(order)
    }
    renamed_clauses = frozenset(
        frozenset((renamed_key[k], polarity) for k, polarity in clause)
        for clause in lineage.clauses
    )
    weights = {
        renamed_key[k]: lineage.weights[k] for k in order
    }
    return (
        Lineage(renamed_clauses, weights, certainly_true=lineage.certainly_true),
        weights,
        renamed_key,
    )


def _event_tiebreak(key: TupleKey):
    name, row = key
    return (name, canonical_row_key(row))
