"""Lifted evaluation: the executable PTIME side of the dichotomy.

This engine evaluates conjunctive queries — *including self-joins* — by
recursively decomposing them with four rules, mirroring how the paper's
coverage-expansion algorithm (Sections 3.2–3.4) exploits independence:

1. **Independent union / join**: sub-queries that can never share a
   ground tuple are probabilistically independent.  Sharing is decided
   semantically: two atoms with the same relation symbol may share a
   tuple iff equating their argument positions is consistent with both
   sides' order predicates (:func:`may_share_tuple`).
2. **Inclusion–exclusion**: dependent connected components ``c1..ck`` of
   a CQ satisfy ``P(∧ c_i) = Σ_{∅≠S} (-1)^{|S|+1} P(∨_S c_i)``, pushing
   the work into unions.
3. **Separators**: a choice of one variable per disjunct, occurring in
   every sub-goal of its disjunct, such that instances for different
   domain values can never share a tuple.  Then
   ``P = 1 - Π_a (1 - P(Q[a]))`` — Equation (3) generalized.
4. **Order refinement** (the paper's canonical coverage ``C<``, applied
   lazily): when no separator exists, split on an undetermined variable
   pair ``(u, v)`` of a self-joined atom into ``u<v ∨ u=v ∨ u>v``
   branches.  This is what makes queries like ``R(x,y), R(y,x)`` or the
   footnote-1 4-ary self-joins evaluable (Example 3.5).

When no rule applies the engine raises :class:`UnsafeQueryError`; by
Theorem 1.8 such queries are #P-hard, and the router falls back to the
exact lineage oracle or Monte Carlo.  Running the same recursion
without a database (:func:`is_safe_query`) yields a purely syntactic
safety decision used to cross-check the paper's classifier.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.orders import OrderConstraints
from ..core.predicates import Comparison
from ..core.query import ConjunctiveQuery
from ..core.substitution import Substitution, fresh_renaming
from ..core.terms import Constant, Term, Variable
from ..core.union import (
    AnyQuery,
    disjuncts_of,
    minimize_ucq_in_dnf,
    shatter_constants,
)
from ..db.database import ProbabilisticDatabase
from .base import Engine, UnsafeQueryError, UnsupportedQueryError

#: Hard recursion bound: a safe query never comes close (depth is
#: bounded by variables + refinable pairs), so hitting it indicates a bug.
MAX_DEPTH = 200


class LiftedEngine(Engine):
    """Exact PTIME evaluation of safe queries — self-joins and unions.

    A :class:`~repro.core.union.UnionQuery` enters the solver's union
    recursion directly (its inclusion–exclusion path was built for
    exactly this), so safe UCQs with self-joins evaluate exactly in
    PTIME.  ``shatter`` pre-splits variable/constant positions of
    self-joined relations (:func:`~repro.core.union.shatter_constants`)
    so the safety decision and the evaluation see the same shattered
    disjunct list; ``minimize_queries`` controls the containment-based
    DNF minimization inside the recursion.
    """

    name = "lifted"

    def __init__(
        self, minimize_queries: bool = True, shatter: bool = True
    ) -> None:
        self.minimize_queries = minimize_queries
        self.shatter = shatter

    def supports(self, query: AnyQuery) -> Optional[str]:
        """Syntactic precondition: every disjunct range-restricted.

        Safety itself is decided by :meth:`prepare` (it raises
        :class:`UnsafeQueryError`, a different failure class: the query
        is *beyond PTIME*, not merely outside this engine's syntax).
        """
        for disjunct in disjuncts_of(query):
            boolean = disjunct.boolean()
            if not boolean.is_range_restricted():
                loose = [
                    v.name for v in boolean.variables
                    if all(v not in a.variables for a in boolean.positive_atoms)
                ]
                return (
                    f"not range-restricted: variables {loose} occur only "
                    f"in negated sub-goals or predicates"
                )
        return None

    def prepare(self, query: AnyQuery) -> None:
        """Admission = the syntactic safety decision (database-free).

        For an answer-tuple query pass the generic residual, exactly
        as :meth:`answers` would check it.
        """
        reason = self.supports(query)
        if reason is not None:
            raise UnsupportedQueryError(f"{reason}: {query}")
        report = is_safe_query(
            query, self.minimize_queries, shatter=self.shatter
        )
        if not report.safe:
            raise UnsafeQueryError(
                f"no PTIME decomposition for {query} "
                f"(stuck on {report.stuck_on})",
                query=query,
            )

    def _boolean_disjuncts(self, query: AnyQuery) -> List[ConjunctiveQuery]:
        """The checked (and, when enabled, shattered) disjunct list the
        solver evaluates — identical to what the safety decision saw."""
        reason = self.supports(query)
        if reason is not None:
            raise UnsupportedQueryError(f"{reason}: {query}")
        disjuncts = [d.boolean() for d in disjuncts_of(query)]
        if self.shatter:
            disjuncts = shatter_constants(disjuncts)
        return disjuncts

    def probability(
        self, query: AnyQuery, db: ProbabilisticDatabase
    ) -> float:
        solver = _Solver(db, minimize_queries=self.minimize_queries)
        return solver.union(self._boolean_disjuncts(query), 0)

    def answers(self, query, db, k=None, assume_safe=False):
        """Residual-query evaluation with the decomposition shared.

        The residual queries of all answers are one query up to the
        head constants, so (a) safety is decided *once* on the generic
        residual instead of once per answer (``assume_safe`` skips even
        that — the router passes it after its own cached check), and
        (b) a single solver with a canonical-form memo table evaluates
        all residuals — sub-unions that do not depend on the head
        constants (shared components, common separator instances) are
        computed once and reused across answers.  Unions bind each
        disjunct's own head per answer; disjuncts inconsistent with an
        answer's constants drop out of that answer's residual union.
        """
        if query.head is None:
            return super().answers(query, db, k)
        reason = self.supports(query)
        if reason is not None:
            raise UnsupportedQueryError(f"{reason}: {query}")
        if not assume_safe:
            from .safe_plan import generic_residual

            report = is_safe_query(
                generic_residual(query), self.minimize_queries,
                shatter=self.shatter,
            )
            if not report.safe:
                raise UnsafeQueryError(
                    f"no PTIME decomposition for the residual of {query} "
                    f"(stuck on {report.stuck_on})",
                    query=query,
                )
        from ..lineage.grounding import answer_tuples
        from .base import rank_answers

        solver = _Solver(
            db, minimize_queries=self.minimize_queries, memoize=True
        )
        results = []
        for answer in answer_tuples(query, db):
            bound = [d for d in disjuncts_of(query.bind_head(answer))]
            if self.shatter:
                bound = shatter_constants(bound)
            results.append((answer, solver.union(bound, 0)))
        return rank_answers(results, k)


@dataclass
class SafetyReport:
    """Outcome of the syntactic safety decision."""

    safe: bool
    #: For unsafe queries: the sub-query on which decomposition got stuck.
    stuck_on: Optional[str] = None
    #: Decomposition statistics (rule application counts).
    rule_counts: Dict[str, int] = field(default_factory=dict)


def is_safe_query(
    query: AnyQuery, minimize_queries: bool = True, shatter: bool = True
) -> SafetyReport:
    """Decide whether the lifted rules fully decompose ``query``.

    Accepts a single CQ or a union; a union enters the solver's union
    recursion directly.  Runs the evaluation recursion with a symbolic
    one-constant domain; success means the query admits a PTIME plan,
    failure (by the dichotomy) that it is #P-hard.  ``shatter``
    pre-splits variable/constant positions exactly as the engine's
    evaluation does, so the decision and the evaluation agree.
    """
    disjuncts = [d.boolean() for d in disjuncts_of(query)]
    for disjunct in disjuncts:
        _check_query(disjunct)
    if shatter:
        disjuncts = shatter_constants(disjuncts)
    solver = _Solver(None, minimize_queries=minimize_queries)
    try:
        solver.union(disjuncts, 0)
    except UnsafeQueryError as err:
        return SafetyReport(
            safe=False,
            stuck_on=str(err.query) if err.query is not None else str(err),
            rule_counts=dict(solver.rule_counts),
        )
    return SafetyReport(safe=True, rule_counts=dict(solver.rule_counts))


def _check_query(query: ConjunctiveQuery) -> None:
    if not query.is_range_restricted():
        raise UnsupportedQueryError(f"query is not range-restricted: {query}")


# ----------------------------------------------------------------------
# Tuple-sharing tests (semantic independence)
# ----------------------------------------------------------------------


def may_share_tuple(
    atom1: Atom,
    constraints1: Sequence[Comparison],
    atom2: Atom,
    constraints2: Sequence[Comparison],
    extra: Sequence[Comparison] = (),
) -> bool:
    """Can the two atoms be grounded to the same tuple?

    The caller must supply the two sides on *disjoint variable spaces*
    (rename one side first).  The test conjoins both constraint sets,
    the positional equalities, and ``extra`` (used for the separator's
    ``x != x'`` side condition), and checks satisfiability over a dense
    ordered domain.
    """
    if atom1.relation != atom2.relation or atom1.arity != atom2.arity:
        return False
    equations = [
        Comparison("=", t1, t2) for t1, t2 in zip(atom1.terms, atom2.terms)
    ]
    system = OrderConstraints(
        tuple(constraints1) + tuple(constraints2) + tuple(equations) + tuple(extra)
    )
    return system.is_satisfiable()


def queries_independent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True when no atom of ``q1`` can share a ground tuple with ``q2``.

    Sound test for probabilistic independence of the two (variable-
    disjoint or not) sub-queries under tuple-independence: events of
    disjoint tuple sets are independent.
    """
    shared_symbols = set(a.relation for a in q1.atoms) & set(
        a.relation for a in q2.atoms
    )
    if not shared_symbols:
        return True
    renamed, renaming = q2.rename_apart(q1.variables, suffix="_i")
    for atom1 in q1.atoms:
        if atom1.relation not in shared_symbols:
            continue
        for atom2 in renamed.atoms:
            if atom2.relation != atom1.relation:
                continue
            if may_share_tuple(
                atom1, q1.predicates, atom2, renamed.predicates
            ):
                return False
    return True


# ----------------------------------------------------------------------
# The solver
# ----------------------------------------------------------------------


class _Solver:
    """Shared recursion for numeric evaluation and safety decision.

    ``db is None`` switches to decision mode: separator recursion uses a
    single fresh symbolic constant and ground look-ups return 0.5.
    """

    def __init__(
        self,
        db: Optional[ProbabilisticDatabase],
        minimize_queries: bool = True,
        memoize: bool = False,
    ) -> None:
        self.db = db
        self.minimize_queries = minimize_queries
        self.rule_counts: Dict[str, int] = {}
        self._fresh_counter = 0
        #: Canonical keys of unions on the current recursion path; a
        #: repeat means inclusion–exclusion is going in circles, i.e.
        #: the decomposition makes no progress on this union.
        self._in_progress: Set[frozenset] = set()
        #: With ``memoize`` (used by ``answers``): completed union
        #: results keyed canonically, shared across residual queries.
        #: Sound because the canonical string is a faithful rendering —
        #: equal keys mean equal-up-to-renaming unions, which have
        #: equal probability on the solver's fixed database.
        self._memo: Optional[Dict[frozenset, float]] = {} if memoize else None
        self.memo_hits = 0

    def _count(self, rule: str) -> None:
        self.rule_counts[rule] = self.rule_counts.get(rule, 0) + 1

    # -- union of CQs ---------------------------------------------------

    def union(self, disjuncts: Sequence[ConjunctiveQuery], depth: int) -> float:
        if depth > MAX_DEPTH:
            raise UnsafeQueryError(
                "recursion limit exceeded (engine bug or adversarial query)"
            )
        normalized = self._normalize(disjuncts)
        if normalized is None:  # some disjunct is certainly true
            return 1.0
        if not normalized:
            return 0.0
        memo_key: Optional[frozenset] = None
        if self._memo is not None:
            memo_key = _canonical_key(normalized)
            cached = self._memo.get(memo_key)
            if cached is not None:
                self.memo_hits += 1
                return cached
        result = self._union_normalized(normalized, depth)
        if memo_key is not None:
            self._memo[memo_key] = result
        return result

    def _union_normalized(
        self, normalized: List[ConjunctiveQuery], depth: int
    ) -> float:
        if len(normalized) == 1:
            return self.cq(normalized[0], depth)

        groups = _dependence_groups(normalized)
        if len(groups) > 1:
            self._count("independent-union")
            result = 1.0
            for group in groups:
                result *= 1.0 - self.union(group, depth + 1)
            return 1.0 - result

        separator = self._find_separator(normalized)
        if separator is not None:
            self._count("union-separator")
            return self._apply_separator(normalized, separator, depth)

        key = _canonical_key(normalized)
        if key not in self._in_progress:
            self._in_progress.add(key)
            try:
                return self._union_inclusion_exclusion(normalized, depth)
            except UnsafeQueryError:
                pass  # fall through to refinement
            finally:
                self._in_progress.discard(key)

        refined = self._refine(normalized)
        if refined is not None:
            self._count("refinement")
            return self.union(refined, depth + 1)

        raise UnsafeQueryError(
            f"no PTIME decomposition for union "
            f"{' | '.join(str(d) for d in normalized)}",
            query=normalized[0],
        )

    def _union_inclusion_exclusion(
        self, disjuncts: Sequence[ConjunctiveQuery], depth: int
    ) -> float:
        """``P(∨ d_i) = Σ_{∅≠S} (-1)^{|S|+1} P(∧_S d_i)``.

        Each conjunction (over renamed-apart copies) is a single CQ
        whose minimization may fold shared structure — the step that
        gives this rule traction.  Cycles through the same union are
        cut by the caller's ``_in_progress`` guard.
        """
        self._count("union-inclusion-exclusion")
        total = 0.0
        for size in range(1, len(disjuncts) + 1):
            sign = 1.0 if size % 2 == 1 else -1.0
            for subset in itertools.combinations(disjuncts, size):
                total += sign * self.union([_conjoin_apart(subset)], depth + 1)
        return total

    # -- single CQ ------------------------------------------------------

    def cq(self, q: ConjunctiveQuery, depth: int) -> float:
        if depth > MAX_DEPTH:
            raise UnsafeQueryError("recursion limit exceeded")
        if not q.variables:
            self._count("ground")
            return self._ground(q)

        components = q.connected_components()
        if len(components) > 1:
            return self._components(components, depth)

        separator = self._find_separator([q])
        if separator is not None:
            self._count("separator")
            return self._apply_separator([q], separator, depth)

        refined = self._refine([q])
        if refined is not None:
            self._count("refinement")
            return self.union(refined, depth + 1)

        raise UnsafeQueryError(
            f"no PTIME decomposition for {q}", query=q
        )

    def _components(
        self, components: List[ConjunctiveQuery], depth: int
    ) -> float:
        groups = _dependence_groups(components)
        result = 1.0
        for group in groups:
            if len(group) == 1:
                self._count("independent-join")
                factor = self.cq(group[0], depth + 1)
            else:
                # Inclusion–exclusion: P(∧) = Σ_{∅≠S} (-1)^{|S|+1} P(∨_S).
                self._count("inclusion-exclusion")
                factor = 0.0
                for size in range(1, len(group) + 1):
                    sign = 1.0 if size % 2 == 1 else -1.0
                    for subset in itertools.combinations(group, size):
                        factor += sign * self.union(list(subset), depth + 1)
            result *= factor
            if result == 0.0 and self.db is not None:
                return 0.0
        return result

    # -- normalization ---------------------------------------------------

    def _normalize(
        self, disjuncts: Sequence[ConjunctiveQuery]
    ) -> Optional[List[ConjunctiveQuery]]:
        """Minimize, drop unsatisfiable and redundant disjuncts.

        Delegates to the shared UCQ transform
        :func:`~repro.core.union.minimize_ucq_in_dnf`.  Returns None
        when some disjunct is trivially true.
        """
        kept = minimize_ucq_in_dnf(
            disjuncts, minimize_each=self.minimize_queries
        )
        if any(not d.atoms for d in kept):
            return None
        return kept

    # -- separators -------------------------------------------------------

    def _find_separator(
        self, disjuncts: Sequence[ConjunctiveQuery]
    ) -> Optional[List[Variable]]:
        """A choice of root variable per disjunct making instances for
        distinct domain values tuple-disjoint."""
        per_disjunct: List[List[Variable]] = []
        for disjunct in disjuncts:
            all_goals = frozenset(range(len(disjunct.atoms)))
            roots = [
                v for v in disjunct.variables
                if disjunct.subgoal_map[v] == all_goals
            ]
            if not roots:
                return None
            per_disjunct.append(roots)
        for choice in itertools.product(*per_disjunct):
            if self._separator_ok(disjuncts, choice):
                return list(choice)
        return None

    def _separator_ok(
        self,
        disjuncts: Sequence[ConjunctiveQuery],
        choice: Sequence[Variable],
    ) -> bool:
        """No two instances (for different values) may share a tuple."""
        for i, d1 in enumerate(disjuncts):
            for j, d2 in enumerate(disjuncts):
                if j < i:
                    continue
                renamed, renaming = d2.rename_apart(d1.variables, suffix="_s")
                sep1 = choice[i]
                sep2_term = renaming.apply(choice[j])
                if not isinstance(sep2_term, Variable):  # pragma: no cover
                    return False
                distinct = Comparison("!=", sep1, sep2_term)
                for atom1 in d1.atoms:
                    for atom2 in renamed.atoms:
                        if atom1.relation != atom2.relation:
                            continue
                        if may_share_tuple(
                            atom1, d1.predicates,
                            atom2, renamed.predicates,
                            extra=(distinct,),
                        ):
                            return False
        return True

    def _apply_separator(
        self,
        disjuncts: Sequence[ConjunctiveQuery],
        separator: Sequence[Variable],
        depth: int,
    ) -> float:
        if self.db is None:
            # Decision mode: one fresh symbolic constant represents the
            # generic domain element.
            self._fresh_counter += 1
            fresh = Constant(f"@sep{self._fresh_counter}")
            instance = [
                d.substitute(x, fresh) for d, x in zip(disjuncts, separator)
            ]
            self.union(instance, depth + 1)
            return 0.5
        domain: Set = set()
        for disjunct, x in zip(disjuncts, separator):
            domain |= self._candidates(disjunct, x)
        result = 1.0
        for value in sorted(domain, key=lambda v: (type(v).__name__, str(v))):
            constant = Constant(value)
            instance = [
                d.substitute(x, constant) for d, x in zip(disjuncts, separator)
            ]
            result *= 1.0 - self.union(instance, depth + 1)
            if result == 0.0:
                break
        return 1.0 - result

    def _candidates(self, disjunct: ConjunctiveQuery, x: Variable) -> Set:
        """Domain values for which the instance can possibly be true."""
        assert self.db is not None
        candidates: Optional[Set] = None
        for atom in disjunct.atoms:
            if atom.negated or x not in atom.variables:
                continue
            relation = self.db.relation(atom.relation)
            for position in atom.positions_of(x):
                values = relation.values_at(position)
                candidates = values if candidates is None else candidates & values
                if not candidates:
                    return set()
        return candidates or set()

    # -- refinement (lazy canonical coverage) ------------------------------

    def _refine(
        self, disjuncts: Sequence[ConjunctiveQuery]
    ) -> Optional[List[ConjunctiveQuery]]:
        """Split one disjunct on an undetermined co-occurring pair.

        Only pairs inside atoms of *shared* relation symbols can unblock
        a separator, so only those are tried.
        """
        symbol_count: Dict[str, int] = {}
        for disjunct in disjuncts:
            for atom in disjunct.atoms:
                symbol_count[atom.relation] = symbol_count.get(atom.relation, 0) + 1
        for index, disjunct in enumerate(disjuncts):
            pair = _undetermined_pair(disjunct, symbol_count)
            if pair is None:
                continue
            u, v = pair
            branches = _trichotomy_branches(disjunct, u, v)
            refined = list(disjuncts)
            refined[index: index + 1] = branches
            return refined
        return None

    # -- ground probabilities ----------------------------------------------

    def _ground(self, q: ConjunctiveQuery) -> float:
        for pred in q.predicates:
            # All terms are constants here.
            if not _constant_predicate_holds(pred):
                return 0.0
        if self.db is None:
            return 0.5
        positive = {(a.relation, _ground_row(a)) for a in q.positive_atoms}
        negative = {(a.relation, _ground_row(a)) for a in q.negative_atoms}
        if positive & negative:
            return 0.0
        result = 1.0
        for name, row in positive:
            result *= float(self.db.probability(name, row))
        for name, row in negative:
            result *= 1.0 - float(self.db.probability(name, row))
        return result


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _conjoin_apart(queries: Sequence[ConjunctiveQuery]) -> ConjunctiveQuery:
    """Conjunction of queries after renaming them variable-disjoint."""
    result = queries[0]
    taken = list(result.variables)
    for query in queries[1:]:
        renamed, _ = query.rename_apart(taken, suffix="_j")
        taken.extend(renamed.variables)
        result = result.conjoin(renamed)
    return result


def _canonical_string(query: ConjunctiveQuery) -> str:
    """A renaming-invariant (best effort) string for cycle detection.

    Variables are renamed ``v0, v1, ...`` in order of appearance in the
    canonical atom order, iterated to a fixpoint.  Imperfect
    canonicalization only delays cycle detection (the recursion bound
    is the backstop); it never conflates distinct unions because the
    string is a faithful rendering of the query.
    """
    current = query
    previous = None
    for _ in range(5):
        mapping: Dict[Variable, Term] = {}
        for variable in current.variables:
            mapping[variable] = Variable(f"v{len(mapping)}")
        renamed = current.apply(Substitution(mapping))
        text = str(renamed)
        if text == previous:
            break
        previous = text
        current = renamed
    return previous or str(current)


def _canonical_key(queries: Sequence[ConjunctiveQuery]) -> frozenset:
    return frozenset(_canonical_string(q) for q in queries)


def _dependence_groups(
    queries: Sequence[ConjunctiveQuery],
) -> List[List[ConjunctiveQuery]]:
    """Partition queries into groups; distinct groups are independent."""
    n = len(queries)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(n):
        for j in range(i + 1, n):
            if find(i) != find(j) and not queries_independent(queries[i], queries[j]):
                parent[find(i)] = find(j)
    groups: Dict[int, List[ConjunctiveQuery]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(queries[i])
    return list(groups.values())


def _undetermined_pair(
    disjunct: ConjunctiveQuery, symbol_count: Dict[str, int]
) -> Optional[Tuple[Term, Term]]:
    constraints = disjunct.order_constraints
    for atom in disjunct.atoms:
        if symbol_count.get(atom.relation, 0) < 2:
            continue
        terms = list(dict.fromkeys(atom.terms))
        for a, b in itertools.combinations(terms, 2):
            if isinstance(a, Constant) and isinstance(b, Constant):
                continue
            determined = any(
                constraints.entails(pred)
                for pred in (
                    Comparison("<", a, b),
                    Comparison("=", a, b),
                    Comparison("<", b, a),
                )
            )
            if not determined:
                return (a, b)
    return None


def _trichotomy_branches(
    disjunct: ConjunctiveQuery, u: Term, v: Term
) -> List[ConjunctiveQuery]:
    """``q ≡ q,u<v ∨ q[u:=v] ∨ q,v<u`` — one canonical-coverage split."""
    less = ConjunctiveQuery(
        disjunct.atoms, disjunct.predicates + (Comparison("<", u, v),)
    )
    greater = ConjunctiveQuery(
        disjunct.atoms, disjunct.predicates + (Comparison("<", v, u),)
    )
    if isinstance(u, Variable):
        equal = disjunct.substitute(u, v)
    elif isinstance(v, Variable):
        equal = disjunct.substitute(v, u)
    else:  # two constants: never reached (filtered by caller)
        equal = disjunct
    return [less, equal, greater]


def _constant_predicate_holds(pred: Comparison) -> bool:
    left = pred.left
    right = pred.right
    if not (isinstance(left, Constant) and isinstance(right, Constant)):
        return True
    try:
        return pred.evaluate(left.value, right.value)
    except TypeError:
        return pred.evaluate(
            (type(left.value).__name__, str(left.value)),
            (type(right.value).__name__, str(right.value)),
        )


def _ground_row(atom: Atom) -> Tuple:
    return tuple(term.value for term in atom.terms)
