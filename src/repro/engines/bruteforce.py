"""Possible-world enumeration engine — Equation (2) verbatim.

Exponential in the number of uncertain tuples; exists as the semantic
reference implementation for tests and tiny examples.
"""

from __future__ import annotations

from ..core.query import ConjunctiveQuery
from ..db.database import ProbabilisticDatabase
from ..db.worlds import iterate_worlds, world_database
from ..lineage.grounding import query_holds
from .base import Engine


class BruteForceEngine(Engine):
    """Sums world probabilities over all worlds satisfying the query."""

    name = "brute-force"

    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        if not query.is_satisfiable():
            return 0.0
        total = 0.0
        for world, weight in iterate_worlds(db):
            if query_holds(query, world_database(db, world)):
                total += weight
        return total
