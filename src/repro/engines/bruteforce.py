"""Possible-world enumeration engine — Equation (2) verbatim.

Exponential in the number of uncertain tuples; exists as the semantic
reference implementation for tests and tiny examples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.union import AnyQuery
from ..db.database import GroundTuple, ProbabilisticDatabase
from ..db.worlds import iterate_worlds, world_database
from ..lineage.grounding import answers_holding, query_holds
from .base import Answer, Engine, rank_answers


class BruteForceEngine(Engine):
    """Sums world probabilities over all worlds satisfying the query."""

    name = "brute-force"

    def probability(
        self, query: AnyQuery, db: ProbabilisticDatabase
    ) -> float:
        if not query.is_satisfiable():
            return 0.0
        total = 0.0
        for world, weight in iterate_worlds(db):
            if query_holds(query, world_database(db, world)):
                total += weight
        return total

    def answers(
        self,
        query: AnyQuery,
        db: ProbabilisticDatabase,
        k: Optional[int] = None,
    ) -> List[Answer]:
        """Equation (2) per answer tuple, in a single world sweep."""
        if query.head is None:
            return super().answers(query, db, k)
        if not query.is_satisfiable():
            return []
        totals: Dict[GroundTuple, float] = {}
        for world, weight in iterate_worlds(db):
            for answer in answers_holding(query, world_database(db, world)):
                totals[answer] = totals.get(answer, 0.0) + weight
        return rank_answers(list(totals.items()), k)
