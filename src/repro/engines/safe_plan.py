"""The safe-plan recurrence of Theorem 1.3 / Equation (3).

For hierarchical queries *without self-joins* (every relation symbol
occurs in at most one sub-goal), the paper's recurrence computes the
exact probability in PTIME::

    p(q) = p(f0) * prod_i ( 1 - prod_{a in A} (1 - p(f_i[a/x_i])) )

where ``f0`` is the conjunction of ground sub-goals, ``f_1..f_m`` the
variable-containing connected components and ``x_i`` a maximal variable
of ``f_i`` (which, for a connected hierarchical query, occurs in every
sub-goal of the component).  Correctness rests on ``f_i[a/x_i]`` being
independent of ``f_j[a'/x_j]`` whenever ``i != j`` or ``a != a'`` —
which is exactly what the no-self-join restriction buys.

Negated sub-goals are supported per Theorem 3.11: a ground negated
sub-goal contributes ``1 - p(t)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..core.atoms import Atom
from ..core.hierarchy import is_hierarchical, maximal_variables
from ..core.predicates import Comparison
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..db.database import ProbabilisticDatabase
from .base import Engine, UnsupportedQueryError


class SafePlanEngine(Engine):
    """Equation (3), applied recursively along the query structure."""

    name = "safe-plan"

    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        check_supported(query)
        if not query.is_satisfiable():
            return 0.0
        return _evaluate(query, db)


def check_supported(query: ConjunctiveQuery) -> None:
    """Raise unless the query is hierarchical and self-join free.

    The hierarchy test runs on the positive part (Definition 3.9).
    """
    if query.has_self_join():
        raise UnsupportedQueryError(
            f"safe-plan engine requires a self-join-free query: {query}"
        )
    positive = query.positive_part()
    if not is_hierarchical(positive):
        raise UnsupportedQueryError(
            f"query is not hierarchical, hence #P-hard (Theorem 1.4): {query}"
        )


def _evaluate(query: ConjunctiveQuery, db: ProbabilisticDatabase) -> float:
    if not query.atoms:
        return 1.0 if _ground_predicates_hold(query.predicates) else 0.0
    result = 1.0
    for component in query.connected_components():
        if not component.variables:
            result *= _ground_probability(component, db)
        else:
            result *= _component_probability(component, db)
        if result == 0.0:
            return 0.0
    return result


def _ground_probability(
    component: ConjunctiveQuery, db: ProbabilisticDatabase
) -> float:
    """Probability of a conjunction of ground sub-goals.

    Distinct ground tuples are independent; the canonical form already
    deduplicated repeated atoms; a tuple asserted both positively and
    negatively makes the conjunction false.
    """
    if not _ground_predicates_hold(component.predicates):
        return 0.0
    positive = {( a.relation, _row(a)) for a in component.positive_atoms}
    negative = {( a.relation, _row(a)) for a in component.negative_atoms}
    if positive & negative:
        return 0.0
    result = 1.0
    for name, row in positive:
        result *= float(db.probability(name, row))
    for name, row in negative:
        result *= 1.0 - float(db.probability(name, row))
    return result


def _component_probability(
    component: ConjunctiveQuery, db: ProbabilisticDatabase
) -> float:
    """``1 - prod_a (1 - p(f[a/x]))`` for a maximal variable ``x``."""
    root = _pick_root(component)
    inner = 1.0
    for value in _candidates(component, root, db):
        constant = Constant(value)
        branch = component.substitute(root, constant)
        branch_prob = _evaluate(branch.drop_trivial_predicates(), db)
        inner *= 1.0 - branch_prob
        if inner == 0.0:
            break
    return 1.0 - inner


def _pick_root(component: ConjunctiveQuery) -> Variable:
    positive_view = component.positive_part()
    roots = maximal_variables(positive_view)
    for root in roots:
        if positive_view.subgoal_map[root] == frozenset(
            range(len(positive_view.atoms))
        ):
            return root
    # For a connected hierarchical query a maximal variable occurs in
    # every sub-goal; reaching here means the precondition was violated.
    raise UnsupportedQueryError(
        f"no root variable found for component {component}"
    )


def _candidates(
    component: ConjunctiveQuery, root: Variable, db: ProbabilisticDatabase
):
    """Domain values that can make every sub-goal true.

    Values outside the intersection give branch probability 0 and
    contribute a factor of 1, so skipping them is sound.  Negated
    sub-goals do *not* restrict the candidate set (their tuples need
    not exist) — but if the root occurs only in negated sub-goals the
    query was not range-restricted to begin with.
    """
    candidate_set: Optional[Set] = None
    for atom in component.atoms:
        if atom.negated or root not in atom.variables:
            continue
        relation = db.relation(atom.relation)
        for position in atom.positions_of(root):
            values = relation.values_at(position)
            candidate_set = values if candidate_set is None else candidate_set & values
            if not candidate_set:
                return []
    return sorted(candidate_set or [], key=lambda v: (type(v).__name__, str(v)))


def _ground_predicates_hold(predicates: Sequence[Comparison]) -> bool:
    for pred in predicates:
        if isinstance(pred.left, Constant) and isinstance(pred.right, Constant):
            try:
                if not pred.evaluate(pred.left.value, pred.right.value):
                    return False
            except TypeError:
                if not pred.evaluate(str(pred.left.value), str(pred.right.value)):
                    return False
    return True


def _row(atom: Atom):
    return tuple(t.value for t in atom.terms if isinstance(t, Constant))
