"""The safe-plan recurrence of Theorem 1.3 / Equation (3).

For hierarchical queries *without self-joins* (every relation symbol
occurs in at most one sub-goal), the paper's recurrence computes the
exact probability in PTIME::

    p(q) = p(f0) * prod_i ( 1 - prod_{a in A} (1 - p(f_i[a/x_i])) )

where ``f0`` is the conjunction of ground sub-goals, ``f_1..f_m`` the
variable-containing connected components and ``x_i`` a maximal variable
of ``f_i`` (which, for a connected hierarchical query, occurs in every
sub-goal of the component).  Correctness rests on ``f_i[a/x_i]`` being
independent of ``f_j[a'/x_j]`` whenever ``i != j`` or ``a != a'`` —
which is exactly what the no-self-join restriction buys.

Negated sub-goals are supported per Theorem 3.11: a ground negated
sub-goal contributes ``1 - p(t)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.hierarchy import (
    find_non_hierarchical_witness,
    is_hierarchical,
    maximal_variables,
)
from ..core.predicates import Comparison
from ..core.query import ConjunctiveQuery
from ..core.substitution import Substitution
from ..core.terms import Constant, Variable
from ..core.union import AnyQuery, UnionQuery
from ..db.database import GroundTuple, ProbabilisticDatabase
from .base import Answer, Engine, UnsupportedQueryError, rank_answers

#: A partial head valuation, sorted by variable name.
Valuation = Tuple[Tuple[Variable, object], ...]


class SafePlanEngine(Engine):
    """Equation (3), applied recursively along the query structure."""

    name = "safe-plan"

    def supports(self, query: AnyQuery) -> Optional[str]:
        """Admission is purely syntactic: one CQ, hierarchical,
        self-join free.  The reason names the precise cause.

        For an answer-tuple query pass the *generic residual* (head
        variables frozen to placeholder constants) — the same query
        :meth:`answers` checks internally.
        """
        return unsupported_reason(query)

    def prepare(self, query: AnyQuery) -> None:
        """Raise with the precise cause when :meth:`supports` says no."""
        check_supported(query)

    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        check_supported(query)
        if not query.is_satisfiable():
            return 0.0
        return _evaluate(query, db)

    def answers(
        self,
        query: ConjunctiveQuery,
        db: ProbabilisticDatabase,
        k: Optional[int] = None,
    ) -> List[Answer]:
        """The head pushed through Equation (3) as a group-by.

        One recursive pass computes a map *head valuation → probability*
        instead of a scalar: a component rooted at a head variable
        groups its branches by root value (no independent-OR collapse),
        everything below behaves exactly like the Boolean plan.  The
        plan's precondition is checked on the *residual* query (head
        variables read as constants), so e.g. ``Q(x) :- R(x), S(x,y),
        T(y)`` — non-hierarchical as a Boolean query — still has a safe
        group-by plan.
        """
        if query.head is None:
            return super().answers(query, db, k)
        check_supported(generic_residual(query))
        if not query.is_satisfiable():
            return []
        head_vars = set(query.head_variables)
        valuations = _answers_evaluate(query.boolean(), head_vars, db)
        results: List[Answer] = []
        for valuation, probability in valuations.items():
            bound = dict(valuation)
            answer = tuple(
                term.value if isinstance(term, Constant) else bound[term]
                for term in query.head
            )
            results.append((answer, probability))
        return rank_answers(results, k)


def unsupported_reason(query: AnyQuery) -> Optional[str]:
    """The precise reason Equation (3) does not apply, or ``None``.

    The hierarchy test runs on the positive part (Definition 3.9).
    Causes, most specific first: a union of CQs (safe plans cover a
    single rule), a self-join (named relation symbol), a
    non-hierarchical variable pair (named witness).
    """
    if isinstance(query, UnionQuery):
        return (
            f"union of {len(query.disjuncts)} conjunctive queries "
            f"(the safe plan covers a single self-join-free CQ; unions "
            f"go to the lifted tier)"
        )
    repeated = _repeated_relation(query)
    if repeated is not None:
        relation, count = repeated
        return (
            f"self-join: relation {relation} occurs in {count} sub-goals "
            f"(Equation (3) requires a self-join-free query)"
        )
    positive = query.positive_part()
    if not is_hierarchical(positive):
        witness = find_non_hierarchical_witness(positive)
        detail = (
            f"sg({witness.x}) and sg({witness.y}) cross"
            if witness is not None
            else "no hierarchy between variable sub-goal sets"
        )
        return f"non-hierarchical: {detail}, hence #P-hard (Theorem 1.4)"
    return None


def _repeated_relation(query: ConjunctiveQuery) -> Optional[Tuple[str, int]]:
    counts: Dict[str, int] = {}
    for atom in query.atoms:
        counts[atom.relation] = counts.get(atom.relation, 0) + 1
    for relation in sorted(counts):
        if counts[relation] > 1:
            return relation, counts[relation]
    return None


def check_supported(query: AnyQuery) -> None:
    """Raise (naming the precise cause) unless the query is a single
    hierarchical, self-join-free conjunctive query."""
    reason = unsupported_reason(query)
    if reason is not None:
        raise UnsupportedQueryError(f"{reason}: {query}")


def generic_residual(query: AnyQuery) -> AnyQuery:
    """The Boolean residual with head variables frozen to placeholder
    constants — the query every answer's residual is an instance of.

    Safety of an answer query is safety of this residual: head
    variables are never projected away, so they act as constants in
    the extensional plan.  For a union, each disjunct's head variables
    are frozen *positionally* (``@answer0, @answer1, ...`` by head
    position), so all disjuncts agree on the constants an answer tuple
    would bind.
    """
    if isinstance(query, UnionQuery):
        if query.is_boolean:
            return query
        return UnionQuery(
            _generic_cq_residual(d) for d in query.disjuncts
        )
    return _generic_cq_residual(query)


def _generic_cq_residual(query: ConjunctiveQuery) -> ConjunctiveQuery:
    if query.head is None:
        return query
    mapping: Dict[Variable, Constant] = {}
    for position, term in enumerate(query.head):
        if isinstance(term, Variable) and term not in mapping:
            mapping[term] = Constant(f"@answer{position}")
    bound = query.apply(Substitution(mapping))
    return ConjunctiveQuery(bound.atoms, bound.predicates)


def _answers_evaluate(
    query: ConjunctiveQuery, head_vars: Set[Variable], db: ProbabilisticDatabase
) -> Dict[Valuation, float]:
    """Equation (3) with group-by: map head valuation → probability.

    Components without head variables contribute scalar factors;
    components with head variables contribute per-valuation maps that
    are joined (cartesian product, probabilities multiplied) across
    components.
    """
    if not query.atoms:
        probability = 1.0 if _ground_predicates_hold(query.predicates) else 0.0
        return {(): probability} if probability else {}
    total: Dict[Valuation, float] = {(): 1.0}
    for component in query.connected_components():
        component_heads = head_vars & set(component.variables)
        if not component_heads:
            if not component.variables:
                factor = _ground_probability(component, db)
            else:
                factor = _component_probability(component, db)
            if factor == 0.0:
                return {}
            component_map: Dict[Valuation, float] = {(): factor}
        else:
            component_map = _component_answers(component, component_heads, db)
            if not component_map:
                return {}
        total = _join_valuations(total, component_map)
    return total


def _component_answers(
    component: ConjunctiveQuery,
    component_heads: Set[Variable],
    db: ProbabilisticDatabase,
) -> Dict[Valuation, float]:
    """Group-by over one connected component.

    With a head variable present we group branches by its value — a
    plain GROUP BY, no aggregation across values, because distinct
    values are distinct answers.  Once all head variables of the
    component are bound the Boolean independent-project (``1 - Π (1 -
    p)``) takes over via :func:`_answers_evaluate`'s scalar path.
    """
    group_var = min(component_heads, key=lambda v: v.name)
    out: Dict[Valuation, float] = {}
    for value in _candidates(component, group_var, db):
        branch = component.substitute(group_var, Constant(value))
        sub = _answers_evaluate(
            branch.drop_trivial_predicates(), component_heads - {group_var}, db
        )
        for valuation, probability in sub.items():
            if probability == 0.0:
                continue
            merged = tuple(sorted(
                valuation + ((group_var, value),), key=lambda p: p[0].name
            ))
            out[merged] = probability
    return out


def _join_valuations(
    left: Dict[Valuation, float], right: Dict[Valuation, float]
) -> Dict[Valuation, float]:
    """Cartesian join of disjoint-variable valuation maps."""
    joined: Dict[Valuation, float] = {}
    for valuation_l, prob_l in left.items():
        for valuation_r, prob_r in right.items():
            merged = tuple(sorted(
                valuation_l + valuation_r, key=lambda p: p[0].name
            ))
            joined[merged] = prob_l * prob_r
    return joined


def _evaluate(query: ConjunctiveQuery, db: ProbabilisticDatabase) -> float:
    if not query.atoms:
        return 1.0 if _ground_predicates_hold(query.predicates) else 0.0
    result = 1.0
    for component in query.connected_components():
        if not component.variables:
            result *= _ground_probability(component, db)
        else:
            result *= _component_probability(component, db)
        if result == 0.0:
            return 0.0
    return result


def _ground_probability(
    component: ConjunctiveQuery, db: ProbabilisticDatabase
) -> float:
    """Probability of a conjunction of ground sub-goals.

    Distinct ground tuples are independent; the canonical form already
    deduplicated repeated atoms; a tuple asserted both positively and
    negatively makes the conjunction false.
    """
    if not _ground_predicates_hold(component.predicates):
        return 0.0
    positive = {( a.relation, _row(a)) for a in component.positive_atoms}
    negative = {( a.relation, _row(a)) for a in component.negative_atoms}
    if positive & negative:
        return 0.0
    result = 1.0
    for name, row in positive:
        result *= float(db.probability(name, row))
    for name, row in negative:
        result *= 1.0 - float(db.probability(name, row))
    return result


def _component_probability(
    component: ConjunctiveQuery, db: ProbabilisticDatabase
) -> float:
    """``1 - prod_a (1 - p(f[a/x]))`` for a maximal variable ``x``."""
    root = _pick_root(component)
    inner = 1.0
    for value in _candidates(component, root, db):
        constant = Constant(value)
        branch = component.substitute(root, constant)
        branch_prob = _evaluate(branch.drop_trivial_predicates(), db)
        inner *= 1.0 - branch_prob
        if inner == 0.0:
            break
    return 1.0 - inner


def _pick_root(component: ConjunctiveQuery) -> Variable:
    positive_view = component.positive_part()
    roots = maximal_variables(positive_view)
    for root in roots:
        if positive_view.subgoal_map[root] == frozenset(
            range(len(positive_view.atoms))
        ):
            return root
    # For a connected hierarchical query a maximal variable occurs in
    # every sub-goal; reaching here means the precondition was violated.
    raise UnsupportedQueryError(
        f"no root variable found for component {component}"
    )


def _candidates(
    component: ConjunctiveQuery, root: Variable, db: ProbabilisticDatabase
):
    """Domain values that can make every sub-goal true.

    Values outside the intersection give branch probability 0 and
    contribute a factor of 1, so skipping them is sound.  Negated
    sub-goals do *not* restrict the candidate set (their tuples need
    not exist) — but if the root occurs only in negated sub-goals the
    query was not range-restricted to begin with.
    """
    candidate_set: Optional[Set] = None
    for atom in component.atoms:
        if atom.negated or root not in atom.variables:
            continue
        relation = db.relation(atom.relation)
        for position in atom.positions_of(root):
            values = relation.values_at(position)
            candidate_set = values if candidate_set is None else candidate_set & values
            if not candidate_set:
                return []
    return sorted(candidate_set or [], key=lambda v: (type(v).__name__, str(v)))


def _ground_predicates_hold(predicates: Sequence[Comparison]) -> bool:
    for pred in predicates:
        if isinstance(pred.left, Constant) and isinstance(pred.right, Constant):
            try:
                if not pred.evaluate(pred.left.value, pred.right.value):
                    return False
            except TypeError:
                if not pred.evaluate(str(pred.left.value), str(pred.right.value)):
                    return False
    return True


def _row(atom: Atom):
    return tuple(t.value for t in atom.terms if isinstance(t, Constant))
