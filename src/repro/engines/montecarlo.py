"""Monte Carlo estimators — MystiQ's fallback for unsafe queries.

Two estimators over the grounded DNF lineage:

* **naive sampling**: draw worlds of the events mentioned by the
  lineage, count satisfied DNFs.  Simple but inaccurate when the
  query probability is tiny.
* **Karp–Luby**: the classical FPRAS for DNF counting, adapted to
  weighted (probabilistic) literals; relative error is controlled
  regardless of how small the answer is.

The paper's introduction motivates the dichotomy with exactly this
trade-off: safe plans answer in seconds, simulation in minutes — one
to two orders of magnitude apart for comparable accuracy.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.query import ConjunctiveQuery
from ..db.database import ProbabilisticDatabase, TupleKey
from ..lineage.boolean import Clause, Lineage
from ..lineage.grounding import ground_lineage
from .base import Engine


class MonteCarloEngine(Engine):
    """Estimate ``p(q)`` by sampling the grounded lineage."""

    name = "monte-carlo"

    def __init__(
        self,
        samples: int = 20_000,
        method: str = "karp-luby",
        seed: Optional[int] = None,
    ) -> None:
        if method not in ("karp-luby", "naive"):
            raise ValueError(f"unknown Monte Carlo method {method!r}")
        self.samples = samples
        self.method = method
        self.seed = seed

    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        lineage = ground_lineage(query, db)
        if lineage.certainly_true:
            return 1.0
        if lineage.is_false:
            return 0.0
        rng = random.Random(self.seed)
        if self.method == "naive":
            return naive_estimate(lineage, self.samples, rng)
        estimate = karp_luby_estimate(lineage, self.samples, rng)
        # The unbiased estimator can land slightly outside [0, 1].
        return min(max(estimate, 0.0), 1.0)


def naive_estimate(
    lineage: Lineage, samples: int, rng: random.Random
) -> float:
    """Fraction of sampled worlds satisfying the DNF."""
    events = sorted(lineage.events(), key=str)
    weights = [lineage.weights[event] for event in events]
    index = {event: i for i, event in enumerate(events)}
    clauses = [
        [(index[key], polarity) for key, polarity in clause]
        for clause in lineage.clauses
    ]
    hits = 0
    for _ in range(samples):
        world = [rng.random() < w for w in weights]
        if any(
            all(world[i] == polarity for i, polarity in clause)
            for clause in clauses
        ):
            hits += 1
    return hits / samples


def karp_luby_estimate(
    lineage: Lineage, samples: int, rng: random.Random
) -> float:
    """The Karp–Luby unbiased estimator for weighted DNF probability.

    Let ``m_i = P(clause_i)`` and ``M = Σ m_i``.  Sample a clause with
    probability ``m_i / M``, then a world conditioned on that clause
    being satisfied; the indicator "the sampled clause is the
    first satisfied clause of the world" has expectation ``p / M``.
    """
    clauses: List[Clause] = sorted(lineage.clauses, key=_clause_order)
    weights = lineage.weights
    clause_probs = [_clause_probability(clause, weights) for clause in clauses]
    total = sum(clause_probs)
    if total == 0.0:
        return 0.0
    cumulative: List[float] = []
    acc = 0.0
    for prob in clause_probs:
        acc += prob
        cumulative.append(acc)

    hits = 0
    for _ in range(samples):
        pick = rng.random() * total
        chosen = _bisect(cumulative, pick)
        world: Dict[TupleKey, bool] = {
            key: polarity for key, polarity in clauses[chosen]
        }
        first_satisfied = True
        for earlier in range(chosen):
            if _clause_satisfied(clauses[earlier], world, weights, rng):
                first_satisfied = False
                break
        if first_satisfied:
            hits += 1
    return total * hits / samples


def estimate_with_error(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    samples: int,
    seed: Optional[int] = None,
) -> Tuple[float, float]:
    """Karp–Luby estimate plus a 95% half-width from the binomial CLT."""
    lineage = ground_lineage(query, db)
    if lineage.certainly_true:
        return 1.0, 0.0
    if lineage.is_false:
        return 0.0, 0.0
    rng = random.Random(seed)
    clauses = sorted(lineage.clauses, key=_clause_order)
    total = sum(_clause_probability(c, lineage.weights) for c in clauses)
    estimate = karp_luby_estimate(lineage, samples, rng)
    ratio = min(max(estimate / total, 0.0), 1.0) if total else 0.0
    half_width = 1.96 * total * math.sqrt(ratio * (1 - ratio) / samples)
    return estimate, half_width


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _clause_probability(clause: Clause, weights: Dict[TupleKey, float]) -> float:
    result = 1.0
    for key, polarity in clause:
        weight = weights[key]
        result *= weight if polarity else (1.0 - weight)
    return result


def _clause_satisfied(
    clause: Clause,
    world: Dict[TupleKey, bool],
    weights: Dict[TupleKey, float],
    rng: random.Random,
) -> bool:
    """Check satisfaction, lazily sampling still-unset events."""
    for key, polarity in clause:
        value = world.get(key)
        if value is None:
            value = rng.random() < weights[key]
            world[key] = value
        if value != polarity:
            return False
    return True


def _clause_order(clause: Clause):
    return tuple(sorted((str(key), polarity) for key, polarity in clause))


def _bisect(cumulative: Sequence[float], target: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo
