"""Monte Carlo estimators — MystiQ's fallback for unsafe queries.

Two estimators over the grounded DNF lineage:

* **naive sampling**: draw worlds of the events mentioned by the
  lineage, count satisfied DNFs.  Simple but inaccurate when the
  query probability is tiny.
* **Karp–Luby**: the classical FPRAS for DNF counting, adapted to
  weighted (probabilistic) literals; relative error is controlled
  regardless of how small the answer is.

The paper's introduction motivates the dichotomy with exactly this
trade-off: safe plans answer in seconds, simulation in minutes — one
to two orders of magnitude apart for comparable accuracy.

The estimators come in three backends:

* ``"numpy"`` — the vectorized core: worlds are columns of an
  ``(n_events, batch)`` bit matrix over the
  :class:`~repro.lineage.packed.PackedLineage` structure, and every
  clause of every sample is evaluated in one padded gather + fold
  (see ``benchmarks/bench_sampling.py`` for the measured speedup).
  The hot loop reuses a preallocated
  :class:`~repro.lineage.packed.SampleArena`, so repeated
  ``extend()`` calls allocate nothing per batch;
* ``"numba"`` — the numpy draw pipeline feeding a jitted scalar
  coverage kernel (:mod:`repro.engines._native`) that breaks at the
  first satisfied clause instead of evaluating the whole clause
  matrix; available only when numba is installed, and draw-for-draw
  identical to the numpy backend at a fixed seed;
* ``"python"`` — the original scalar loops, kept as the correctness
  oracle and as the fallback when numpy is unavailable.

``backend="auto"`` (the default everywhere) picks the fastest
available: numba, then numpy, then python.

For answer-tuple queries, :meth:`MonteCarloEngine.answers` runs a
*multisimulation*: one incremental Karp–Luby sampler per answer, with
sampling focused on the answers whose confidence intervals still
overlap the top-k boundary.  Answers whose interval is dominated stop
consuming samples, so ranking the top k converges far faster than k
independent full-precision runs.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

try:  # pragma: no cover - exercised by whichever env runs the suite
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..core.union import AnyQuery
from ..db.database import GroundTuple, ProbabilisticDatabase, TupleKey
from ..lineage.boolean import Clause, Lineage
from ..lineage.grounding import ground_answer_lineages, ground_lineage
from ..lineage.packed import PackedLineage, SampleArena, clause_sort_key
from ..lineage.planner import GroundingPlanner
from ..obs.metrics import NULL_REGISTRY, MetricsRegistry
from ._native import HAVE_NUMBA, kl_coverage_hits
from .base import Answer, Engine, clamp01, rank_answers

BACKENDS = ("auto", "numba", "numpy", "python")

#: Backends driven by the packed numpy draw pipeline (as opposed to
#: the scalar python loops).
VECTOR_BACKENDS = ("numba", "numpy")

#: Cap on elements per numpy intermediate (~bytes, matrices are bool):
#: keeps the world/satisfaction matrices cache-friendly and bounds
#: memory for huge sample requests.
_BATCH_ELEMENTS = 1 << 22


def resolve_backend(backend: str) -> str:
    """Normalize a backend name, validating availability."""
    if backend == "auto":
        if np is None:
            return "python"
        return "numba" if HAVE_NUMBA else "numpy"
    if backend not in ("numba", "numpy", "python"):
        raise ValueError(
            f"unknown sampling backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend in VECTOR_BACKENDS and np is None:
        raise RuntimeError(
            f"{backend} backend requested but numpy is unavailable"
        )
    if backend == "numba" and not HAVE_NUMBA:
        raise RuntimeError("numba backend requested but numba is unavailable")
    return backend


def _batches(samples: int, per_sample_cost: int) -> Iterator[int]:
    cap = max(1, _BATCH_ELEMENTS // max(1, per_sample_cost))
    while samples > 0:
        batch = min(samples, cap)
        yield batch
        samples -= batch


class MonteCarloEngine(Engine):
    """Estimate ``p(q)`` by sampling the grounded lineage."""

    name = "monte-carlo"

    def __init__(
        self,
        samples: int = 20_000,
        method: str = "karp-luby",
        seed: Optional[int] = None,
        backend: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
        planner: Optional[GroundingPlanner] = None,
    ) -> None:
        if method not in ("karp-luby", "naive"):
            raise ValueError(f"unknown Monte Carlo method {method!r}")
        self.samples = samples
        self.method = method
        self.seed = seed
        self.backend = resolve_backend(backend)
        self.planner = planner
        #: After ``answers``: per-answer (estimate, 95% half-width).
        self.last_intervals: Dict[GroundTuple, Tuple[float, float]] = {}
        #: After ``answers``: total samples drawn across all answers.
        self.last_samples_drawn: int = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        #: Kept so :meth:`reconfigured` clones carry the same registry.
        self._registry = registry
        self._metric_samples = registry.counter(
            "repro_mc_samples_total",
            "Monte Carlo samples drawn, by estimator method",
            ("method",),
        )
        self._metric_batch = registry.histogram(
            "repro_mc_batch_size",
            "Sample batch sizes handed to the sampling backend",
            buckets=(16, 64, 256, 1024, 4096, 16384, 65536),
        )
        self._metric_half_width = registry.gauge(
            "repro_mc_half_width",
            "95% confidence half-width of the most recent estimate "
            "(worst per-answer width for multisimulation runs)",
        )
        self._metric_estimates = registry.counter(
            "repro_mc_estimates_total",
            "Lineage estimates completed (one per answer or query)",
        )

    def reconfigured(self, *, samples: Optional[int] = None) -> "MonteCarloEngine":
        """A clone of this engine with selected knobs overridden.

        Unlike rebuilding by hand with ``type(engine)(...)``, the clone
        keeps *every* constructor argument — method, seed, backend and
        the metrics registry — so per-call overrides (the serving
        layer's ``samples=`` escape hatch) do not silently reset
        anything else.
        """
        return type(self)(
            samples=self.samples if samples is None else samples,
            method=self.method,
            seed=self.seed,
            backend=self.backend,
            metrics=self._registry,
            planner=self.planner,
        )

    def probability(
        self, query: AnyQuery, db: ProbabilisticDatabase
    ) -> float:
        lineage = ground_lineage(query, db, planner=self.planner)
        if lineage.certainly_true:
            return 1.0
        if lineage.is_false:
            return 0.0
        rng = random.Random(self.seed)
        self._record_run(self.samples)
        if self.method == "naive":
            return naive_estimate(lineage, self.samples, rng, self.backend)
        estimate = karp_luby_estimate(lineage, self.samples, rng, self.backend)
        # The unbiased estimator can land slightly outside [0, 1].
        return clamp01(estimate)

    def _record_run(
        self, samples: int, half_width: Optional[float] = None
    ) -> None:
        """Fold one sampling run into the engine's metric families."""
        self._metric_samples.labels(self.method).inc(samples)
        self._metric_batch.observe(samples)
        self._metric_estimates.inc()
        if half_width is not None:
            self._metric_half_width.set(half_width)

    def estimate_with_interval(
        self, query: AnyQuery, db: ProbabilisticDatabase
    ) -> Tuple[float, float]:
        """Karp–Luby estimate and its 95% confidence half-width."""
        estimate, half_width = estimate_with_error(
            query, db, self.samples, self.seed, self.backend,
            planner=self.planner,
        )
        self._record_run(self.samples, half_width)
        return estimate, half_width

    def estimate_lineage(self, lineage: Lineage) -> Tuple[float, float]:
        """Estimate plus half-width for an already-grounded lineage.

        The serving layer's refresh path: after a probability-only
        database change the clause structure of a cached lineage is
        still valid, so sampling restarts from the (re-weighted)
        lineage without paying for grounding again.
        """
        estimate, half_width = estimate_lineage(
            lineage, self.samples, self.seed, self.backend
        )
        if not (lineage.certainly_true or lineage.is_false):
            self._record_run(self.samples, half_width)
        return estimate, half_width

    def estimate_packed(
        self, packed: PackedLineage, arena: Optional[SampleArena] = None
    ) -> Tuple[float, float]:
        """:meth:`estimate_lineage` for an already-packed lineage.

        The scatter worker's entry point: the pool front ships
        :meth:`~repro.lineage.packed.PackedLineage.to_buffers` arrays
        and the worker estimates straight from the reconstructed packed
        form, never materializing a scalar :class:`Lineage`.  Results
        are bit-identical to :meth:`estimate_lineage` on the source
        lineage at the same seed (vectorized backends only — the packed
        form has no scalar clause view).  ``arena`` optionally reuses
        one caller-held :class:`SampleArena` across a batch of calls.
        """
        estimate, half_width = estimate_packed(
            packed, self.samples, self.seed, self.backend, arena
        )
        if packed.n_clauses and packed.total > 0.0:
            self._record_run(self.samples, half_width)
        return estimate, half_width

    def estimate_lineages(
        self,
        lineages: Dict[GroundTuple, Lineage],
        parallel_map=None,
    ) -> Dict[GroundTuple, Tuple[float, float]]:
        """Batch :meth:`estimate_lineage`: ``{key: (estimate, half-width)}``.

        Each lineage is estimated independently with the engine's own
        seed, so results are deterministic per lineage and independent
        of batch composition or ordering.  ``parallel_map`` substitutes
        the mapping strategy: any :func:`map`-compatible callable
        (``mapper(fn, items) -> iterable``), e.g. a thread pool's
        ``Executor.map``; the default is a serial loop in this
        process.  The *process-level* counterpart is
        :meth:`repro.serve.pool.ServerPool.estimate_lineages`, which
        scatters a lineage batch across pool workers (each shard
        reusing its own vectorized numpy backend) rather than mapping
        in-process.
        """
        items = list(lineages.items())
        mapper = parallel_map if parallel_map is not None else map
        estimates = mapper(
            lambda item: self.estimate_lineage(item[1]), items
        )
        return {
            key: estimate
            for (key, _lineage), estimate in zip(items, estimates)
        }

    def answers(
        self,
        query: AnyQuery,
        db: ProbabilisticDatabase,
        k: Optional[int] = None,
    ) -> List[Answer]:
        """Multisimulation-style ranked answers.

        Grounds all per-answer lineages in one pass, then interleaves
        incremental Karp–Luby rounds: each round samples only the
        *critical* answers — those whose confidence interval still
        overlaps the boundary between the current top-k and the rest.
        Settled answers keep their estimate; each answer is capped at
        ``self.samples`` draws, so the worst case matches k independent
        runs while separated instances stop much earlier.

        Per-answer intervals and the total sample count are left in
        ``last_intervals`` / ``last_samples_drawn``.
        """
        if query.head is None:
            lineages = {(): ground_lineage(query, db, planner=self.planner)}
        else:
            lineages = ground_answer_lineages(
                query, db, planner=self.planner
            )
        return self.answers_from_lineages(lineages, k)

    def answers_from_lineages(
        self,
        lineages: Dict[GroundTuple, Lineage],
        k: Optional[int] = None,
    ) -> List[Answer]:
        """Multisimulation over already-grounded per-answer lineages."""
        rng = random.Random(self.seed)
        samplers: Dict[GroundTuple, KarpLubySampler] = {}
        intervals: Dict[GroundTuple, Tuple[float, float]] = {}
        for answer, lineage in lineages.items():
            if lineage.certainly_true:
                intervals[answer] = (1.0, 0.0)
            elif lineage.is_false:
                continue
            else:
                samplers[answer] = KarpLubySampler(
                    lineage, random.Random(rng.randrange(2**31)), self.backend
                )
                intervals[answer] = (0.0, 1.0)
        drawn = 0
        batch = max(64, self.samples // 16)
        while True:
            critical = self._critical_answers(intervals, samplers, k)
            runnable = [
                answer for answer in critical
                if samplers[answer].drawn < self.samples
            ]
            if not runnable:
                break
            for answer in runnable:
                sampler = samplers[answer]
                step = min(batch, self.samples - sampler.drawn)
                sampler.extend(step)
                drawn += step
                self._metric_batch.observe(step)
                estimate, half_width = sampler.interval()
                # Clamp reported estimates into [0, 1] — the unbiased
                # estimator can overshoot on tiny-probability answers.
                intervals[answer] = (clamp01(estimate), half_width)
        self.last_intervals = dict(intervals)
        self.last_samples_drawn = drawn
        self._metric_samples.labels(self.method).inc(drawn)
        self._metric_estimates.inc(len(intervals))
        if samplers:
            self._metric_half_width.set(
                max(intervals[answer][1] for answer in samplers)
            )
        results = [
            (answer, estimate)
            for answer, (estimate, _half_width) in intervals.items()
        ]
        return rank_answers(results, k)

    @staticmethod
    def _critical_answers(
        intervals: Dict[GroundTuple, Tuple[float, float]],
        samplers: Dict[GroundTuple, "KarpLubySampler"],
        k: Optional[int],
    ) -> List[GroundTuple]:
        """Answers whose interval still straddles the top-k boundary.

        Without ``k`` every unsettled sampler is critical (all answers
        need full precision).  With ``k``, take the answers with the k
        largest estimates as the provisional winners: a winner is
        settled once its lower bound clears every outsider's upper
        bound, an outsider once its upper bound is dominated.
        """
        if k is None or len(intervals) <= k:
            return [
                answer for answer in samplers
                if intervals[answer][1] > 0.0
            ]
        ranked = sorted(
            intervals, key=lambda answer: -intervals[answer][0]
        )
        winners = ranked[:k]
        outsiders = ranked[k:]
        boundary_low = min(
            intervals[answer][0] - intervals[answer][1] for answer in winners
        )
        boundary_high = max(
            intervals[answer][0] + intervals[answer][1] for answer in outsiders
        )
        critical: List[GroundTuple] = []
        for answer in winners:
            estimate, half_width = intervals[answer]
            if answer in samplers and estimate - half_width < boundary_high:
                critical.append(answer)
        for answer in outsiders:
            estimate, half_width = intervals[answer]
            if answer in samplers and estimate + half_width > boundary_low:
                critical.append(answer)
        return critical


def naive_estimate(
    lineage: Lineage,
    samples: int,
    rng: random.Random,
    backend: str = "auto",
) -> float:
    """Fraction of sampled worlds satisfying the DNF."""
    if resolve_backend(backend) in VECTOR_BACKENDS:
        return _naive_estimate_numpy(lineage, samples, rng)
    return _naive_estimate_python(lineage, samples, rng)


def _naive_estimate_python(
    lineage: Lineage, samples: int, rng: random.Random
) -> float:
    events = sorted(lineage.events(), key=str)
    weights = [lineage.weights[event] for event in events]
    index = {event: i for i, event in enumerate(events)}
    clauses = [
        [(index[key], polarity) for key, polarity in clause]
        for clause in lineage.clauses
    ]
    hits = 0
    for _ in range(samples):
        world = [rng.random() < w for w in weights]
        if any(
            all(world[i] == polarity for i, polarity in clause)
            for clause in clauses
        ):
            hits += 1
    return hits / samples


def _naive_estimate_numpy(
    lineage: Lineage, samples: int, rng: random.Random
) -> float:
    """All worlds of a batch at once: uniform matrix, CSR clause fold."""
    packed = PackedLineage.of(lineage)
    if packed.n_clauses == 0:
        return 0.0
    nprng = np.random.default_rng(rng.randrange(2**63))
    arena = SampleArena()
    hits = 0
    for batch in _batches(samples, packed.batch_cost):
        worlds = packed.sample_worlds(nprng, batch, arena)
        hits += int(
            packed.clause_satisfaction(worlds, arena).any(axis=0).sum()
        )
    return hits / samples


def karp_luby_estimate(
    lineage: Lineage,
    samples: int,
    rng: random.Random,
    backend: str = "auto",
) -> float:
    """The Karp–Luby unbiased estimator for weighted DNF probability.

    Let ``m_i = P(clause_i)`` and ``M = Σ m_i``.  Sample a clause with
    probability ``m_i / M``, then a world conditioned on that clause
    being satisfied; the indicator "the sampled clause is the
    first satisfied clause of the world" has expectation ``p / M``.
    """
    sampler = KarpLubySampler(lineage, rng, backend)
    sampler.extend(samples)
    return sampler.estimate()


class KarpLubySampler:
    """An incremental Karp–Luby estimator over one lineage.

    Keeps the clause distribution and counters between calls, so the
    multisimulation can add samples to one answer without restarting;
    ``interval`` reports the running estimate and its 95% half-width
    from the binomial CLT (the indicator variable is Bernoulli with
    mean ``p / M``).

    With the vectorized backends, :meth:`extend` is fully batched: one
    weighted ``choice`` over the packed clause distribution picks all
    trial clauses, one uniform matrix draws all worlds, and coverage
    for the whole batch is one matrix pass (numpy: vectorized
    force-scatter + padded-gather fold; numba: a jitted scalar scan
    that breaks at the first satisfied clause).  Batch buffers live in
    a per-sampler :class:`~repro.lineage.packed.SampleArena`, so the
    ``extend`` loop reuses one allocation across batches.

    A sampler may also be built from a bare
    :class:`~repro.lineage.packed.PackedLineage` (vectorized backends
    only) — the scatter workers' path, where no scalar lineage exists.
    """

    __slots__ = (
        "rng",
        "backend",
        "hits",
        "drawn",
        "total",
        "weights",
        "clauses",
        "cumulative",
        "packed",
        "arena",
        "_np_rng",
        "_forced",
    )

    def __init__(
        self,
        lineage,
        rng: random.Random,
        backend: str = "auto",
    ) -> None:
        self.rng = rng
        self.backend = resolve_backend(backend)
        self.hits = 0
        self.drawn = 0
        if self.backend in VECTOR_BACKENDS:
            self.packed = (
                lineage if isinstance(lineage, PackedLineage)
                else PackedLineage.of(lineage)
            )
            self.total = self.packed.total
            self.arena = SampleArena()
            self._forced = None  # numba scratch, allocated on first use
            # Derived from the scalar rng so one seed fixes the run.
            self._np_rng = np.random.default_rng(rng.randrange(2**63))
            return
        if isinstance(lineage, PackedLineage):
            raise ValueError(
                "packed lineages require a vectorized backend, "
                f"got {self.backend!r}"
            )
        self.weights = lineage.weights
        self.clauses: List[Clause] = sorted(lineage.clauses, key=clause_sort_key)
        probs = [_clause_probability(c, self.weights) for c in self.clauses]
        self.total = sum(probs)
        self.cumulative: List[float] = []
        acc = 0.0
        for prob in probs:
            acc += prob
            self.cumulative.append(acc)

    def extend(self, samples: int) -> None:
        """Draw ``samples`` more Karp–Luby trials."""
        if self.total == 0.0:
            self.drawn += samples
            return
        if self.backend == "numba":
            self._extend_numba(samples)
        elif self.backend == "numpy":
            self._extend_numpy(samples)
        else:
            self._extend_python(samples)
        self.drawn += samples

    def _extend_python(self, samples: int) -> None:
        for _ in range(samples):
            pick = self.rng.random() * self.total
            chosen = _bisect(self.cumulative, pick)
            world: Dict[TupleKey, bool] = {
                key: polarity for key, polarity in self.clauses[chosen]
            }
            for earlier in range(chosen):
                if _clause_satisfied(
                    self.clauses[earlier], world, self.weights, self.rng
                ):
                    break
            else:
                self.hits += 1

    def _extend_numpy(self, samples: int) -> None:
        packed = self.packed
        arena = self.arena
        for batch in _batches(samples, packed.batch_cost):
            chosen, worlds = self._draw_batch(batch, arena)
            self.hits += packed.coverage_hits(worlds, chosen, arena)

    def _extend_numba(self, samples: int) -> None:
        """The jitted path: numpy draws, scalar jitted coverage scan.

        Consumes the generator stream *exactly* like the numpy path
        (clause ids, then the full uniform matrix), so hit counts are
        bit-identical across the two backends at a fixed seed — the
        kernel reads the same uniforms the numpy path would compare.
        """
        packed = self.packed
        if self._forced is None:
            self._forced = np.full(packed.n_events, -1, dtype=np.int8)
        polarities = packed.literal_polarities.view(np.int8)
        for batch in _batches(samples, packed.batch_cost):
            chosen = packed.sample_clauses(self._np_rng, batch)
            uniforms = self._np_rng.random(
                (packed.n_events, batch), dtype=np.float32
            )
            self.hits += int(
                kl_coverage_hits(
                    packed.clause_starts,
                    packed.literal_events,
                    polarities,
                    packed.weights_f32,
                    chosen,
                    uniforms,
                    self._forced,
                )
            )

    def _draw_batch(self, batch: int, arena: Optional[SampleArena] = None):
        """One batch of (chosen clause ids, forced world matrix).

        Sampling every event up front and then overwriting the chosen
        clause's literals is distributionally identical to the scalar
        backend's lazy per-event draws: either way, events outside the
        chosen clause are independent Bernoulli draws.  With an
        ``arena`` the matrices land in its reusable buffers — same
        values, zero per-batch allocation.
        """
        packed = self.packed
        chosen = packed.sample_clauses(self._np_rng, batch)
        worlds = packed.sample_worlds(self._np_rng, batch, arena)
        packed.force_clauses(worlds, chosen)
        return chosen, worlds

    def estimate(self) -> float:
        if self.drawn == 0 or self.total == 0.0:
            return 0.0
        return self.total * self.hits / self.drawn

    def interval(self) -> Tuple[float, float]:
        """(estimate, 95% half-width); (0, 1) before any draw.

        The width uses the Agresti–Coull smoothed ratio, which stays
        strictly positive at 0/n and n/n — the plain Wald width
        collapses to zero there, which would freeze the
        multisimulation on an answer after one unlucky batch.
        """
        if self.total == 0.0:
            return 0.0, 0.0
        if self.drawn == 0:
            return 0.0, 1.0
        half_width = 1.96 * self.total * _smoothed_sd(self.hits, self.drawn)
        return self.estimate(), half_width


def estimate_with_error(
    query: AnyQuery,
    db: ProbabilisticDatabase,
    samples: int,
    seed: Optional[int] = None,
    backend: str = "auto",
    planner: Optional[GroundingPlanner] = None,
) -> Tuple[float, float]:
    """Karp–Luby estimate plus a 95% half-width from the binomial CLT.

    The estimate is clamped into [0, 1]; the half-width is the honest
    (unclamped) sampler width.
    """
    return estimate_lineage(
        ground_lineage(query, db, planner=planner), samples, seed, backend
    )


def estimate_lineage(
    lineage: Lineage,
    samples: int,
    seed: Optional[int] = None,
    backend: str = "auto",
) -> Tuple[float, float]:
    """:func:`estimate_with_error` for an already-grounded lineage."""
    if lineage.certainly_true:
        return 1.0, 0.0
    if lineage.is_false:
        return 0.0, 0.0
    sampler = KarpLubySampler(lineage, random.Random(seed), backend)
    if sampler.total == 0.0:
        return 0.0, 0.0
    sampler.extend(samples)
    estimate, half_width = sampler.interval()
    return clamp01(estimate), half_width


def estimate_packed(
    packed: PackedLineage,
    samples: int,
    seed: Optional[int] = None,
    backend: str = "auto",
    arena: Optional[SampleArena] = None,
) -> Tuple[float, float]:
    """:func:`estimate_lineage` over a :class:`PackedLineage` directly.

    Bit-identical to :func:`estimate_lineage` on the lineage the packed
    form came from (same seed, same backend): the sampler seeds its
    numpy generator from ``random.Random(seed)`` exactly the way the
    lineage path does.  Only vectorized backends apply — a packed
    lineage carries no scalar clause view for the python oracle.
    """
    resolved = resolve_backend(backend)
    if resolved not in VECTOR_BACKENDS:
        raise ValueError(
            "packed lineages require a vectorized backend, "
            f"got {resolved!r}"
        )
    if packed.n_clauses == 0 or packed.total == 0.0:
        return 0.0, 0.0
    sampler = KarpLubySampler(packed, random.Random(seed), resolved)
    if arena is not None:
        sampler.arena = arena
    sampler.extend(samples)
    estimate, half_width = sampler.interval()
    return clamp01(estimate), half_width


def _smoothed_sd(hits: int, drawn: int) -> float:
    """Agresti–Coull standard deviation of a binomial ratio.

    ``sqrt(r̃ (1 - r̃) / ñ)`` with ``r̃ = (hits + 2) / (drawn + 4)`` —
    never zero, so extreme counts keep an honest uncertainty."""
    adjusted = drawn + 4
    ratio = (hits + 2) / adjusted
    return math.sqrt(ratio * (1.0 - ratio) / adjusted)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _clause_probability(clause: Clause, weights: Dict[TupleKey, float]) -> float:
    result = 1.0
    for key, polarity in clause:
        weight = weights[key]
        result *= weight if polarity else (1.0 - weight)
    return result


def _clause_satisfied(
    clause: Clause,
    world: Dict[TupleKey, bool],
    weights: Dict[TupleKey, float],
    rng: random.Random,
) -> bool:
    """Check satisfaction, lazily sampling still-unset events."""
    for key, polarity in clause:
        value = world.get(key)
        if value is None:
            value = rng.random() < weights[key]
            world[key] = value
        if value != polarity:
            return False
    return True


def _bisect(cumulative: Sequence[float], target: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo
