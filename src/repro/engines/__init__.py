"""Evaluation engines for probabilistic conjunctive queries."""

from .base import (
    Answer,
    Engine,
    EngineError,
    UnsafeQueryError,
    UnsupportedQueryError,
    rank_answers,
)
from .bruteforce import BruteForceEngine
from .compiled import CompilationReport, CompiledEngine, canonicalize_lineage
from .lifted import (
    LiftedEngine,
    SafetyReport,
    is_safe_query,
    may_share_tuple,
    queries_independent,
)
from .lineage_engine import LineageEngine
from .montecarlo import (
    KarpLubySampler,
    MonteCarloEngine,
    estimate_lineage,
    estimate_with_error,
    karp_luby_estimate,
    naive_estimate,
    resolve_backend,
)
from .router import RouterEngine, RoutingDecision
from .safe_plan import SafePlanEngine, generic_residual
from .sql_plan import SQLSafePlanEngine

__all__ = [
    "Answer",
    "BruteForceEngine",
    "CompilationReport",
    "CompiledEngine",
    "Engine",
    "EngineError",
    "KarpLubySampler",
    "LiftedEngine",
    "LineageEngine",
    "MonteCarloEngine",
    "RouterEngine",
    "RoutingDecision",
    "SQLSafePlanEngine",
    "SafePlanEngine",
    "SafetyReport",
    "UnsafeQueryError",
    "UnsupportedQueryError",
    "canonicalize_lineage",
    "estimate_lineage",
    "estimate_with_error",
    "generic_residual",
    "is_safe_query",
    "karp_luby_estimate",
    "may_share_tuple",
    "naive_estimate",
    "queries_independent",
    "rank_answers",
    "resolve_backend",
]
