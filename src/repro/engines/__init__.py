"""Evaluation engines for probabilistic conjunctive queries."""

from .base import Engine, EngineError, UnsafeQueryError, UnsupportedQueryError
from .bruteforce import BruteForceEngine
from .compiled import CompilationReport, CompiledEngine
from .lifted import (
    LiftedEngine,
    SafetyReport,
    is_safe_query,
    may_share_tuple,
    queries_independent,
)
from .lineage_engine import LineageEngine
from .montecarlo import MonteCarloEngine, estimate_with_error, karp_luby_estimate
from .router import RouterEngine, RoutingDecision
from .safe_plan import SafePlanEngine
from .sql_plan import SQLSafePlanEngine

__all__ = [
    "BruteForceEngine",
    "CompilationReport",
    "CompiledEngine",
    "Engine",
    "EngineError",
    "LiftedEngine",
    "LineageEngine",
    "MonteCarloEngine",
    "RouterEngine",
    "RoutingDecision",
    "SQLSafePlanEngine",
    "SafePlanEngine",
    "SafetyReport",
    "UnsafeQueryError",
    "UnsupportedQueryError",
    "estimate_with_error",
    "is_safe_query",
    "karp_luby_estimate",
    "may_share_tuple",
    "queries_independent",
]
