"""The MystiQ-style router: safe plan when possible, fallback otherwise.

Section 1 of the paper describes MystiQ's strategy: test whether the
query has a PTIME plan; if yes run it, otherwise run a Monte Carlo
simulation — with execution times differing by one to two orders of
magnitude.  :class:`RouterEngine` reproduces exactly that architecture
on top of this repository's engines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.query import ConjunctiveQuery
from ..db.database import ProbabilisticDatabase
from .base import Engine, UnsafeQueryError, UnsupportedQueryError
from .lifted import LiftedEngine, is_safe_query
from .lineage_engine import LineageEngine
from .montecarlo import MonteCarloEngine
from .safe_plan import SafePlanEngine


@dataclass
class RoutingDecision:
    """Record of how a query was answered."""

    query: str
    engine: str
    probability: float
    seconds: float
    safe: bool


class RouterEngine(Engine):
    """Route each query to the cheapest correct engine.

    Order of preference:

    1. the Equation-(3) safe plan (hierarchical, self-join-free);
    2. the lifted engine (safe queries with self-joins);
    3. the fallback for #P-hard queries — Monte Carlo by default, or
       the exact lineage oracle when ``exact_fallback`` is set.
    """

    name = "router"

    def __init__(
        self,
        exact_fallback: bool = False,
        mc_samples: int = 20_000,
        mc_seed: Optional[int] = None,
    ) -> None:
        self.safe_plan = SafePlanEngine()
        self.lifted = LiftedEngine()
        self.lineage = LineageEngine()
        self.monte_carlo = MonteCarloEngine(samples=mc_samples, seed=mc_seed)
        self.exact_fallback = exact_fallback
        self.history: list[RoutingDecision] = []
        self._safety_cache: Dict[ConjunctiveQuery, bool] = {}

    def is_safe(self, query: ConjunctiveQuery) -> bool:
        """Cached safety decision for the routing choice."""
        cached = self._safety_cache.get(query)
        if cached is None:
            cached = is_safe_query(query).safe
            self._safety_cache[query] = cached
        return cached

    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        start = time.perf_counter()
        engine, value, safe = self._route(query, db)
        elapsed = time.perf_counter() - start
        self.history.append(
            RoutingDecision(
                query=str(query),
                engine=engine,
                probability=value,
                seconds=elapsed,
                safe=safe,
            )
        )
        return value

    def _route(self, query: ConjunctiveQuery, db: ProbabilisticDatabase):
        if not query.has_self_join():
            try:
                return self.safe_plan.name, self.safe_plan.probability(query, db), True
            except UnsupportedQueryError:
                pass  # non-hierarchical: fall through to the fallback
        elif self.is_safe(query):
            try:
                return self.lifted.name, self.lifted.probability(query, db), True
            except UnsafeQueryError:  # pragma: no cover - safety said yes
                pass
        if self.exact_fallback:
            return self.lineage.name, self.lineage.probability(query, db), False
        return (
            self.monte_carlo.name,
            self.monte_carlo.probability(query, db),
            False,
        )
