"""The MystiQ-style router: cheapest correct engine, in order.

Section 1 of the paper describes MystiQ's strategy: test whether the
query has a PTIME plan; if yes run it, otherwise run a Monte Carlo
simulation — with execution times differing by one to two orders of
magnitude.  :class:`RouterEngine` reproduces that architecture and
extends it with a knowledge-compilation tier: unsafe queries whose
lineage compiles to a small circuit get *exact* answers before any
sampling happens.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.query import ConjunctiveQuery
from ..db.database import ProbabilisticDatabase
from .base import Engine, UnsafeQueryError, UnsupportedQueryError
from .compiled import CompiledEngine
from .lifted import LiftedEngine, is_safe_query
from .lineage_engine import LineageEngine
from .montecarlo import MonteCarloEngine
from .safe_plan import SafePlanEngine


@dataclass
class RoutingDecision:
    """Record of how a query was answered.

    ``fallback_reason`` explains why the safer/cheaper engines above
    the chosen one were skipped — empty when the top-preference engine
    answered.
    """

    query: str
    engine: str
    probability: float
    seconds: float
    safe: bool
    fallback_reason: str = ""

    def describe(self) -> str:
        line = (
            f"{self.engine}: p={self.probability:.6f} "
            f"({self.seconds * 1e3:.1f} ms)"
        )
        if self.fallback_reason:
            line += f" — {self.fallback_reason}"
        return line


class RouterEngine(Engine):
    """Route each query to the cheapest correct engine.

    Order of preference:

    1. the Equation-(3) safe plan (hierarchical, self-join-free);
    2. the lifted engine (safe queries with self-joins);
    3. the compiled engine — exact answers for #P-hard queries whose
       lineage compiles into a circuit within ``compile_budget`` nodes;
    4. the fallback — Monte Carlo by default, or the exact lineage
       oracle when ``exact_fallback`` is set.

    Set ``compile_budget=None`` to disable tier 3 (the pre-compilation
    MystiQ architecture, kept for the paper-artifact benchmarks).
    """

    name = "router"

    def __init__(
        self,
        exact_fallback: bool = False,
        mc_samples: int = 20_000,
        mc_seed: Optional[int] = None,
        compile_budget: Optional[int] = 10_000,
    ) -> None:
        self.safe_plan = SafePlanEngine()
        self.lifted = LiftedEngine()
        self.lineage = LineageEngine()
        self.compiled: Optional[CompiledEngine] = (
            CompiledEngine(mode="auto", max_nodes=compile_budget)
            if compile_budget
            else None
        )
        self.monte_carlo = MonteCarloEngine(samples=mc_samples, seed=mc_seed)
        self.exact_fallback = exact_fallback
        self.history: list[RoutingDecision] = []
        self._safety_cache: Dict[ConjunctiveQuery, bool] = {}

    def is_safe(self, query: ConjunctiveQuery) -> bool:
        """Cached safety decision for the routing choice."""
        cached = self._safety_cache.get(query)
        if cached is None:
            cached = is_safe_query(query).safe
            self._safety_cache[query] = cached
        return cached

    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        start = time.perf_counter()
        engine, value, safe, reason = self._route(query, db)
        elapsed = time.perf_counter() - start
        self.history.append(
            RoutingDecision(
                query=str(query),
                engine=engine,
                probability=value,
                seconds=elapsed,
                safe=safe,
                fallback_reason=reason,
            )
        )
        return value

    def _route(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> Tuple[str, float, bool, str]:
        reasons = []
        if not query.has_self_join():
            try:
                return self.safe_plan.name, self.safe_plan.probability(query, db), True, ""
            except UnsupportedQueryError:
                reasons.append("no safe plan (non-hierarchical)")
        elif self.is_safe(query):
            try:
                return self.lifted.name, self.lifted.probability(query, db), True, ""
            except UnsafeQueryError:  # pragma: no cover - safety said yes
                reasons.append("lifted decomposition failed")
        else:
            reasons.append(
                "self-join without a safe decomposition (#P-hard by the dichotomy)"
            )
        if self.compiled is not None:
            try:
                value = self.compiled.probability(query, db)
                return self.compiled.name, value, False, "; ".join(reasons)
            except UnsupportedQueryError as error:
                reasons.append(str(error))
        if self.exact_fallback:
            return (
                self.lineage.name,
                self.lineage.probability(query, db),
                False,
                "; ".join(reasons),
            )
        return (
            self.monte_carlo.name,
            self.monte_carlo.probability(query, db),
            False,
            "; ".join(reasons),
        )
