"""The MystiQ-style router: cheapest correct engine, in order.

Section 1 of the paper describes MystiQ's strategy: test whether the
query has a PTIME plan; if yes run it, otherwise run a Monte Carlo
simulation — with execution times differing by one to two orders of
magnitude.  :class:`RouterEngine` reproduces that architecture and
extends it with a knowledge-compilation tier: unsafe queries whose
lineage compiles to a small circuit get *exact* answers before any
sampling happens.

Answer-tuple queries go through :meth:`RouterEngine.answers`: safety is
decided on the *residual* query (head variables read as constants), a
safe residual is answered in bulk by the group-by safe plan or the
lifted engine, and #P-hard residuals fall through per answer — circuit
compilation first, then multisimulation Monte Carlo (or the exact
oracle) for whatever did not compile.  Every answer gets its own
:class:`RoutingDecision`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..compile.cache import CircuitCache
from ..core.union import AnyQuery, UnionQuery
from ..db.database import GroundTuple, ProbabilisticDatabase
from ..lineage.boolean import Lineage
from ..lineage.grounding import ground_answer_lineages
from ..lineage.planner import GroundingPlanner
from ..lineage.wmc import exact_probability
from ..obs.metrics import MetricsRegistry
from .base import Answer, Engine, UnsafeQueryError, UnsupportedQueryError, clamp01, rank_answers
from .compiled import CompiledEngine
from .lifted import LiftedEngine
from .lineage_engine import LineageEngine
from .montecarlo import MonteCarloEngine
from .safe_plan import SafePlanEngine, generic_residual, unsupported_reason

#: Cap on cached safety verdicts — like ``history_limit``, an
#: unbounded per-query cache is a slow leak under sustained serving
#: traffic with ever-fresh query shapes.  Verdict entries are tiny, so
#: the cap is generous; eviction is insertion-ordered (oldest first).
SAFETY_CACHE_LIMIT = 10_000


@dataclass
class RoutingDecision:
    """Record of how a query (or one of its answers) was answered.

    ``fallback_reason`` explains why the safer/cheaper engines above
    the chosen one were skipped — empty when the top-preference engine
    answered.  For answer-tuple queries ``answer`` holds the answer
    tuple; ``interval`` is the Monte Carlo 95% confidence half-width
    when sampling produced the number, else None.  When a grounding
    tier (compiled, Monte Carlo, or the exact oracle) answered,
    ``grounding_plan`` records the join order the grounding planner
    chose (see :meth:`~repro.lineage.planner.GroundingPlan.describe`);
    it stays None for the PTIME tiers, which never ground.
    """

    query: str
    engine: str
    probability: float
    seconds: float
    safe: bool
    fallback_reason: str = ""
    answer: Optional[GroundTuple] = None
    interval: Optional[float] = None
    grounding_plan: Optional[str] = None

    def describe(self) -> str:
        line = (
            f"{self.engine}: p={self.probability:.6f} "
            f"({self.seconds * 1e3:.1f} ms)"
        )
        if self.answer is not None:
            line = f"{self.answer}: " + line
        if self.interval is not None:
            line += f" ±{self.interval:.6f}"
        if self.grounding_plan:
            line += f" [plan: {self.grounding_plan}]"
        if self.fallback_reason:
            line += f" — {self.fallback_reason}"
        return line


class RouterEngine(Engine):
    """Route each query to the cheapest correct engine.

    Order of preference:

    1. the Equation-(3) safe plan (hierarchical, self-join-free CQs);
    2. the lifted engine (safe CQs with self-joins, and safe unions of
       conjunctive queries — inclusion–exclusion with cancellation);
    3. the compiled engine — exact answers for #P-hard queries whose
       lineage compiles into a circuit within ``compile_budget`` nodes;
    4. the fallback — Monte Carlo by default, or the exact lineage
       oracle when ``exact_fallback`` is set.

    All four tiers accept :class:`~repro.core.union.UnionQuery` inputs
    (the exact-PTIME union tier is the lifted engine; the lower tiers
    ride on the shared DNF lineage).  One admission rule —
    :meth:`_admit_exact` — decides the exact PTIME tier for
    :meth:`plan_query`, :meth:`probability` and :meth:`answers` alike,
    so the three paths cannot drift apart.

    Set ``compile_budget=None`` to disable tier 3 (the pre-compilation
    MystiQ architecture, kept for the paper-artifact benchmarks); a
    budget of ``0`` keeps the tier enabled with a zero-node allowance
    (every compilation fails fast and falls through, useful for
    measuring pure fallback behaviour).  Negative budgets are rejected.

    Serving knobs:

    * ``circuit_cache`` / ``safety_cache`` — inject shared caches so a
      long-lived owner (a :class:`~repro.serve.QuerySession`, or
      several routers over one corpus) pools compiled circuits and
      safety verdicts (the verdict cache is capped at
      :data:`SAFETY_CACHE_LIMIT` entries, oldest evicted first);
    * ``history_limit`` — :attr:`history` keeps one
      :class:`RoutingDecision` per answer; under sustained serving
      traffic an unbounded list is a memory leak, so it is a deque
      bounded to the most recent ``history_limit`` decisions (default
      10 000; ``None`` restores the unbounded behaviour);
    * ``metrics`` — a :class:`~repro.obs.MetricsRegistry` to record
      per-tier decision counters, per-tier latency histograms and
      labeled fallback-reason counters into (shared with the Monte
      Carlo tier); by default the router creates a private registry,
      readable as :attr:`metrics`.

    Raises:
        ValueError: negative ``compile_budget`` or non-positive
            ``history_limit``.

    Example — route one safe and one #P-hard query::

        >>> from repro.core.parser import parse
        >>> from repro.db.database import ProbabilisticDatabase
        >>> db = ProbabilisticDatabase.from_dict({
        ...     "R": {(1,): 0.5}, "S": {(1, 2): 0.4}, "T": {(2,): 0.8}})
        >>> router = RouterEngine()
        >>> round(router.probability(parse("R(x), S(x,y)"), db), 6)
        0.2
        >>> router.history[-1].engine            # PTIME tier answered
        'safe-plan'
        >>> round(router.probability(parse("R(x), S(x,y), T(y)"), db), 6)
        0.16
        >>> router.history[-1].engine            # exact despite #P-hardness
        'compiled'
        >>> router.history[-1].fallback_reason
        'no safe plan (non-hierarchical: sg(x) and sg(y) cross, hence #P-hard (Theorem 1.4))'
        >>> round(router.probability(parse("R(x), S(x,y) | S(u,v), T(v)"), db), 6)
        0.36
        >>> router.history[-1].engine            # unsafe UCQ, still exact
        'compiled'
    """

    name = "router"

    def __init__(
        self,
        exact_fallback: bool = False,
        mc_samples: int = 20_000,
        mc_seed: Optional[int] = None,
        compile_budget: Optional[int] = 10_000,
        mc_backend: str = "auto",
        circuit_cache: Optional[CircuitCache] = None,
        safety_cache: Optional[Dict[AnyQuery, bool]] = None,
        history_limit: Optional[int] = 10_000,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if compile_budget is not None and compile_budget < 0:
            raise ValueError(
                f"compile_budget must be None or >= 0, got {compile_budget}"
            )
        if history_limit is not None and history_limit <= 0:
            raise ValueError(
                f"history_limit must be None or positive, got {history_limit}"
            )
        #: The router's telemetry registry (shared with the Monte Carlo
        #: tier; a :class:`~repro.serve.session.QuerySession` injects
        #: its own so one scrape covers the whole ladder).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: One grounding planner (plan cache + plan/candidate metrics)
        #: shared by every tier that grounds, so a plan built for the
        #: compiled tier is reused verbatim by the Monte Carlo fallback.
        self.grounding_planner = GroundingPlanner(metrics=self.metrics)
        self.safe_plan = SafePlanEngine()
        self.lifted = LiftedEngine()
        self.lineage = LineageEngine(planner=self.grounding_planner)
        self.compiled: Optional[CompiledEngine] = (
            CompiledEngine(
                mode="auto", max_nodes=compile_budget, cache=circuit_cache,
                planner=self.grounding_planner,
            )
            if compile_budget is not None
            else None
        )
        self.monte_carlo = MonteCarloEngine(
            samples=mc_samples, seed=mc_seed, backend=mc_backend,
            metrics=self.metrics, planner=self.grounding_planner,
        )
        self.exact_fallback = exact_fallback
        self.history: Deque[RoutingDecision] = deque(maxlen=history_limit)
        self._safety_cache: Dict[AnyQuery, bool] = (
            safety_cache if safety_cache is not None else {}
        )
        self._metric_decisions = self.metrics.counter(
            "repro_router_decisions_total",
            "Routing decisions by the tier that answered",
            ("tier",),
        )
        self._metric_tier_seconds = self.metrics.histogram(
            "repro_router_tier_seconds",
            "Evaluation latency per routing decision, by answering tier",
            ("tier",),
        )
        self._metric_fallbacks = self.metrics.counter(
            "repro_router_fallbacks_total",
            "Tiers skipped on the way down the ladder, by reason",
            ("reason",),
        )

    def is_safe(self, query: AnyQuery) -> bool:
        """Cached safety decision for the routing choice.

        Delegates to the lifted engine's :meth:`prepare
        <repro.engines.lifted.LiftedEngine.prepare>` hook (its
        admission check *is* the safety decision), memoized in the
        possibly-injected ``safety_cache``.
        """
        cached = self._safety_cache.get(query)
        if cached is None:
            try:
                self.lifted.prepare(query)
                cached = True
            except (UnsafeQueryError, UnsupportedQueryError):
                cached = False
            while len(self._safety_cache) >= SAFETY_CACHE_LIMIT:
                self._safety_cache.pop(next(iter(self._safety_cache)))
            self._safety_cache[query] = cached
        return cached

    def _admit_exact(
        self, residual: AnyQuery
    ) -> Tuple[Optional[Engine], str, str]:
        """The one tier-admission rule for the exact PTIME ladder.

        Shared by :meth:`plan_query`, :meth:`_route` and
        :meth:`_route_answers` (formerly three near-identical blocks
        that could — and did — drift in wording), so every path answers
        "which exact tier, and if none, precisely why" identically.

        * a union of CQs goes to the lifted tier when safe, else falls
          through (label ``unsafe_union``);
        * a self-join-free CQ goes to the safe plan when Equation (3)
          applies, else falls through with the precise cause from
          :func:`~repro.engines.safe_plan.unsupported_reason`
          (label ``non_hierarchical``);
        * a CQ with a self-join goes to the lifted tier when safe,
          else falls through (label ``unsafe_self_join``).

        Returns ``(engine, fallback_reason, metric_label)`` — engine is
        ``None`` exactly when no PTIME tier admits the residual, and
        only then are the reason/label non-empty.  The caller records
        the fallback metric (``plan_query`` merely *predicts* and must
        not count a fallback).
        """
        if isinstance(residual, UnionQuery):
            if self.is_safe(residual):
                return self.lifted, "", ""
            return (
                None,
                f"union of {len(residual.disjuncts)} CQs with no safe "
                f"decomposition (#P-hard by the UCQ dichotomy)",
                "unsafe_union",
            )
        if not residual.has_self_join():
            message = unsupported_reason(residual)
            if message is None:
                return self.safe_plan, "", ""
            return None, f"no safe plan ({message})", "non_hierarchical"
        if self.is_safe(residual):
            return self.lifted, "", ""
        return (
            None,
            "self-join without a safe decomposition (#P-hard by the dichotomy)",
            "unsafe_self_join",
        )

    def plan_query(self, query: AnyQuery) -> str:
        """The database-independent part of routing, decided once.

        Returns the engine name that will serve ``query`` when its
        admission is syntactic — :attr:`safe_plan` or :attr:`lifted` —
        or ``"unsafe"`` when the residual is #P-hard and the choice
        between the compiled tier and the fallback depends on the
        database (circuit budget).  This is the router's *prepare*
        hook: the serving layer calls it when a query enters the
        prepared-query cache, so per-request routing skips the
        classification entirely.  Mirrors :meth:`probability` /
        :meth:`answers` tier order exactly (safety of an answer-tuple
        query is safety of its generic residual) because all three go
        through :meth:`_admit_exact`.
        """
        engine, _reason, _label = self._admit_exact(generic_residual(query))
        return engine.name if engine is not None else "unsafe"

    def probability(
        self, query: AnyQuery, db: ProbabilisticDatabase
    ) -> float:
        start = time.perf_counter()
        engine, value, safe, reason, interval = self._route(query, db)
        elapsed = time.perf_counter() - start
        self._metric_decisions.labels(engine).inc()
        self._metric_tier_seconds.labels(engine).observe(elapsed)
        self.history.append(
            RoutingDecision(
                query=str(query),
                engine=engine,
                probability=value,
                seconds=elapsed,
                safe=safe,
                fallback_reason=reason,
                interval=interval,
                grounding_plan=self._plan_note(engine, query),
            )
        )
        return value

    def answers(
        self,
        query: AnyQuery,
        db: ProbabilisticDatabase,
        k: Optional[int] = None,
    ) -> List[Answer]:
        """Ranked answer tuples, each routed to the cheapest engine.

        Appends one :class:`RoutingDecision` per returned answer (the
        recorded seconds are the per-tier cost amortized over the
        tier's answers).
        """
        if query.head is None:
            value = self.probability(query, db)
            self.history[-1].answer = ()
            return rank_answers([((), value)], k)
        rows = self._route_answers(query, db, k)
        ranked = rank_answers([(answer, p) for answer, p, *_ in rows], k)
        kept = {answer for answer, _ in ranked}
        for answer, p, engine, seconds, safe, reason, interval in rows:
            if answer not in kept:
                continue
            self._metric_decisions.labels(engine).inc()
            self._metric_tier_seconds.labels(engine).observe(seconds)
            self.history.append(
                RoutingDecision(
                    query=str(query),
                    engine=engine,
                    probability=p,
                    seconds=seconds,
                    safe=safe,
                    fallback_reason=reason,
                    answer=answer,
                    interval=interval,
                    grounding_plan=self._plan_note(engine, query),
                )
            )
        return ranked

    # ------------------------------------------------------------------
    # Routing internals
    # ------------------------------------------------------------------

    def _plan_note(self, engine_name: str, query: AnyQuery) -> Optional[str]:
        """The grounding plan behind a decision, when one exists.

        Only the grounding tiers plan; for the PTIME tiers (and for
        lineages served entirely from the serving layer's caches) the
        planner has no cached plan and this stays None.
        """
        if engine_name in (
            self.lineage.name,
            self.monte_carlo.name,
            self.compiled.name if self.compiled is not None else None,
        ):
            return self.grounding_planner.describe_cached(query)
        return None

    def _route(
        self, query: AnyQuery, db: ProbabilisticDatabase
    ) -> Tuple[str, float, bool, str, Optional[float]]:
        reasons = []
        engine, reason, label = self._admit_exact(query.boolean())
        if engine is not None:
            try:
                return (
                    engine.name, engine.probability(query, db), True, "", None,
                )
            except (UnsafeQueryError, UnsupportedQueryError):
                # pragma: no cover - admission said yes
                reasons.append(f"{engine.name} tier failed after admission")
                self._metric_fallbacks.labels("lifted_failed").inc()
        else:
            reasons.append(reason)
            self._metric_fallbacks.labels(label).inc()
        if self.compiled is not None:
            try:
                value = self.compiled.probability(query, db)
                return self.compiled.name, value, False, "; ".join(reasons), None
            except UnsupportedQueryError as error:
                reasons.append(str(error))
                self._metric_fallbacks.labels("compile_failed").inc()
        if self.exact_fallback:
            return (
                self.lineage.name,
                self.lineage.probability(query, db),
                False,
                "; ".join(reasons),
                None,
            )
        estimate, half_width = self.monte_carlo.estimate_with_interval(query, db)
        return (
            self.monte_carlo.name,
            clamp01(estimate),
            False,
            "; ".join(reasons),
            half_width,
        )

    def _route_answers(
        self, query: AnyQuery, db: ProbabilisticDatabase,
        k: Optional[int],
    ) -> List[Tuple]:
        """(answer, p, engine, seconds, safe, reason, interval) rows."""
        reasons: List[str] = []
        engine, reason, label = self._admit_exact(generic_residual(query))
        if engine is not None:
            try:
                start = time.perf_counter()
                if engine is self.lifted:
                    results = self.lifted.answers(query, db, assume_safe=True)
                else:
                    results = engine.answers(query, db)
                return _tier_rows(
                    results, engine.name,
                    time.perf_counter() - start, True, "",
                )
            except (UnsafeQueryError, UnsupportedQueryError):
                # pragma: no cover - admission said yes
                reasons.append(f"{engine.name} tier failed after admission")
                self._metric_fallbacks.labels("lifted_failed").inc()
        else:
            reasons.append(reason)
            self._metric_fallbacks.labels(label).inc()
        reason = "; ".join(reasons)
        lineages = ground_answer_lineages(
            query, db, planner=self.grounding_planner
        )
        rows: List[Tuple] = []
        leftovers: Dict[GroundTuple, Lineage] = {}
        if self.compiled is not None:
            compile_reasons: Dict[GroundTuple, str] = {}
            for answer, lineage in lineages.items():
                start = time.perf_counter()
                try:
                    value = self.compiled.answer_probability(lineage)
                except UnsupportedQueryError as error:
                    leftovers[answer] = lineage
                    compile_reasons[answer] = str(error)
                    self._metric_fallbacks.labels("compile_failed").inc()
                    continue
                rows.append((
                    answer, value, self.compiled.name,
                    time.perf_counter() - start, False, reason, None,
                ))
        else:
            leftovers = dict(lineages)
            compile_reasons = {}
        if not leftovers:
            return rows
        start = time.perf_counter()
        if self.exact_fallback:
            fallback = [
                (answer, exact_probability(lineage), self.lineage.name, None)
                for answer, lineage in leftovers.items()
            ]
        else:
            estimates = self.monte_carlo.answers_from_lineages(leftovers, k)
            fallback = [
                (
                    answer, value, self.monte_carlo.name,
                    self.monte_carlo.last_intervals[answer][1],
                )
                for answer, value in estimates
            ]
        elapsed = (time.perf_counter() - start) / max(1, len(fallback))
        for answer, value, engine, interval in fallback:
            answer_reason = reason
            extra = compile_reasons.get(answer)
            if extra:
                answer_reason = f"{reason}; {extra}" if reason else extra
            rows.append((
                answer, value, engine, elapsed, False, answer_reason, interval,
            ))
        return rows


def _tier_rows(
    results: List[Answer], engine: str, elapsed: float, safe: bool, reason: str
) -> List[Tuple]:
    per_answer = elapsed / max(1, len(results))
    return [
        (answer, value, engine, per_answer, safe, reason, None)
        for answer, value in results
    ]
