"""Safe plans executed inside SQLite — MystiQ's extensional architecture.

MystiQ evaluates safe plans as SQL queries with probability-aggregating
operators.  This engine mirrors that: the Equation-(3) recurrence is
compiled to SQL over a :class:`~repro.db.sqlstore.SQLiteStore`, using a
registered ``por`` aggregate (independent-OR: ``1 - Π (1 - p_i)``) for
the existential steps and plain multiplication for independent joins.

The compilation walks the same structure as
:mod:`repro.engines.safe_plan`: per connected component, group rows by
the root variable's column, ``por``-aggregate over the branch
probabilities, then combine.  For multi-level queries the recursion
materializes intermediate tables, exactly like the views a relational
optimizer would produce.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.hierarchy import maximal_variables
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..db.database import GroundTuple, ProbabilisticDatabase
from ..db.sqlstore import SQLiteStore
from .base import Answer, Engine, UnsupportedQueryError, rank_answers
from .safe_plan import check_supported, generic_residual


class _IndependentOr:
    """SQLite aggregate: ``1 - Π (1 - p)`` over the group's rows."""

    def __init__(self) -> None:
        self.complement = 1.0

    def step(self, probability: float) -> None:
        self.complement *= 1.0 - probability

    def finalize(self) -> float:
        return 1.0 - self.complement


class _Product:
    """SQLite aggregate: ``Π p`` over the group's rows."""

    def __init__(self) -> None:
        self.product = 1.0

    def step(self, probability: float) -> None:
        self.product *= probability

    def finalize(self) -> float:
        return self.product


class SQLSafePlanEngine(Engine):
    """Equation (3) compiled onto SQLite.

    Same preconditions as :class:`SafePlanEngine` (hierarchical, no
    self-joins); arithmetic predicates are evaluated during the
    per-branch joins, mirroring a WHERE clause.
    """

    name = "sql-safe-plan"

    def probability(
        self, query: ConjunctiveQuery, db: ProbabilisticDatabase
    ) -> float:
        check_supported(query)
        if not query.is_satisfiable():
            return 0.0
        store = self._store(db)
        try:
            return _evaluate(query, store)
        finally:
            store.close()

    def answers(
        self,
        query: ConjunctiveQuery,
        db: ProbabilisticDatabase,
        k: Optional[int] = None,
    ) -> List[Answer]:
        """Group-by over the extensional SQL plan.

        The head valuations come from a *single* SQL join with a
        DISTINCT projection onto the head columns (the group-by keys);
        every residual is then evaluated against the same materialized
        store — one table load instead of one per answer.
        """
        if query.head is None:
            return super().answers(query, db, k)
        check_supported(generic_residual(query))
        if not query.is_satisfiable():
            return []
        store = self._store(db)
        try:
            results: List[Answer] = []
            for answer in _head_valuations(query, store):
                residual = query.bind_head(answer)
                results.append((answer, _evaluate(residual, store)))
            return rank_answers(results, k)
        finally:
            store.close()

    @staticmethod
    def _store(db: ProbabilisticDatabase) -> SQLiteStore:
        store = SQLiteStore(db)
        store.connection.create_aggregate("por", 1, _IndependentOr)
        store.connection.create_aggregate("pprod", 1, _Product)
        return store


def _head_valuations(
    query: ConjunctiveQuery, store: SQLiteStore
) -> List[GroundTuple]:
    """Candidate answer tuples via one DISTINCT-projected SQL join.

    Arithmetic predicates are *not* pushed into the join — they may
    mention existential variables, so filtering the projected rows
    would be unsound.  The superset is harmless: residuals of spurious
    candidates evaluate to 0 and are dropped by the ranker.
    """
    positive = [a for a in query.atoms if not a.negated]
    for atom in positive:
        if store.arity(atom.relation) != atom.arity:
            return []
    froms: List[str] = []
    wheres: List[str] = []
    params: List = []
    first_column: Dict[Variable, str] = {}
    for index, atom in enumerate(positive):
        alias = f"t{index}"
        froms.append(f'"{atom.relation}" AS {alias}')
        for position, term in enumerate(atom.terms):
            column = f"{alias}.c{position}"
            if isinstance(term, Constant):
                wheres.append(f"{column} = ?")
                params.append(store.encode(term.value))
            elif term in first_column:
                wheres.append(f"{column} = {first_column[term]}")
            else:
                first_column[term] = column
    head_vars = query.head_variables
    for variable in head_vars:
        if variable not in first_column:
            raise UnsupportedQueryError(
                f"head variable {variable} occurs in no positive sub-goal: "
                f"{query}"
            )
    if not froms:
        return [()] if not head_vars else []
    select = ", ".join(first_column[v] for v in head_vars) or "1"
    sql = f"SELECT DISTINCT {select} FROM {', '.join(froms)}"
    if wheres:
        sql += " WHERE " + " AND ".join(wheres)
    results: List[GroundTuple] = []
    for row in store.connection.execute(sql, params).fetchall():
        bound = {v: store.decode(row[i]) for i, v in enumerate(head_vars)}
        results.append(tuple(
            term.value if isinstance(term, Constant) else bound[term]
            for term in query.head or ()
        ))
    return results


def _evaluate(query: ConjunctiveQuery, store: SQLiteStore) -> float:
    result = 1.0
    for component in query.connected_components():
        result *= _component(component, store)
        if result == 0.0:
            return 0.0
    return result


def _component(component: ConjunctiveQuery, store: SQLiteStore) -> float:
    if not component.variables:
        return _ground(component, store)
    root = _root_of(component)
    # One SQL pass: for each root value, the probability of the branch
    # f[a/root].  Branches may still contain variables below the root —
    # those are por-aggregated inside the recursive step.
    branch_probabilities = _branch_probabilities(component, root, store)
    complement = 1.0
    for probability in branch_probabilities:
        complement *= 1.0 - probability
    return 1.0 - complement


def _branch_probabilities(
    component: ConjunctiveQuery, root: Variable, store: SQLiteStore
) -> List[float]:
    """``p(f[a/root])`` for every candidate root value ``a``.

    The candidate values come from a SQL intersection over the root's
    columns; each branch is evaluated recursively (the recursion depth
    is bounded by the query's variable count).
    """
    candidates: Optional[set] = None
    for atom in component.atoms:
        if atom.negated or root not in atom.variables:
            continue
        if store.arity(atom.relation) != atom.arity:
            return []  # empty or mis-declared relation: no candidates
        for position in atom.positions_of(root):
            cursor = store.connection.execute(
                f'SELECT DISTINCT c{position} FROM "{atom.relation}"'
            )
            values = {row[0] for row in cursor.fetchall()}
            candidates = values if candidates is None else candidates & values
    results: List[float] = []
    for encoded in sorted(candidates or ()):
        value = store.decode(encoded)
        branch = component.substitute(root, Constant(value))
        results.append(_evaluate(branch.drop_trivial_predicates(), store))
    return results


def _ground(component: ConjunctiveQuery, store: SQLiteStore) -> float:
    from .safe_plan import _ground_predicates_hold

    if not _ground_predicates_hold(component.predicates):
        return 0.0
    result = 1.0
    for atom in component.atoms:
        row = tuple(term.value for term in atom.terms)
        probability = _tuple_probability(atom.relation, row, store)
        result *= (1.0 - probability) if atom.negated else probability
        if result == 0.0 and not atom.negated:
            return 0.0
    return result


def _tuple_probability(relation: str, row: Tuple, store: SQLiteStore) -> float:
    if store.arity(relation) != len(row):
        return 0.0
    conditions = " AND ".join(f"c{i} = ?" for i in range(len(row)))
    sql = f'SELECT por(prob) FROM "{relation}"'
    if conditions:
        sql += f" WHERE {conditions}"
    cursor = store.connection.execute(
        sql, [store.encode(v) for v in row]
    )
    value = cursor.fetchone()[0]
    return float(value) if value is not None else 0.0


def _root_of(component: ConjunctiveQuery) -> Variable:
    positive = component.positive_part()
    for candidate in maximal_variables(positive):
        if positive.subgoal_map[candidate] == frozenset(
            range(len(positive.atoms))
        ):
            return candidate
    raise UnsupportedQueryError(
        f"no root variable for component {component}"
    )
