"""Top-down d-DNNF-style compilation of lineage DNFs.

This compiler runs exactly the trace of the Shannon-expansion WMC
oracle (:mod:`repro.lineage.wmc`) — independent-component split,
most-frequent-event pivot, memoization on the residual clause set —
but instead of multiplying numbers it *records the trace* as a circuit
in the shared IR:

* an independent-component split becomes
  ``¬(¬c₁ ∧ … ∧ ¬cₖ)`` — a decomposable AND under negations, the
  circuit form of ``P(∨) = 1 − Π (1 − Pᵢ)``;
* a Shannon pivot becomes a deterministic decision node
  ``(x ∧ f|ₓ) ∨ (¬x ∧ f|₋ₓ)``;
* a single clause becomes a decomposable AND of literals.

Memoization on residual clause sets makes shared sub-DNFs *shared
sub-circuits* — the artifact is a DAG, not a tree.  The resulting
circuit answers any re-weighted probability query in time linear in
its size, which is what the WMC oracle cannot do: it must recount from
scratch for every weight change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Sequence

from ..core.query import ConjunctiveQuery
from ..db.database import TupleKey
from ..lineage.boolean import Clause, Lineage
from ..lineage.wmc import condition_clauses, most_frequent_event, split_components
from .circuit import BudgetExceeded, Circuit, NodeId
from .evaluate import probability as circuit_probability
from .evaluate import probability_batch as circuit_probability_batch


@dataclass
class CompiledDNNF:
    """The result of :func:`compile_dnnf`."""

    circuit: Circuit
    root: NodeId
    #: Number of Shannon pivots taken (decomposition quality measure;
    #: compare with :func:`repro.lineage.wmc.shannon_expansion_count`).
    pivots: int = 0

    @property
    def size(self) -> int:
        return self.circuit.node_count(self.root)

    def probability(self, weights: Mapping[TupleKey, float]):
        return circuit_probability(self.circuit, self.root, weights)

    def probability_batch(self, events: Sequence[TupleKey], weights):
        """Root probability per row of a ``(batch, len(events))`` matrix."""
        return circuit_probability_batch(
            self.circuit, self.root, events, weights
        )


def compile_dnnf(
    lineage: Lineage,
    query: Optional[ConjunctiveQuery] = None,
    max_nodes: Optional[int] = None,
) -> CompiledDNNF:
    """Compile a lineage DNF into a d-DNNF-style circuit.

    ``query`` is accepted for signature parity with the OBDD compiler
    (the decomposition is ordering-free).  ``max_nodes`` bounds the
    circuit store; exceeding it raises :class:`BudgetExceeded`.
    """
    circuit = Circuit()
    if lineage.certainly_true:
        return CompiledDNNF(circuit, circuit.TRUE)
    if lineage.is_false:
        return CompiledDNNF(circuit, circuit.FALSE)

    memo: Dict[FrozenSet[Clause], NodeId] = {}
    budget = None if max_nodes is None else max_nodes + len(circuit)
    # Node interning means a lot of *work* can produce few new nodes
    # (conditioning and memo hashing scale with the residual clause
    # count); bound the total clauses touched by expansions too, so a
    # doomed compilation fails fast instead of thrashing the memo.
    max_work = None if max_nodes is None else 30 * max_nodes + 1000
    work = 0
    pivots = 0

    def check_budget() -> None:
        if budget is not None and len(circuit) > budget:
            raise BudgetExceeded(
                f"d-DNNF circuit exceeded the {max_nodes}-node budget"
            )

    def compile_set(clauses: FrozenSet[Clause]) -> NodeId:
        nonlocal pivots, work
        if not clauses:
            return circuit.FALSE
        if frozenset() in clauses:
            return circuit.TRUE
        cached = memo.get(clauses)
        if cached is not None:
            return cached
        work += len(clauses)
        if max_work is not None and work > max_work:
            raise BudgetExceeded(
                f"d-DNNF compilation exceeded its work budget "
                f"({max_work} residual clauses touched)"
            )
        if len(clauses) == 1:
            (clause,) = clauses
            node = circuit.conjoin(
                circuit.literal(key, polarity) for key, polarity in clause
            )
        else:
            components = split_components(clauses)
            if len(components) > 1:
                # P(∨ independent cᵢ) = 1 − Π (1 − P(cᵢ)), as a circuit.
                node = circuit.negate(circuit.conjoin(
                    circuit.negate(compile_set(component))
                    for component in components
                ))
            else:
                pivots += 1
                pivot = most_frequent_event(clauses)
                high = compile_set(condition_clauses(clauses, pivot, True))
                low = compile_set(condition_clauses(clauses, pivot, False))
                node = circuit.decision(pivot, high, low)
        memo[clauses] = node
        check_budget()
        return node

    root = compile_set(frozenset(lineage.clauses))
    return CompiledDNNF(circuit, root, pivots=pivots)
