"""Evaluation services over compiled circuits.

Everything here is linear in circuit size — that is the entire point
of compiling: the #P-hard work happens once, at compilation, and every
probability query afterwards is a cheap pass.

* :func:`probability` — exact probability in one bottom-up sweep.
* :func:`probability_batch` — the same sweep, vectorized: one circuit,
  a ``(batch, n_events)`` weight matrix, numpy vectors as node values;
  the whole batch costs one topological pass instead of ``batch`` of
  them (how :meth:`CompiledEngine.answers` re-weights one shared
  circuit across many answer tuples).
* :func:`model_count` — exact model counting via the weight-½ trick
  with :class:`fractions.Fraction` arithmetic (no float loss).
* :class:`IncrementalEvaluator` — re-weighting without recompilation:
  change one tuple's marginal and only the literal's ancestors are
  recomputed, typically a tiny fraction of the circuit.

Soundness rests on the compilers' structural contract (decomposable
AND, deterministic OR, see :mod:`repro.compile.circuit`): then
``P(AND) = Π``, ``P(OR) = Σ``, ``P(NOT) = 1 − P``.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set

try:  # pragma: no cover - exercised by whichever env runs the suite
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from .circuit import AND, CONST, LIT, NOT, OR, Circuit, NodeId


def _node_value(circuit: Circuit, node: NodeId, weights, value, one, zero):
    payload = circuit.payload(node)
    kind = payload[0]
    if kind == CONST:
        return one if payload[1] else zero
    if kind == LIT:
        weight = weights[payload[1]]
        return weight if payload[2] else one - weight
    if kind == NOT:
        return one - value[payload[1]]
    if kind == AND:
        result = one
        for child in payload[1]:
            result = result * value[child]
        return result
    result = zero  # OR: deterministic, so probabilities add
    for child in payload[1]:
        result = result + value[child]
    return result


def probability(
    circuit: Circuit, root: NodeId, weights: Mapping[Hashable, float]
):
    """Exact probability of ``root`` — one linear bottom-up pass.

    Generic over the weight type: pass floats for probabilities or
    :class:`fractions.Fraction` for exact rational results.
    """
    sample = next(iter(weights.values()), 1.0)
    one, zero = type(sample)(1), type(sample)(0)
    value: Dict[NodeId, object] = {}
    for node in circuit.topological(root):
        value[node] = _node_value(circuit, node, weights, value, one, zero)
    return value[root]


def probability_batch(
    circuit: Circuit,
    root: NodeId,
    events: Sequence[Hashable],
    weights,
):
    """Probability of ``root`` under every row of a weight matrix.

    ``weights`` is a ``(batch, len(events))`` float array whose column
    ``j`` holds the marginal of ``events[j]``; returns the ``(batch,)``
    vector of root probabilities.  One topological sweep with numpy
    vectors as node values — the batch dimension rides along every
    product/sum for free instead of re-walking the circuit per row.
    """
    if np is None:
        raise RuntimeError("probability_batch requires numpy")
    weights = np.asarray(weights, dtype=np.float64)
    column = {event: j for j, event in enumerate(events)}
    batch = weights.shape[0]
    ones = np.ones(batch)
    zeros = np.zeros(batch)
    value: Dict[NodeId, "np.ndarray"] = {}
    for node in circuit.topological(root):
        payload = circuit.payload(node)
        kind = payload[0]
        if kind == CONST:
            value[node] = ones if payload[1] else zeros
        elif kind == LIT:
            weight = weights[:, column[payload[1]]]
            value[node] = weight if payload[2] else 1.0 - weight
        elif kind == NOT:
            value[node] = 1.0 - value[payload[1]]
        elif kind == AND:
            result = ones
            for child in payload[1]:
                result = result * value[child]
            value[node] = result
        else:  # OR: deterministic, so probabilities add
            result = zeros
            for child in payload[1]:
                result = result + value[child]
            value[node] = result
    return value[root]


def reweighted_probabilities(
    artifact, events: Sequence[Hashable], rows: Sequence[Sequence[float]]
) -> List[float]:
    """One compiled artifact evaluated under many weight vectors.

    The batched re-weighting path shared by
    :meth:`CompiledEngine.answers <repro.engines.compiled.CompiledEngine.answers>`
    (answers of one query on a shared canonical circuit) and the
    serving layer (same-shape queries across a batch, probability-only
    refreshes): ``artifact`` is a compiled OBDD/d-DNNF, ``events`` its
    variable order, and each row of ``rows`` one weight vector aligned
    with ``events``.  With numpy and more than one row the whole batch
    is one vectorized bottom-up sweep (``probability_batch``);
    otherwise it falls back to a linear pass per row.
    """
    if not rows:
        return []
    if np is not None and len(rows) > 1:
        values = artifact.probability_batch(
            events, np.asarray(rows, dtype=np.float64)
        )
        return [float(value) for value in values]
    return [
        float(artifact.probability(dict(zip(events, row)))) for row in rows
    ]


def model_count(
    circuit: Circuit,
    root: NodeId,
    variables: Optional[Iterable[Hashable]] = None,
) -> int:
    """Satisfying assignments of ``root`` over ``variables``.

    ``variables`` defaults to the variables mentioned under ``root``;
    pass the full lineage event set to count over unmentioned events
    too (each doubles the count).
    """
    if variables is None:
        variables = circuit.variables(root)
    variables = list(variables)
    half = Fraction(1, 2)
    weights = {var: half for var in variables}
    mentioned = circuit.variables(root)
    missing = mentioned - set(variables)
    if missing:
        raise ValueError(f"circuit mentions variables outside the count "
                         f"scope: {sorted(map(str, missing))[:3]}")
    if not variables:
        return 1 if probability(circuit, root, {"_": half}) == 1 else 0
    scaled = probability(circuit, root, weights) * 2 ** len(variables)
    return int(scaled)


class IncrementalEvaluator:
    """Re-weighting service: update marginals, not the circuit.

    Keeps the per-node values of one bottom-up evaluation plus the
    reverse edges; :meth:`update` recomputes only the cone of ancestors
    of the changed literals, in topological rank order.  For local
    weight changes on a large shared circuit this touches a small
    fraction of the nodes — the benchmark in
    ``benchmarks/bench_compile.py`` shows the resulting ≥10× speedup
    over recompiling and recounting from scratch.
    """

    def __init__(
        self,
        circuit: Circuit,
        root: NodeId,
        weights: Mapping[Hashable, float],
    ) -> None:
        self.circuit = circuit
        self.root = root
        self.weights: Dict[Hashable, float] = dict(weights)
        self._topo: List[NodeId] = circuit.topological(root)
        self._rank: Dict[NodeId, int] = {
            node: i for i, node in enumerate(self._topo)
        }
        self._parents: Dict[NodeId, List[NodeId]] = {}
        self._literals: Dict[Hashable, List[NodeId]] = {}
        for node in self._topo:
            payload = circuit.payload(node)
            if payload[0] == LIT:
                self._literals.setdefault(payload[1], []).append(node)
            for child in circuit.children(node):
                self._parents.setdefault(child, []).append(node)
        self._value: Dict[NodeId, float] = {}
        for node in self._topo:
            self._value[node] = _node_value(
                circuit, node, self.weights, self._value, 1.0, 0.0
            )
        self.nodes_recomputed = 0

    def probability(self) -> float:
        return self._value[self.root]

    def update(self, var: Hashable, weight: float) -> float:
        """Set ``var``'s marginal and return the new root probability."""
        return self.update_many({var: weight})

    def update_many(self, changes: Mapping[Hashable, float]) -> float:
        dirty: List[int] = []
        queued: Set[NodeId] = set()
        for var, weight in changes.items():
            if var not in self._literals and var not in self.weights:
                raise KeyError(f"unknown event {var!r}")
            self.weights[var] = weight
            for node in self._literals.get(var, ()):
                if node not in queued:
                    queued.add(node)
                    heapq.heappush(dirty, self._rank[node])
        while dirty:
            node = self._topo[heapq.heappop(dirty)]
            queued.discard(node)
            fresh = _node_value(
                self.circuit, node, self.weights, self._value, 1.0, 0.0
            )
            self.nodes_recomputed += 1
            if fresh == self._value[node]:
                continue
            self._value[node] = fresh
            for parent in self._parents.get(node, ()):
                if parent not in queued:
                    queued.add(parent)
                    heapq.heappush(dirty, self._rank[parent])
        return self._value[self.root]
