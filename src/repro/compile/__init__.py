"""Knowledge compilation: lineage DNFs as reusable circuits.

The repository's second exact-inference backend, alongside the
Shannon-expansion WMC oracle: compile a lineage once into a structured
circuit (OBDD or d-DNNF), then answer probability, model-counting and
re-weighted queries in time linear in circuit size.

Modules:

* :mod:`~repro.compile.circuit` — the interned AND/OR/NOT circuit IR;
* :mod:`~repro.compile.ordering` — OBDD variable-ordering heuristics;
* :mod:`~repro.compile.obdd` — bottom-up Apply-based OBDD compiler;
* :mod:`~repro.compile.dnnf` — top-down d-DNNF-style compiler
  mirroring the WMC decomposition;
* :mod:`~repro.compile.evaluate` — linear-time evaluation, exact model
  counting, incremental re-weighting;
* :mod:`~repro.compile.cache` — structural compiled-circuit cache.
"""

from .cache import CircuitCache
from .circuit import BudgetExceeded, Circuit
from .dnnf import CompiledDNNF, compile_dnnf
from .evaluate import (
    IncrementalEvaluator,
    model_count,
    probability,
    probability_batch,
    reweighted_probabilities,
)
from .obdd import OBDD, CompiledOBDD, compile_obdd
from .ordering import (
    ORDERINGS,
    STRATEGIES,
    candidate_orders,
    hierarchy_order,
    lineage_order,
    make_order,
    min_width_order,
)

__all__ = [
    "BudgetExceeded",
    "Circuit",
    "CircuitCache",
    "CompiledDNNF",
    "CompiledOBDD",
    "IncrementalEvaluator",
    "OBDD",
    "ORDERINGS",
    "STRATEGIES",
    "candidate_orders",
    "compile_dnnf",
    "compile_obdd",
    "hierarchy_order",
    "lineage_order",
    "make_order",
    "min_width_order",
    "model_count",
    "probability",
    "probability_batch",
    "reweighted_probabilities",
]
