"""Bottom-up OBDD compilation of lineage DNFs.

A reduced ordered binary decision diagram over the lineage's tuple
events: every path from the root tests events in one global order, and
isomorphic subgraphs are shared through a unique table.  Compilation is
the classical Apply algorithm — each clause becomes a literal chain,
clauses are OR-folded pairwise (balanced, so intermediate results stay
small) — with a memoized Apply cache.

The payoff over the Shannon-expansion WMC oracle is the *artifact*:
once compiled, exact probability is a single linear pass over the
nodes, repeatable for free under changed tuple marginals (incremental
re-weighting), and cacheable across repeated queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

try:  # pragma: no cover - exercised by whichever env runs the suite
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..core.query import ConjunctiveQuery
from ..db.database import TupleKey
from ..lineage.boolean import Lineage
from .circuit import BudgetExceeded, Circuit, NodeId
from .ordering import candidate_orders, make_order

#: Terminal ids.
FALSE = 0
TRUE = 1


class OBDD:
    """A reduced OBDD over a fixed event order.

    Nodes are ``(level, low, high)`` triples interned in a unique
    table; ids 0/1 are the terminals.  ``level`` indexes into
    :attr:`order`.
    """

    def __init__(
        self, order: Sequence[TupleKey], max_nodes: Optional[int] = None
    ) -> None:
        self.order: List[TupleKey] = list(order)
        self.level_of: Dict[TupleKey, int] = {
            event: i for i, event in enumerate(self.order)
        }
        #: node id -> (level, low, high); terminals hold None.
        self._nodes: List[Optional[Tuple[int, int, int]]] = [None, None]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple, int] = {}
        self.max_nodes = max_nodes
        self.apply_steps = 0

    # ------------------------------------------------------------------
    # Node store
    # ------------------------------------------------------------------

    def mk(self, level: int, low: int, high: int) -> int:
        """The reduced node ``if order[level] then high else low``."""
        if low == high:
            return low
        key = (level, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        if self.max_nodes is not None and len(self._nodes) >= self.max_nodes + 2:
            raise BudgetExceeded(
                f"OBDD exceeded the {self.max_nodes}-node budget"
            )
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def literal(self, event: TupleKey, polarity: bool = True) -> int:
        level = self.level_of[event]
        return self.mk(level, FALSE, TRUE) if polarity else self.mk(
            level, TRUE, FALSE
        )

    def _level(self, node: int) -> int:
        payload = self._nodes[node]
        return len(self.order) if payload is None else payload[0]

    def _branches(self, node: int) -> Tuple[int, int]:
        _, low, high = self._nodes[node]
        return low, high

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------

    def apply_or(self, f: int, g: int) -> int:
        return self._apply("or", f, g)

    def apply_and(self, f: int, g: int) -> int:
        return self._apply("and", f, g)

    @staticmethod
    def _terminal(op: str, f: int, g: int) -> Optional[int]:
        if f == g:
            return f
        if op == "or":
            if TRUE in (f, g):
                return TRUE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
        else:
            if FALSE in (f, g):
                return FALSE
            if f == TRUE:
                return g
            if g == TRUE:
                return f
        return None

    def _apply(self, op: str, f: int, g: int) -> int:
        """Iterative memoized Apply (no recursion-depth ceiling)."""
        cache = self._apply_cache

        def norm(a: int, b: int) -> Tuple:
            return (op, a, b) if a <= b else (op, b, a)

        root_key = norm(f, g)
        stack: List[Tuple[int, int]] = [(f, g)]
        while stack:
            pair = stack[-1]
            key = norm(*pair)
            if key in cache:
                stack.pop()
                continue
            terminal = self._terminal(op, *pair)
            if terminal is not None:
                cache[key] = terminal
                stack.pop()
                continue
            self.apply_steps += 1
            a, b = pair
            level = min(self._level(a), self._level(b))
            a0, a1 = (
                self._branches(a) if self._level(a) == level else (a, a)
            )
            b0, b1 = (
                self._branches(b) if self._level(b) == level else (b, b)
            )
            key0, key1 = norm(a0, b0), norm(a1, b1)
            low, high = cache.get(key0), cache.get(key1)
            if low is not None and high is not None:
                cache[key] = self.mk(level, low, high)
                stack.pop()
            else:
                if high is None:
                    stack.append((a1, b1))
                if low is None:
                    stack.append((a0, b0))
        return cache[root_key]

    # ------------------------------------------------------------------
    # Queries over a compiled root
    # ------------------------------------------------------------------

    def reachable(self, root: int) -> List[int]:
        """Nodes under ``root``, children before parents."""
        seen: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            if self._nodes[node] is not None:
                _, low, high = self._nodes[node]
                stack.extend(((high, False), (low, False)))
        return order

    def node_count(self, root: int) -> int:
        """Decision nodes reachable from ``root`` (terminals excluded)."""
        return sum(
            1 for node in self.reachable(root) if self._nodes[node] is not None
        )

    def probability(self, root: int, weights: Mapping[TupleKey, float]):
        """Exact probability of ``root`` — one linear bottom-up pass.

        Works for any numeric weight type (floats for probabilities,
        :class:`fractions.Fraction` for exact model counting).
        """
        sample = next(iter(weights.values()), 1.0)
        one, zero = type(sample)(1), type(sample)(0)
        value: Dict[int, object] = {FALSE: zero, TRUE: one}
        for node in self.reachable(root):
            if node in value:
                continue
            level, low, high = self._nodes[node]
            weight = weights[self.order[level]]
            value[node] = weight * value[high] + (one - weight) * value[low]
        return value[root]

    def probability_batch(self, root: int, events: Sequence[TupleKey], weights):
        """Probability of ``root`` under every row of a weight matrix.

        ``weights`` is ``(batch, len(events))`` with column ``j``
        holding the marginal of ``events[j]``.  The Shannon recurrence
        ``w·P(high) + (1−w)·P(low)`` runs once per node with numpy
        vectors, so the whole batch costs one bottom-up pass.
        """
        if np is None:
            raise RuntimeError("probability_batch requires numpy")
        weights = np.asarray(weights, dtype=np.float64)
        batch = weights.shape[0]
        column = {event: j for j, event in enumerate(events)}
        value: Dict[int, "np.ndarray"] = {
            FALSE: np.zeros(batch), TRUE: np.ones(batch)
        }
        for node in self.reachable(root):
            if node in value:
                continue
            level, low, high = self._nodes[node]
            weight = weights[:, column[self.order[level]]]
            value[node] = weight * value[high] + (1.0 - weight) * value[low]
        return value[root]

    def model_count(self, root: int) -> int:
        """Satisfying assignments over all events in :attr:`order`."""
        half = Fraction(1, 2)
        weights = {event: half for event in self.order}
        if not self.order:
            return 1 if root == TRUE else 0
        scaled = self.probability(root, weights) * 2 ** len(self.order)
        return int(scaled)

    def to_circuit(
        self, root: int, circuit: Optional[Circuit] = None
    ) -> Tuple[Circuit, NodeId]:
        """Lower to the shared circuit IR (d-DNNF by construction)."""
        circuit = circuit or Circuit()
        mapped: Dict[int, NodeId] = {
            FALSE: circuit.FALSE, TRUE: circuit.TRUE
        }
        for node in self.reachable(root):
            if node in mapped:
                continue
            level, low, high = self._nodes[node]
            mapped[node] = circuit.decision(
                self.order[level], mapped[high], mapped[low]
            )
        return circuit, mapped[root]


@dataclass
class CompiledOBDD:
    """The result of :func:`compile_obdd`."""

    obdd: OBDD
    root: int
    ordering: str
    #: Total unique-table size at the end of compilation (includes
    #: intermediate Apply results; ``size`` is the live result only).
    peak_nodes: int = 0

    @property
    def size(self) -> int:
        return self.obdd.node_count(self.root)

    def probability(self, weights: Mapping[TupleKey, float]):
        return self.obdd.probability(self.root, weights)

    def probability_batch(self, events: Sequence[TupleKey], weights):
        """Root probability per row of a ``(batch, len(events))`` matrix."""
        return self.obdd.probability_batch(self.root, events, weights)

    def model_count(self) -> int:
        return self.obdd.model_count(self.root)


def compile_clauses(
    obdd: OBDD, clauses: Sequence[Sequence[Tuple[TupleKey, bool]]]
) -> int:
    """OR-fold the clause chains, pairwise-balanced."""
    roots: List[int] = []
    for clause in clauses:
        literals = sorted(
            clause, key=lambda lit: obdd.level_of[lit[0]], reverse=True
        )
        node = TRUE
        for event, polarity in literals:
            level = obdd.level_of[event]
            if polarity:
                node = obdd.mk(level, FALSE, node)
            else:
                node = obdd.mk(level, node, FALSE)
        roots.append(node)
    if not roots:
        return FALSE
    while len(roots) > 1:
        merged = [
            obdd.apply_or(roots[i], roots[i + 1])
            if i + 1 < len(roots) else roots[i]
            for i in range(0, len(roots), 2)
        ]
        roots = merged
    return roots[0]


def _canonical_clauses(lineage: Lineage):
    def literal_key(lit):
        (name, row), polarity = lit
        return (name, tuple((type(v).__name__, str(v)) for v in row), polarity)

    clauses = [sorted(clause, key=literal_key) for clause in lineage.clauses]
    clauses.sort(key=lambda lits: [literal_key(lit) for lit in lits])
    return clauses


def compile_obdd(
    lineage: Lineage,
    strategy: str = "auto",
    query: Optional[ConjunctiveQuery] = None,
    max_nodes: Optional[int] = None,
) -> CompiledOBDD:
    """Compile a lineage DNF into a reduced OBDD.

    ``strategy`` is an ordering name from :mod:`repro.compile.ordering`
    (or ``best``, which compiles every candidate order and keeps the
    smallest result).  ``max_nodes`` bounds the unique table;
    exceeding it raises :class:`~repro.compile.circuit.BudgetExceeded`.
    """
    if lineage.certainly_true:
        return CompiledOBDD(OBDD([]), TRUE, "trivial")
    if lineage.is_false:
        return CompiledOBDD(OBDD([]), FALSE, "trivial")
    clauses = _canonical_clauses(lineage)
    if strategy == "best":
        best: Optional[CompiledOBDD] = None
        failure: Optional[BudgetExceeded] = None
        for name, order in candidate_orders(lineage, query):
            obdd = OBDD(order, max_nodes=max_nodes)
            try:
                root = compile_clauses(obdd, clauses)
            except BudgetExceeded as error:
                failure = error
                continue
            result = CompiledOBDD(obdd, root, name, peak_nodes=len(obdd))
            if best is None or result.size < best.size:
                best = result
        if best is None:
            raise failure or BudgetExceeded("no ordering compiled")
        return best
    name, order = make_order(lineage, strategy, query)
    obdd = OBDD(order, max_nodes=max_nodes)
    root = compile_clauses(obdd, clauses)
    return CompiledOBDD(obdd, root, name, peak_nodes=len(obdd))
