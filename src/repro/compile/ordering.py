"""Variable orderings for the OBDD compiler.

OBDD size is notoriously sensitive to the variable order.  Three
heuristics are provided, all deterministic:

* ``lineage`` — events in first-appearance order over the canonically
  sorted clauses.  Cheap, and already groups each clause's events.
* ``min-width`` — greedy minimization of the number of *active*
  clauses (clauses with both placed and unplaced events) at every
  prefix of the order.  Small width bounds the OBDD frontier.
* ``hierarchy`` — derived from the query's hierarchy tree
  (:mod:`repro.core.hierarchy`): events are sorted by the ground values
  of the root-to-leaf scope variables, so all events touching one
  root-variable value are contiguous.  On hierarchical queries this
  yields the linear-size OBDDs that mirror the safe plan's independence
  structure.

``make_order`` dispatches by name; ``auto`` picks ``hierarchy`` when a
hierarchical connected query is supplied and ``min-width`` otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.hierarchy import HierarchyTree, is_hierarchical
from ..core.query import ConjunctiveQuery
from ..core.terms import Variable
from ..db.database import TupleKey
from ..lineage.boolean import Lineage

#: Ordering strategy names accepted by the compilers and the CLI.
STRATEGIES = ("lineage", "min-width", "hierarchy", "auto", "best")


def _event_key(event: TupleKey) -> Tuple:
    name, row = event
    return (name, tuple((type(v).__name__, str(v)) for v in row))


def _sorted_clauses(lineage: Lineage) -> List[List[TupleKey]]:
    clauses = []
    for clause in lineage.clauses:
        clauses.append(sorted({key for key, _ in clause}, key=_event_key))
    clauses.sort(key=lambda events: [_event_key(e) for e in events])
    return clauses


def lineage_order(
    lineage: Lineage, query: Optional[ConjunctiveQuery] = None
) -> List[TupleKey]:
    """Events in first-appearance order over canonically sorted clauses."""
    order: List[TupleKey] = []
    seen: Set[TupleKey] = set()
    for clause in _sorted_clauses(lineage):
        for event in clause:
            if event not in seen:
                seen.add(event)
                order.append(event)
    return order


def min_width_order(
    lineage: Lineage, query: Optional[ConjunctiveQuery] = None
) -> List[TupleKey]:
    """Greedy width minimization over the clause/event incidence.

    At each step pick the event that, once placed, leaves the fewest
    *active* clauses — clauses partially placed.  Ties break toward
    events finishing more clauses, then canonically.

    The greedy scan is O(events × incidence); on huge lineages that
    cost would land *before* the OBDD compiler's node budget can
    fire, so past a fixed work bound this falls back to the linear
    :func:`lineage_order` (the budget then fails fast as intended).
    """
    clauses = _sorted_clauses(lineage)
    incidence = sum(len(events) for events in clauses)
    if lineage.variable_count * incidence > 20_000_000:
        return lineage_order(lineage, query)
    remaining: Dict[int, Set[TupleKey]] = {
        i: set(events) for i, events in enumerate(clauses)
    }
    touched: Set[int] = set()
    by_event: Dict[TupleKey, List[int]] = {}
    for i, events in enumerate(clauses):
        for event in events:
            by_event.setdefault(event, []).append(i)
    order: List[TupleKey] = []
    unplaced = set(by_event)
    while unplaced:
        best = None
        best_score = None
        for event in unplaced:
            finishes = sum(
                1 for i in by_event[event]
                if remaining[i] == {event}
            )
            opens = sum(
                1 for i in by_event[event]
                if i not in touched and len(remaining[i]) > 1
            )
            # width delta: newly active minus newly finished
            score = (opens - finishes, -finishes, _event_key(event))
            if best_score is None or score < best_score:
                best, best_score = event, score
        order.append(best)
        unplaced.discard(best)
        for i in by_event[best]:
            touched.add(i)
            remaining[i].discard(best)
    return order


def hierarchy_order(
    lineage: Lineage, query: Optional[ConjunctiveQuery] = None
) -> List[TupleKey]:
    """Hierarchy-guided order: group events by root-variable values.

    For a connected hierarchical query, walking the hierarchy tree
    gives each relation a scope ``⌈x⌉`` (root variables first).  An
    event's sort key is the ground value of those scope variables in
    root-to-leaf order — so all tuples sharing a root value are
    adjacent, which is exactly the independence the safe plan exploits
    and what keeps the OBDD frontier constant.

    Falls back to :func:`lineage_order` when no query is supplied or
    the query is not hierarchical/connected.
    """
    if query is None or not query.atoms:
        return lineage_order(lineage, query)
    try:
        components = query.connected_components()
    except Exception:
        return lineage_order(lineage, query)

    #: relation -> (component rank, depth rank, scope positions)
    plans: Dict[str, Tuple[int, int, Tuple[int, ...]]] = {}
    for comp_rank, component in enumerate(components):
        if not is_hierarchical(component) or not component.variables:
            continue
        try:
            tree = HierarchyTree(component)
        except ValueError:
            continue
        depth = 0
        for root in tree.roots:
            for node in root.walk():
                for index in node.subgoals:
                    atom = component.atoms[index]
                    positions = _scope_positions(atom, node.scope)
                    plans.setdefault(
                        atom.relation, (comp_rank, depth, positions)
                    )
                depth += 1
    if not plans:
        return lineage_order(lineage, query)

    def key(event: TupleKey):
        name, row = event
        plan = plans.get(name)
        if plan is None:
            return (1, (), 0, _event_key(event))
        comp_rank, depth, positions = plan
        values = tuple(
            (type(row[p]).__name__, str(row[p]))
            for p in positions if p < len(row)
        )
        return (0, (comp_rank, values), depth, _event_key(event))

    return sorted(lineage.events(), key=key)


def _scope_positions(atom, scope: Sequence[Variable]) -> Tuple[int, ...]:
    """First term position of each scope variable in the atom."""
    positions: List[int] = []
    for variable in scope:
        for position, term in enumerate(atom.terms):
            if term == variable:
                positions.append(position)
                break
    return tuple(positions)


ORDERINGS = {
    "lineage": lineage_order,
    "min-width": min_width_order,
    "hierarchy": hierarchy_order,
}


def make_order(
    lineage: Lineage,
    strategy: str = "auto",
    query: Optional[ConjunctiveQuery] = None,
) -> Tuple[str, List[TupleKey]]:
    """Resolve a strategy name to ``(effective name, event order)``.

    ``auto`` picks ``hierarchy`` when the query is supplied, connected
    and hierarchical, else ``min-width``.  ``best`` is resolved by the
    OBDD compiler (it needs candidate compilations); here it maps to
    the full candidate list via :func:`candidate_orders`.
    """
    if strategy == "auto":
        if (
            query is not None
            and query.atoms
            and query.is_connected()
            and is_hierarchical(query)
        ):
            strategy = "hierarchy"
        else:
            strategy = "min-width"
    if strategy not in ORDERINGS:
        raise ValueError(
            f"unknown ordering strategy {strategy!r}; "
            f"expected one of {sorted(ORDERINGS) + ['auto', 'best']}"
        )
    return strategy, ORDERINGS[strategy](lineage, query)


def candidate_orders(
    lineage: Lineage, query: Optional[ConjunctiveQuery] = None
) -> List[Tuple[str, List[TupleKey]]]:
    """All heuristic orders, deduplicated, for ``best``-mode search."""
    out: List[Tuple[str, List[TupleKey]]] = []
    seen: Set[Tuple] = set()
    for name in ("hierarchy", "min-width", "lineage"):
        order = ORDERINGS[name](lineage, query)
        fingerprint = tuple(order)
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        out.append((name, order))
    return out
