"""A keyed cache of compiled circuits.

Compilation is the expensive step; the artifact depends only on the
lineage's *clause structure* and the compiler configuration — never on
the tuple marginals, which enter at evaluation time.  Caching on that
structural key means:

* repeated queries over the same database reuse their circuit;
* parameterized workloads (same query, updated marginals) pay
  compilation once and re-evaluate in linear time;
* distinct queries whose groundings produce the same DNF shape share
  one artifact.

A plain LRU with hit/miss counters; thread-unsafe by design (the
engines are single-threaded).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

from ..lineage.boolean import Lineage


class CircuitCache:
    """LRU cache from structural keys to compiled artifacts."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_for(
        lineage: Lineage, mode: str, strategy: str = ""
    ) -> Tuple[Hashable, ...]:
        """The structural cache key: clauses + compiler configuration.

        ``lineage.clauses`` is a frozenset of frozensets of hashable
        literals, so the key is hashable and weight-independent.
        """
        return (mode, strategy, lineage.certainly_true, lineage.clauses)

    def get(self, key: Hashable) -> Optional[Any]:
        artifact = self._store.get(key)
        if artifact is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return artifact

    def put(self, key: Hashable, artifact: Any) -> None:
        self._store[key] = artifact
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()

    def stats(self) -> str:
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return (
            f"{len(self._store)}/{self.maxsize} entries, "
            f"{self.hits} hits / {self.misses} misses ({rate:.0f}%), "
            f"{self.evictions} evictions"
        )
