"""A structurally-hashed Boolean circuit IR for compiled lineages.

Knowledge compilation turns a lineage DNF into a *circuit* whose shape
guarantees tractable queries: the compilers in this package only emit

* **decomposable** AND nodes (children over disjoint event sets) and
* **deterministic** OR nodes (children mutually exclusive),

which is the d-DNNF contract — plus free-standing NOT nodes, which are
harmless for probability computation over independent events
(``P(¬φ) = 1 − P(φ)``).  Under that contract the exact probability of
the root is a single bottom-up pass (:mod:`repro.compile.evaluate`).

Nodes are interned: building the same sub-circuit twice returns the
same node id, so shared sub-formulas are stored and evaluated once and
circuit size is a faithful complexity measure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

#: Node ids are dense ints; 0/1 are reserved for the two constants.
NodeId = int


class BudgetExceeded(RuntimeError):
    """A compiler exceeded its node budget.

    Raised by the OBDD and d-DNNF compilers when ``max_nodes`` is set;
    the router treats it as "this lineage does not compile small" and
    falls through to Monte Carlo.
    """

#: Node kinds.
CONST = "const"
LIT = "lit"
AND = "and"
OR = "or"
NOT = "not"

#: Interned node payloads:
#:   ("const", bool)
#:   ("lit", var, polarity)
#:   ("and", (child, ...))   children sorted, deduplicated, flattened
#:   ("or", (child, ...))
#:   ("not", child)
Node = Tuple


class Circuit:
    """An interning store of circuit nodes.

    One :class:`Circuit` can hold many roots (the compiled-circuit
    cache shares a store per lineage); sizes are therefore reported per
    root via :meth:`node_count`.
    """

    def __init__(self) -> None:
        self._nodes: List[Node] = []
        self._intern: Dict[Node, NodeId] = {}
        self.FALSE = self._mk((CONST, False))
        self.TRUE = self._mk((CONST, True))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _mk(self, node: Node) -> NodeId:
        existing = self._intern.get(node)
        if existing is not None:
            return existing
        node_id = len(self._nodes)
        self._nodes.append(node)
        self._intern[node] = node_id
        return node_id

    def constant(self, value: bool) -> NodeId:
        return self.TRUE if value else self.FALSE

    def literal(self, var: Hashable, polarity: bool = True) -> NodeId:
        """The literal ``var`` (or ``¬var`` when ``polarity`` is False)."""
        return self._mk((LIT, var, bool(polarity)))

    def negate(self, node: NodeId) -> NodeId:
        kind = self.kind(node)
        payload = self._nodes[node]
        if kind == CONST:
            return self.FALSE if payload[1] else self.TRUE
        if kind == LIT:
            return self.literal(payload[1], not payload[2])
        if kind == NOT:
            return payload[1]
        return self._mk((NOT, node))

    def conjoin(self, children: Iterable[NodeId]) -> NodeId:
        """AND with flattening, constant folding and complement check."""
        flat = self._gather(children, AND, absorbing=self.FALSE,
                            neutral=self.TRUE)
        if flat is None:
            return self.FALSE
        if not flat:
            return self.TRUE
        if len(flat) == 1:
            return flat[0]
        return self._mk((AND, tuple(flat)))

    def disjoin(self, children: Iterable[NodeId]) -> NodeId:
        """OR with flattening, constant folding and complement check."""
        flat = self._gather(children, OR, absorbing=self.TRUE,
                            neutral=self.FALSE)
        if flat is None:
            return self.TRUE
        if not flat:
            return self.FALSE
        if len(flat) == 1:
            return flat[0]
        return self._mk((OR, tuple(flat)))

    def decision(self, var: Hashable, high: NodeId, low: NodeId) -> NodeId:
        """The Shannon node ``(var ∧ high) ∨ (¬var ∧ low)``.

        The OR is deterministic by construction (the branches disagree
        on ``var``) and the ANDs are decomposable whenever the branch
        circuits do not mention ``var`` — which every compiler here
        guarantees.
        """
        if high == low:
            return high
        return self.disjoin((
            self.conjoin((self.literal(var, True), high)),
            self.conjoin((self.literal(var, False), low)),
        ))

    def _gather(self, children, kind, absorbing, neutral):
        """Flatten/canonicalize; ``None`` signals the absorbing result."""
        seen: Set[NodeId] = set()
        out: List[NodeId] = []
        stack = list(children)
        stack.reverse()
        while stack:
            child = stack.pop()
            if child == absorbing:
                return None
            if child == neutral:
                continue
            payload = self._nodes[child]
            if payload[0] == kind:
                stack.extend(reversed(payload[1]))
                continue
            if child in seen:
                continue
            seen.add(child)
            out.append(child)
        # x ∧ ¬x → ⊥ and x ∨ ¬x → ⊤ (cheap complement check on ids;
        # restricted to kinds whose negation never interns a new node).
        for child in out:
            if self.kind(child) in (LIT, NOT) and self.negate(child) in seen:
                return None
        out.sort()
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def kind(self, node: NodeId) -> str:
        return self._nodes[node][0]

    def payload(self, node: NodeId) -> Node:
        return self._nodes[node]

    def children(self, node: NodeId) -> Tuple[NodeId, ...]:
        payload = self._nodes[node]
        if payload[0] in (AND, OR):
            return payload[1]
        if payload[0] == NOT:
            return (payload[1],)
        return ()

    def __len__(self) -> int:
        return len(self._nodes)

    def topological(self, root: NodeId) -> List[NodeId]:
        """Nodes reachable from ``root``, children before parents."""
        order: List[NodeId] = []
        seen: Set[NodeId] = set()
        stack: List[Tuple[NodeId, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            for child in self.children(node):
                if child not in seen:
                    stack.append((child, False))
        return order

    def node_count(self, root: NodeId) -> int:
        """Number of distinct nodes reachable from ``root``."""
        return len(self.topological(root))

    def edge_count(self, root: NodeId) -> int:
        return sum(len(self.children(n)) for n in self.topological(root))

    def variables(self, root: NodeId) -> Set[Hashable]:
        """All decision variables mentioned under ``root``."""
        found: Set[Hashable] = set()
        for node in self.topological(root):
            payload = self._nodes[node]
            if payload[0] == LIT:
                found.add(payload[1])
        return found

    def describe(self, root: NodeId, max_nodes: int = 40) -> str:
        """A compact textual rendering (for the CLI and debugging)."""
        lines: List[str] = []
        order = self.topological(root)
        for node in order[-max_nodes:]:
            payload = self._nodes[node]
            if payload[0] == CONST:
                lines.append(f"n{node}: {'⊤' if payload[1] else '⊥'}")
            elif payload[0] == LIT:
                sign = "" if payload[2] else "¬"
                lines.append(f"n{node}: {sign}{payload[1]}")
            elif payload[0] == NOT:
                lines.append(f"n{node}: NOT n{payload[1]}")
            else:
                args = " ".join(f"n{c}" for c in payload[1])
                lines.append(f"n{node}: {payload[0].upper()}({args})")
        if len(order) > max_nodes:
            lines.insert(0, f"... ({len(order) - max_nodes} more nodes)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Structural checks (used by tests; compilers guarantee these)
    # ------------------------------------------------------------------

    def is_decomposable(self, root: NodeId) -> bool:
        """Every AND node's children mention disjoint variable sets."""
        scope: Dict[NodeId, frozenset] = {}
        for node in self.topological(root):
            payload = self._nodes[node]
            if payload[0] == CONST:
                scope[node] = frozenset()
            elif payload[0] == LIT:
                scope[node] = frozenset((payload[1],))
            elif payload[0] == NOT:
                scope[node] = scope[payload[1]]
            else:
                union: Set[Hashable] = set()
                total = 0
                for child in payload[1]:
                    union.update(scope[child])
                    total += len(scope[child])
                if payload[0] == AND and total != len(union):
                    return False
                scope[node] = frozenset(union)
        return True
