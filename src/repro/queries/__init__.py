"""The paper's query zoo."""

from .zoo import ZooEntry, build_zoo, fast_entries, get, undisputed_entries, zoo, zoo_by_name

__all__ = [
    "ZooEntry",
    "build_zoo",
    "fast_entries",
    "get",
    "undisputed_entries",
    "zoo",
    "zoo_by_name",
]
