"""Every named query from the paper, with its claimed classification.

This module is the reproduction's ground truth for Figures 1 and 2 and
all worked examples: each entry records where the query appears in the
paper and whether the paper claims PTIME or #P-hardness.  The test
suite asserts our classifier (and the lifted engine's safety decision)
against these claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.parser import parse
from ..core.query import ConjunctiveQuery
from ..core.terms import Term, make_term
from ..hardness.hk import hk_query


@dataclass(frozen=True)
class ZooEntry:
    """A paper query with provenance and claimed complexity."""

    name: str
    query: ConjunctiveQuery
    claimed_ptime: bool
    source: str
    notes: str = ""
    #: True when the claim could not be confirmed by our implementation
    #: of the paper's definitions (see EXPERIMENTS.md).
    disputed: bool = False
    #: True for queries whose analysis is expensive (excluded from the
    #: quick test tier; exercised by slow tests and benchmarks).
    slow: bool = False
    #: For constant-heavy queries whose automatic coverage explodes:
    #: the pairs to order-split, yielding the compact coverage the
    #: paper itself analyzes (used via ``classify``).
    split_pairs: Tuple[Tuple[Term, Term], ...] = ()
    #: Use a caller-chosen coverage (``split_pairs``, possibly empty =
    #: the trivial coverage) instead of the automatic construction.
    manual_coverage: bool = False

    def classify(self):
        """Classify with the entry's preferred coverage strategy."""
        from ..analysis.classifier import classify, classify_with_coverage
        from ..coverage.coverage import split_covers

        if self.split_pairs or self.manual_coverage:
            covers = split_covers(self.query, self.split_pairs)
            return classify_with_coverage(self.query, covers)
        return classify(self.query)


def _entry(
    name: str,
    text_or_query,
    claimed_ptime: bool,
    source: str,
    constants: Tuple[str, ...] = (),
    notes: str = "",
    disputed: bool = False,
    slow: bool = False,
    split_pairs: Tuple[Tuple[str, object], ...] = (),
    manual_coverage: bool = False,
) -> ZooEntry:
    if isinstance(text_or_query, ConjunctiveQuery):
        query = text_or_query
    else:
        query = parse(text_or_query, constants=constants)
    pairs = tuple(
        (make_term(u), make_term(v) if not isinstance(v, str) or v not in constants
         else make_term(f"'{v}'"))
        for u, v in split_pairs
    )
    return ZooEntry(
        name=name,
        query=query,
        claimed_ptime=claimed_ptime,
        source=source,
        notes=notes,
        disputed=disputed,
        slow=slow,
        split_pairs=pairs,
        manual_coverage=manual_coverage,
    )


def build_zoo() -> List[ZooEntry]:
    """All named paper queries."""
    entries = [
        _entry(
            "q_hier", "R(x), S(x,y)", True,
            "Section 1.1 (Definition 1.2)",
            notes="the canonical hierarchical query",
        ),
        _entry(
            "q_non_h", "R(x), S(x,y), T(y)", False,
            "Section 1.1 (Definition 1.2) / Theorem 1.4",
            notes="the canonical non-hierarchical query",
        ),
        _entry(
            "sec1_1_no_inversion", "R(x), S(x,y), S(xp,yp), T(xp)", True,
            "Section 1.1 (Inversions)",
            notes="self-join without inversion, solved via f3 = f1 f2",
        ),
        _entry(
            "H0", hk_query(0), False,
            "Section 1.1 / Theorem 1.5",
            notes="the base of the H_k hard family",
        ),
        _entry(
            "H1", hk_query(1), False,
            "Theorem 1.5",
            slow=True,
        ),
        _entry(
            "H2", hk_query(2), False,
            "Theorem 1.5",
            slow=True,
        ),
        _entry(
            "example_1_7",
            "R(r,x), S(r,x,y), U(a,r), U(r,z), V(r,z), "
            "S(rp,xp,yp), T(rp,yp), V(a,rp), R(a,b), S(a,b,c), U(a,a)",
            True,
            "Example 1.7 / Example 3.13",
            constants=("a", "b", "c"),
            notes="inversion with an eraser: the constant sub-goals rescue it",
            slow=True,
            split_pairs=(("r", "a"), ("rp", "a")),
        ),
        _entry(
            "example_1_7_without_constants",
            "R(r,x), S(r,x,y), U(a,r), U(r,z), V(r,z), "
            "S(rp,xp,yp), T(rp,yp), V(a,rp)",
            False,
            "Example 3.13 ('if we removed it, the query becomes #P-hard')",
            constants=("a",),
            slow=True,
        ),
        _entry(
            "q_2path", "R(x,y), R(y,z)", False,
            "Theorem 1.8 application / Figure 2 row 1",
            notes="inversion between the query and a copy of itself",
            slow=True,
        ),
        _entry(
            "q_marked_ring", "R(x), S(x,y), S(y,x)", False,
            "Theorem 1.8 application / Figure 2 row 3",
        ),
        _entry(
            "example_2_4", "T(x), R(x,x,y), R(u,v,v)", True,
            "Example 2.4",
            notes="strict coverage needs trichotomy splits",
        ),
        _entry(
            "example_2_14", "P(x), R(x,y), R(xp,yp), S(xp)", True,
            "Examples 2.14 / 2.23 / 3.8 (running example)",
        ),
        _entry(
            "example_3_5_q1", "R(x,y), S(x,y), S(xp,yp), T(yp)", True,
            "Example 3.5 (q1)",
            notes="unlike H0 the guard R(x,y) covers both variables, making "
                  "x ≡ y — no inversion; the example exhibits its unary "
                  "coverage (roots y, y')",
        ),
        _entry(
            "example_3_5_q2", "R(x,y), R(y,x)", True,
            "Example 3.5 (q2)",
            notes="needs the x<y / x=y / x>y coverage",
        ),
        _entry(
            "example_4_1", "U(x), V(x,y), V(y,x)", False,
            "Example 4.1",
            notes="marked ring with renamed relations; reduction from H0",
        ),
        _entry(
            "example_4_3",
            "R(x), S(x,y), U(x,y,a,b), U(z1,z2,x,y), V(z1,z2,x,y), "
            "S(xp,yp), T(yp), V(xp,yp,a,b), R(a), S(a,b), U(a,b,a,b)",
            False,
            "Example 4.3",
            constants=("a", "b"),
            notes="first inversion has a bad mapping; a second one is "
                  "eraser-free; analyzed on the trivial coverage (the "
                  "mechanical strict refinement exceeds the eraser budget)",
            slow=True,
            manual_coverage=True,
        ),
        _entry(
            "footnote1_4ary", "R(x,y,y,x), R(x,y,x,z)", True,
            "Footnote 1",
            notes="challenging PTIME query, no inversion",
        ),
        _entry(
            "footnote1_5ary_ptime",
            "R(y,x,y,x,y), R(y,x,y,z,x), R(x,x,y,z,u)", True,
            "Footnote 1",
        ),
        _entry(
            "footnote1_5ary_hard",
            "R(y,x,y,x,y), R(y,y,y,z,x), R(x,x,y,z,u)", False,
            "Footnote 1",
            notes="every cross-atom unification collapses x=y, so our "
                  "implementation of Defs 2.3/2.6 finds a strict, "
                  "inversion-free coverage and classifies PTIME; the "
                  "footnote's hardness claim could not be confirmed "
                  "(see EXPERIMENTS.md)",
            disputed=True,
        ),
        # Figure 1 (all PTIME) -------------------------------------------
        _entry(
            "fig1_row1",
            "R(x), S1(x,y,y), S1(u,v,w), S2(u,v,w), S2(xp,xp,yp), T(yp)",
            True,
            "Figure 1 row 1",
            notes="inversion in the trivial (non-strict) coverage is "
                  "interrupted by the strictness refinement",
            slow=True,
        ),
        _entry(
            "fig1_row2",
            "R(x1,x2), S(x1,x2,y,y), S(x1,x1,x2,x2), S(xp,xp,yp,yp), T(yp)",
            True,
            "Figure 1 row 2",
            notes="inversion disappears after minimizing the covers",
            slow=True,
        ),
        _entry(
            "fig1_row3",
            "R(x1,x2), S(x1,x2,y,y), S(x1,x2,x1,x2), S(xp,xp,y1p,y2p), "
            "T(y1p,y2p)",
            True,
            "Figure 1 row 3",
            notes="inversion sits in a redundant cover only",
            slow=True,
        ),
        # Figure 2 (all #P-hard) ------------------------------------------
        _entry(
            "fig2_row1", "R(x,y), R(y,z)", False,
            "Figure 2 row 1 (same as q_2path)",
            slow=True,
        ),
        _entry(
            "fig2_open_marked_ring",
            "R(x), S1(x,y), S1(u1,v1), S2(u1,v1), S2(u2,v2), S2(v2,u2)",
            False,
            "Figure 2 row 2 (open marked ring)",
            notes="analyzed on the trivial coverage; the eraser-free "
                  "inversion travels the S1/S2 chain",
            slow=True,
            manual_coverage=True,
        ),
        _entry(
            "fig2_marked_ring", "R(x), S(x,y), S(y,x)", False,
            "Figure 2 row 3 (marked ring)",
        ),
    ]
    return entries


_ZOO: Optional[List[ZooEntry]] = None


def zoo() -> List[ZooEntry]:
    """The cached query zoo."""
    global _ZOO
    if _ZOO is None:
        _ZOO = build_zoo()
    return _ZOO


def zoo_by_name() -> Dict[str, ZooEntry]:
    return {entry.name: entry for entry in zoo()}


def get(name: str) -> ZooEntry:
    """Look up a zoo entry by name."""
    return zoo_by_name()[name]


def fast_entries() -> List[ZooEntry]:
    """Entries cheap enough for the default test tier."""
    return [e for e in zoo() if not e.slow]


def undisputed_entries() -> List[ZooEntry]:
    return [e for e in zoo() if not e.disputed]
