"""Fast checks of zoo metadata consumers and Classification plumbing."""

import pytest

from repro.analysis import Verdict, classify
from repro.core import parse
from repro.queries import fast_entries, undisputed_entries, zoo, zoo_by_name


class TestZooHelpers:
    def test_by_name_complete(self):
        assert set(zoo_by_name()) == {e.name for e in zoo()}

    def test_fast_subset(self):
        fast = fast_entries()
        assert fast and all(not e.slow for e in fast)

    def test_undisputed_excludes_disputed(self):
        assert all(not e.disputed for e in undisputed_entries())

    def test_sources_cite_paper_locations(self):
        for entry in zoo():
            assert any(
                token in entry.source
                for token in ("Section", "Example", "Figure", "Theorem",
                              "Footnote")
            ), entry.name


class TestClassificationObject:
    def test_ptime_classification_fields(self):
        result = classify(parse("R(x), S(x,y), S(xp,yp), T(xp)"))
        assert result.verdict is Verdict.PTIME
        assert result.minimized.atoms
        assert not result.closure_truncated
        assert result.describe().startswith("query:")

    def test_hard_classification_has_join(self):
        result = classify(parse("R(x), S(x,y), S(xp,yp), T(yp)"))
        assert result.hard_join is not None
        # The witness join must actually be non-computable: either
        # non-hierarchical or carrying an inversion.
        from repro.core.hierarchy import is_hierarchical
        from repro.core.homomorphism import minimize
        from repro.analysis import has_inversion

        core = minimize(result.hard_join)
        assert (not is_hierarchical(core)) or has_inversion(core)

    def test_erased_joins_have_homomorphisms(self):
        from repro.core.homomorphism import has_homomorphism
        from repro.queries import get

        result = get("example_1_7").classify()
        for join, erasers in result.erased_joins:
            for eraser in erasers:
                assert has_homomorphism(eraser, join)
