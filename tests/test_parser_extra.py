"""Additional parser and public-API surface tests."""

import pytest

import repro
from repro.core import parse
from repro.core.parser import QueryParseError


class TestParserEdgeCases:
    def test_whitespace_tolerance(self):
        assert parse("  R( x ,y ) ,S(y)  ") == parse("R(x,y), S(y)")

    def test_nested_commas_stay_inside(self):
        q = parse("R(x,y,z), S(x)")
        assert q.atoms[0].arity in (1, 3)
        assert {a.arity for a in q.atoms} == {1, 3}

    def test_negated_with_spaces(self):
        q = parse("R(x), not   S(x)")
        assert len(q.negative_atoms) == 1

    def test_comparison_with_constant(self):
        q = parse("R(x), x != 'lit'")
        assert len(q.predicates) == 1

    def test_double_quoted(self):
        q = parse('R("abc")')
        assert q.atoms[0].is_ground()

    def test_rejects_empty(self):
        assert parse("").atoms == ()

    def test_unbalanced(self):
        with pytest.raises(QueryParseError):
            parse("R(x))")


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_round_trip_example(self):
        db = repro.ProbabilisticDatabase.from_dict(
            {"R": {(1,): 0.5}, "S": {(1, 2): 0.4, (1, 3): 0.7}}
        )
        q = repro.parse("R(x), S(x,y)")
        assert repro.classify(q).is_safe
        p = repro.RouterEngine().probability(q, db)
        expected = 0.5 * (1 - 0.6 * 0.3)
        assert p == pytest.approx(expected)

    def test_is_ptime_shorthand(self):
        assert repro.is_ptime(repro.parse("R(x), S(x,y)"))
        assert not repro.is_ptime(repro.parse("R(x), S(x,y), T(y)"))
