"""Unions of conjunctive queries, end to end.

Parser round-trips and error messages, UnionQuery canonicalization,
the reusable transforms (DNF/CNF minimization, shattering), the
cross-engine parity sweep over safe UCQs with self-joins, routing of
unsafe unions, and the serving cache on union shapes.
"""

import pytest

from repro.analysis.classifier import Reason, Verdict, classify
from repro.core import parse
from repro.core.parser import QueryParseError
from repro.core.query import ConjunctiveQuery, canonical_string
from repro.core.terms import Constant
from repro.core.union import (
    UnionQuery,
    disjuncts_of,
    minimize_ucq_in_cnf,
    minimize_ucq_in_dnf,
    shatter_constants,
    ucq_cnf,
    union_equivalent,
)
from repro.db import (
    ProbabilisticDatabase,
    iterate_worlds,
    random_database,
    world_database,
)
from repro.lineage.grounding import query_holds
from repro.engines import (
    BruteForceEngine,
    CompiledEngine,
    LiftedEngine,
    LineageEngine,
    MonteCarloEngine,
    RouterEngine,
    SafePlanEngine,
    UnsafeQueryError,
    UnsupportedQueryError,
)
from repro.serve import QuerySession

brute = BruteForceEngine()
lifted = LiftedEngine()
lineage = LineageEngine()
compiled = CompiledEngine()

#: Safe UCQs, several with self-joins; all decompose by the lifted rules.
SAFE_UCQS = [
    "R(x,x) | R(x,y), x < y",
    "R(x,y), R(y,x) | S(z)",
    "R(x,1) | R(x,2)",
    "S(x) | T(x)",
    "S(x), T(y) | S(u)",
]

#: An H1-like union: S is shared across disjuncts with no separator, so
#: inclusion-exclusion cycles and the union is #P-hard.
UNSAFE_UCQ = "R(x), S(x,y) | S(u,v), T(v)"


def small_db():
    return ProbabilisticDatabase.from_dict({
        "R": {(1, 1): 0.5, (1, 2): 0.3, (2, 1): 0.7, (2, 2): 0.2},
        "S": {(1,): 0.4, (3,): 0.9},
        "T": {(2,): 0.8},
    })


def binary_db():
    return ProbabilisticDatabase.from_dict({
        "R": {(1,): 0.5},
        "S": {(1, 2): 0.4},
        "T": {(2,): 0.8},
    })


class TestParserRoundTrip:
    def test_pipe_builds_a_boolean_union(self):
        query = parse("R(x) | S(x,y)")
        assert isinstance(query, UnionQuery)
        assert len(query.disjuncts) == 2
        assert query.head is None

    def test_semicolon_rules_build_a_headed_union(self):
        query = parse("Q(x) :- R(x); Q(y) :- S(y,y)")
        assert isinstance(query, UnionQuery)
        assert query.head is not None
        assert all(d.head is not None for d in query.disjuncts)

    def test_newline_separates_rules_like_semicolon(self):
        assert parse("Q(x) :- R(x)\nQ(y) :- S(y,y)") == parse(
            "Q(x) :- R(x); Q(y) :- S(y,y)"
        )

    def test_head_distributes_over_pipe_bodies(self):
        query = parse("Q(x) :- R(x) | S(x,x)")
        assert isinstance(query, UnionQuery)
        assert len(query.disjuncts) == 2
        assert all(d.head is not None for d in query.disjuncts)

    def test_single_body_stays_a_plain_cq(self):
        assert isinstance(parse("R(x), S(x,y)"), ConjunctiveQuery)
        assert isinstance(parse("Q(x) :- R(x), S(x,y)"), ConjunctiveQuery)

    def test_duplicate_disjuncts_collapse_to_a_cq(self):
        # R(x) and R(y) are equal up to renaming; canonical dedup
        # leaves one disjunct, which parse returns as a plain CQ.
        assert isinstance(parse("R(x) | R(y)"), ConjunctiveQuery)

    @pytest.mark.parametrize("text", SAFE_UCQS + [
        UNSAFE_UCQ,
        "Q(x) :- R(x,y), x < y; Q(z) :- S(z)",
        "Q(x) :- R(x) | S(x,x)",
    ])
    def test_str_round_trips(self, text):
        query = parse(text)
        assert parse(str(query)) == query

    def test_constants_apply_to_every_disjunct(self):
        query = parse("R(a,x) | S(a)", constants=("a",))
        for disjunct in disjuncts_of(query):
            assert any(
                isinstance(term, Constant)
                for atom in disjunct.atoms
                for term in atom.terms
            )


class TestParserErrors:
    def test_different_head_relations(self):
        with pytest.raises(
            QueryParseError, match="rules define different head relations"
        ):
            parse("Q(x) :- R(x); P(y) :- S(y,y)")

    def test_head_arity_mismatch(self):
        with pytest.raises(
            QueryParseError, match="rules disagree on head arity"
        ):
            parse("Q(x) :- R(x); Q(y,z) :- S(y,z)")

    def test_mixed_boolean_and_headed_rules(self):
        with pytest.raises(
            QueryParseError, match="rules mix Boolean and answer-tuple forms"
        ):
            parse("R(x); Q(y) :- S(y,y)")

    def test_pipe_inside_a_rule_mixes_with_head_too(self):
        with pytest.raises(QueryParseError):
            parse("Q(x) :- R(x) ; S(y,y)")

    def test_all_empty_bodies_rejected(self):
        with pytest.raises(QueryParseError, match="empty body"):
            parse("|")

    def test_stray_empty_disjuncts_are_dropped(self):
        # Consistent with a trailing ';' or blank line between rules.
        assert parse("R(x) | | S(y)") == parse("R(x) | S(y)")


class TestUnionCanonicalization:
    def test_disjunct_order_is_irrelevant(self):
        assert parse("R(x) | S(x,y)") == parse("S(x,y) | R(x)")

    def test_canonical_string_is_renaming_invariant(self):
        # Like CQs, `==` is structural; renaming invariance is the job
        # of canonical_string (and of the dedup inside UnionQuery).
        left = parse("R(x), S(x,y) | T(z)")
        right = parse("R(a), S(a,b) | T(c)")
        assert canonical_string(left) == canonical_string(right)
        merged = UnionQuery.of([*left.disjuncts, *right.disjuncts])
        assert len(merged.disjuncts) == 2

    def test_rule_order_is_irrelevant_for_headed_unions(self):
        first = parse("Q(x) :- R(x,y), x < y; Q(z) :- S(z)")
        second = parse("Q(z) :- S(z); Q(x) :- R(x,y), x < y")
        assert first == second
        assert canonical_string(first) == canonical_string(second)

    def test_union_of_collapses_duplicates(self):
        q = parse("R(x), S(x,y)")
        assert UnionQuery.of([q, q]) == q

    def test_canonical_string_differs_from_any_single_cq(self):
        union = parse("R(x) | S(x)")
        assert canonical_string(union) != canonical_string(parse("R(x)"))


class TestTransforms:
    def test_dnf_minimization_prunes_contained_disjuncts(self):
        # S(x), T(y) implies S(u): the first disjunct is redundant.
        union = parse("S(x), T(y) | S(u)")
        minimized = minimize_ucq_in_dnf(list(union.disjuncts))
        assert len(minimized) == 1
        assert minimized[0] == parse("S(u)")

    def test_dnf_minimization_preserves_probability(self):
        # The unsafe union uses a different schema (R/1, S/2) than the
        # safe zoo (R/2, S/1), hence its own database.
        cases = [(text, small_db()) for text in SAFE_UCQS]
        cases.append((UNSAFE_UCQ, binary_db()))
        for text, db in cases:
            union = parse(text)
            minimized = UnionQuery.of(
                minimize_ucq_in_dnf(list(disjuncts_of(union)))
            )
            assert brute.probability(minimized, db) == pytest.approx(
                brute.probability(union, db), abs=1e-9
            ), text

    def test_unsatisfiable_union_minimizes_to_nothing(self):
        union = parse("R(x,x), x < x | S(y), y != y")
        assert minimize_ucq_in_dnf(list(union.disjuncts)) == []

    def test_cnf_clauses_multiply_out_the_components(self):
        # Both disjuncts split into two components, giving four clauses.
        union = parse("R(x), S(y) | T(u), U(v)")
        clauses = ucq_cnf(union)
        assert len(clauses) == 4

    def test_cnf_equivalence_by_brute_force(self):
        db = small_db()
        union = parse("R(x,x), S(y) | T(u)")
        reference = brute.probability(union, db)
        for clauses in (ucq_cnf(union), minimize_ucq_in_cnf(ucq_cnf(union))):
            assert clauses
            # Each clause is implied by the union...
            for clause in clauses:
                assert brute.probability(clause, db) >= reference - 1e-9
            # ...and their conjunction holds in exactly the same worlds.
            total = sum(
                weight
                for world, weight in iterate_worlds(db)
                if all(
                    query_holds(clause, world_database(db, world))
                    for clause in clauses
                )
            )
            assert total == pytest.approx(reference, abs=1e-9)

    def test_cnf_minimization_drops_implied_clauses(self):
        # T(u) appears in every clause of the distributed CNF of
        # R(x), S(y) | T(u); the clause set minimizes by containment.
        union = parse("R(x,x), S(y) | T(u)")
        assert len(minimize_ucq_in_cnf(ucq_cnf(union))) <= len(
            ucq_cnf(union)
        )

    def test_shattering_preserves_probability(self):
        db = small_db()
        union = parse("R(x,1) | R(x,2)")
        shattered = UnionQuery.of(shatter_constants(union))
        assert brute.probability(shattered, db) == pytest.approx(
            brute.probability(union, db), abs=1e-9
        )

    def test_shattering_splits_self_joined_constant_positions(self):
        # R(x,1), R(x,y): position 2 of R holds the constant 1 in one
        # occurrence and the variable y in the other, so y splits into
        # y = 1 and y != 1.
        query = parse("R(x,1), R(x,y)")
        shattered = shatter_constants(query)
        assert len(shattered) == 2
        assert union_equivalent(UnionQuery.of(shattered), query)


class TestEngineParity:
    @pytest.mark.parametrize("text", SAFE_UCQS)
    def test_safe_ucqs_agree_across_exact_engines(self, text):
        db = small_db()
        query = parse(text)
        reference = brute.probability(query, db)
        assert lifted.probability(query, db) == pytest.approx(
            reference, abs=1e-9
        )
        assert compiled.probability(query, db) == pytest.approx(
            reference, abs=1e-9
        )
        assert lineage.probability(query, db) == pytest.approx(
            reference, abs=1e-9
        )

    @pytest.mark.parametrize("text", SAFE_UCQS)
    def test_router_admits_safe_ucqs_to_the_lifted_tier(self, text):
        db = small_db()
        router = RouterEngine()
        value = router.probability(parse(text), db)
        decision = router.history[-1]
        assert decision.engine == "lifted"
        assert decision.fallback_reason == ""
        assert value == pytest.approx(
            brute.probability(parse(text), db), abs=1e-9
        )

    @pytest.mark.parametrize("text", SAFE_UCQS)
    def test_monte_carlo_agrees_statistically(self, text):
        db = small_db()
        query = parse(text)
        estimate = MonteCarloEngine(samples=4000, seed=7).probability(
            query, db
        )
        assert estimate == pytest.approx(
            brute.probability(query, db), abs=0.06
        )

    def test_unsafe_ucq_still_evaluates_exactly(self):
        db = binary_db()
        query = parse(UNSAFE_UCQ)
        # S12 & (R1 | T2) = 0.4 * (1 - 0.5 * 0.2)
        assert brute.probability(query, db) == pytest.approx(0.36, abs=1e-9)
        assert compiled.probability(query, db) == pytest.approx(
            0.36, abs=1e-9
        )
        assert lineage.probability(query, db) == pytest.approx(0.36, abs=1e-9)

    def test_random_ucqs_brute_vs_lineage(self):
        schema = {"R": 2, "S": 1, "T": 1}
        texts = [
            "R(x,y), S(y) | T(z)",
            "R(x,x) | S(x), T(x)",
            "R(x,y), R(y,z) | R(u,u)",
            "S(x), x != 1 | T(y), R(y,y)",
        ]
        for seed, text in enumerate(texts):
            db = random_database(schema, 3, density=0.6, seed=seed)
            query = parse(text)
            assert lineage.probability(query, db) == pytest.approx(
                brute.probability(query, db), abs=1e-9
            ), text

    def test_answer_union_parity(self):
        db = small_db()
        query = parse("Q(x) :- R(x,y), x < y; Q(z) :- S(z)")
        reference = {a: p for a, p in brute.answers(query, db)}
        for engine in (lifted, lineage, RouterEngine()):
            results = {a: p for a, p in engine.answers(query, db)}
            assert set(results) == set(reference)
            for answer, value in results.items():
                assert value == pytest.approx(reference[answer], abs=1e-9)

    def test_router_answers_union_uses_the_lifted_tier(self):
        router = RouterEngine()
        router.answers(parse("Q(x) :- R(x,y), x < y; Q(z) :- S(z)"),
                       small_db())
        assert router.history[-1].engine == "lifted"


class TestUnsafeRouting:
    def test_unsafe_union_falls_through_to_compiled(self):
        db = binary_db()
        router = RouterEngine()
        value = router.probability(parse(UNSAFE_UCQ), db)
        decision = router.history[-1]
        assert decision.engine == "compiled"
        assert "union of 2 CQs with no safe decomposition" in (
            decision.fallback_reason
        )
        assert "#P-hard" in decision.fallback_reason
        assert value == pytest.approx(0.36, abs=1e-9)

    def test_plan_query_reports_unsafe_unions(self):
        assert RouterEngine().plan_query(parse(UNSAFE_UCQ)) == "unsafe"

    @pytest.mark.parametrize("text", SAFE_UCQS)
    def test_plan_query_reports_lifted_for_safe_unions(self, text):
        assert RouterEngine().plan_query(parse(text)) == "lifted"

    def test_classifier_flags_safe_unions_ptime(self):
        report = classify(parse("S(x) | T(x)"))
        assert report.verdict is Verdict.PTIME
        assert report.reason is Reason.UCQ_SAFE

    def test_classifier_flags_unsafe_unions_sharp_p_hard(self):
        report = classify(parse(UNSAFE_UCQ))
        assert report.verdict is Verdict.SHARP_P_HARD
        assert report.reason is Reason.UCQ_UNSAFE
        assert report.stuck_on

    def test_classifier_collapses_redundant_unions(self):
        # The union minimizes to the single CQ S(u), which is safe and
        # classified through the plain-CQ path.
        report = classify(parse("S(x), T(y) | S(u)"))
        assert report.verdict is Verdict.PTIME
        assert report.reason is not Reason.UCQ_UNSAFE


class TestPreciseErrors:
    def test_safe_plan_names_the_union(self):
        message = SafePlanEngine().supports(parse("R(x) | S(x)"))
        assert message is not None
        assert "union of 2 conjunctive queries" in message

    def test_safe_plan_names_the_self_joined_relation(self):
        message = SafePlanEngine().supports(parse("R(x,y), R(y,z)"))
        assert message is not None
        assert "self-join: relation R occurs in 2 sub-goals" in message

    def test_safe_plan_prepare_raises_with_the_reason(self):
        with pytest.raises(UnsupportedQueryError, match="union of 2"):
            SafePlanEngine().prepare(parse("R(x) | S(x)"))

    def test_lifted_prepare_rejects_unsafe_unions(self):
        with pytest.raises(UnsafeQueryError):
            lifted.prepare(parse(UNSAFE_UCQ))

    def test_lifted_prepare_accepts_safe_self_join_unions(self):
        lifted.prepare(parse("R(x,x) | R(x,y), x < y"))


class TestServingUnions:
    def test_prepared_cache_hits_on_renamed_union(self):
        session = QuerySession(small_db())
        first = session.evaluate("S(x) | T(x)")
        assert session.stats.prepare_hits == 0
        second = session.evaluate("S(a) | T(b)")
        assert session.stats.prepare_hits == 1
        assert session.stats.result_hits == 1
        assert second == pytest.approx(first, abs=1e-12)

    def test_result_cache_hits_on_reordered_rules(self):
        session = QuerySession(small_db())
        first = session.answers("Q(x) :- R(x,y), x < y; Q(z) :- S(z)")
        second = session.answers("Q(z) :- S(z); Q(x) :- R(x,y), x < y")
        assert session.stats.result_hits >= 1
        assert first == second

    def test_update_invalidates_union_results(self):
        db = small_db()
        session = QuerySession(db)
        session.evaluate("S(x) | T(x)")
        session.update("S", (1,), 0.9)
        value = session.evaluate("S(x) | T(x)")
        assert value == pytest.approx(
            brute.probability(parse("S(x) | T(x)"), db), abs=1e-9
        )

    def test_unsafe_union_serves_through_the_fallback_tiers(self):
        session = QuerySession(binary_db(), exact_fallback=True)
        assert session.evaluate(UNSAFE_UCQ) == pytest.approx(0.36, abs=1e-9)
