"""Tests for repro.core.query, substitution, and the parser."""

import pytest

from repro.core.atoms import atom
from repro.core.parser import QueryParseError, parse
from repro.core.predicates import comparison
from repro.core.query import ConjunctiveQuery, canonical_string, query
from repro.core.substitution import IDENTITY, Substitution, fresh_renaming
from repro.core.terms import Constant, Variable


class TestSubstitution:
    def test_apply(self):
        s = Substitution.of(x=Constant(1))
        assert s.apply(Variable("x")) == Constant(1)
        assert s.apply(Variable("y")) == Variable("y")
        assert s.apply(Constant(9)) == Constant(9)

    def test_compose(self):
        s1 = Substitution.of(x="y")
        s2 = Substitution.of(y=Constant(3))
        composed = s1.compose(s2)
        assert composed.apply(Variable("x")) == Constant(3)
        assert composed.apply(Variable("y")) == Constant(3)

    def test_one_to_one(self):
        assert Substitution.of(x="u", y="v").is_one_to_one()
        assert not Substitution.of(x="u", y="u").is_one_to_one()
        assert not Substitution.of(x=Constant(1)).is_one_to_one()

    def test_identity_is_empty(self):
        assert not IDENTITY
        assert len(IDENTITY) == 0

    def test_bind_and_restrict(self):
        s = IDENTITY.bind(Variable("x"), Constant(1))
        assert Variable("x") in s
        r = s.restrict([Variable("y")])
        assert Variable("x") not in r

    def test_fresh_renaming_avoids_collisions(self):
        renaming = fresh_renaming(
            [Variable("x"), Variable("y")], [Variable("x")]
        )
        image = renaming.apply(Variable("x"))
        assert image != Variable("x")
        assert renaming.apply(Variable("y")) == Variable("y")

    def test_rejects_non_variable_keys(self):
        with pytest.raises(TypeError):
            Substitution({Constant(1): Variable("x")})


class TestParser:
    def test_basic(self):
        q = parse("R(x), S(x,y)")
        assert len(q.atoms) == 2
        assert q.relations == ("R", "S")

    def test_predicates(self):
        q = parse("R(x,y), x < y, x != 3")
        assert len(q.predicates) == 2

    def test_negation(self):
        q = parse("R(x), not S(x)")
        assert len(q.negative_atoms) == 1

    def test_constants_parameter(self):
        q = parse("R(a,x)", constants=("a",))
        assert Constant("a") in q.constants

    def test_quoted_and_numeric_constants(self):
        q = parse("R('lit', 42, x)")
        assert Constant("lit") in q.constants
        assert Constant(42) in q.constants

    def test_parse_errors(self):
        with pytest.raises(QueryParseError):
            parse("R(x")
        with pytest.raises(QueryParseError):
            parse("R()")
        with pytest.raises(QueryParseError):
            parse("x y z")


class TestConjunctiveQuery:
    def test_dedup_atoms(self):
        q = ConjunctiveQuery([atom("R", "x"), atom("R", "x")])
        assert len(q.atoms) == 1

    def test_equality_is_set_like(self):
        q1 = parse("R(x), S(x,y)")
        q2 = parse("S(x,y), R(x)")
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_variables_and_constants(self):
        q = parse("R(x, 1), S(x, y), x < z, T(z)")
        assert set(q.variables) == {Variable("x"), Variable("y"), Variable("z")}
        assert q.constants == (Constant(1),)

    def test_has_self_join(self):
        assert parse("R(x,y), R(y,z)").has_self_join()
        assert not parse("R(x), S(x,y)").has_self_join()

    def test_range_restricted(self):
        assert parse("R(x), S(x,y)").is_range_restricted()
        assert not parse("not R(x)").is_range_restricted()

    def test_substitute(self):
        q = parse("R(x), S(x,y)").substitute(Variable("x"), Constant(1))
        assert Variable("x") not in q.variables
        assert Constant(1) in q.constants

    def test_connected_components(self):
        q = parse("R(x,y), S(y), T(u,v), U(1,2)")
        components = q.connected_components()
        assert len(components) == 3
        sizes = sorted(len(c.atoms) for c in components)
        assert sizes == [1, 1, 2]

    def test_component_predicates_follow_variables(self):
        q = parse("R(x,y), T(u), x < y, u < 3")
        components = q.connected_components()
        by_rel = {c.relations[0]: c for c in components}
        assert comparison("x", "<", "y") in by_rel["R"].predicates
        assert comparison("u", "<", 3) in by_rel["T"].predicates
        assert comparison("x", "<", "y") not in by_rel["T"].predicates

    def test_ground_subgoals_are_separate_components(self):
        q = parse("R(1), R(2), S(x)")
        assert len(q.connected_components()) == 3

    def test_conjoin_and_rename_apart(self):
        q1 = parse("R(x)")
        q2 = parse("S(x)")
        renamed, renaming = q2.rename_apart(q1.variables)
        assert set(q1.variables).isdisjoint(renamed.variables)
        joint = q1.conjoin(renamed)
        assert len(joint.atoms) == 2

    def test_positive_part(self):
        q = parse("R(x), not S(x)")
        assert not q.positive_part().negative_atoms

    def test_drop_trivial_predicates(self):
        q = parse("R(x), 1 < 2")
        assert not q.drop_trivial_predicates().predicates
        q2 = parse("R(x), x < 2")
        assert q2.drop_trivial_predicates().predicates

    def test_subgoal_map(self):
        q = parse("R(x), S(x,y)")
        x, y = Variable("x"), Variable("y")
        assert q.subgoal_map[x] == frozenset({0, 1})
        assert q.subgoal_map[y] == frozenset({1})

    def test_max_variables_per_subgoal(self):
        assert parse("R(x), S(x,y,z)").max_variables_per_subgoal() == 3

    def test_query_builder(self):
        q = query(atom("R", "x"), comparison("x", "<", 2))
        assert len(q.atoms) == 1 and len(q.predicates) == 1
        with pytest.raises(TypeError):
            query("not a part")

    def test_canonical_string_renaming_invariant(self):
        q1 = parse("R(foo), S(foo, bar)")
        q2 = parse("R(alpha), S(alpha, beta)")
        assert canonical_string(q1) == canonical_string(q2)

    def test_canonical_string_distinguishes(self):
        assert canonical_string(parse("R(x,y), R(y,x)")) != canonical_string(
            parse("R(x,y), R(x,z)")
        )
