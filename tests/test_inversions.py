"""Tests for inversion detection and the unification graph (Sec. 2.2)."""

import pytest

from repro.core import parse, minimize
from repro.analysis.inversions import (
    analyze_inversions,
    find_inversion,
    has_inversion,
    unification_graph,
)
from repro.coverage import build_strict_coverage, trivial_coverage
from repro.hardness import hk_query


class TestUnificationGraph:
    def test_h0_edge_exists(self):
        coverage = trivial_coverage(parse("R(x), S(x,y), S(xp,yp), T(yp)"))
        graph = unification_graph(coverage)
        edges = sum(len(v) for v in graph.values()) // 2
        assert edges >= 1

    def test_no_selfjoin_no_cross_edges(self):
        coverage = trivial_coverage(parse("R(x), S(x,y)"))
        graph = unification_graph(coverage)
        # Only identity self-unification edges (loops on own pairs).
        for node, neighbours in graph.items():
            assert neighbours <= {node}


class TestFindInversion:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("R(x), S(x,y)", False),
            ("R(x), S(x,y), S(xp,yp), T(yp)", True),   # H0
            ("R(x), S(x,y), S(xp,yp), T(xp)", False),
            ("P(x), R(x,y), R(xp,yp), S(xp)", False),  # Example 2.14
            ("R(x,y), R(y,x)", False),                 # Example 3.5
            ("R(x,y), R(y,z)", True),                  # q_2path
            ("R(x), S(x,y), S(y,x)", True),            # marked ring
            ("R(x,y,y,x), R(x,y,x,z)", False),         # footnote 1
        ],
    )
    def test_paper_queries(self, text, expected):
        assert has_inversion(minimize(parse(text))) is expected

    def test_hk_inversion_length_grows(self):
        _, inv1 = analyze_inversions(minimize(hk_query(1)))
        _, inv2 = analyze_inversions(minimize(hk_query(2)))
        assert inv1 is not None and inv2 is not None
        assert inv2.length >= inv1.length
        assert len(inv2.path) > len(inv1.path)

    def test_inversion_endpoints_orientation(self):
        from repro.core.hierarchy import strictly_below

        coverage, inversion = analyze_inversions(
            minimize(parse("R(x), S(x,y), S(xp,yp), T(yp)"))
        )
        assert inversion is not None
        first_factor, x, y = inversion.path[0]
        last_factor, xp, yp = inversion.path[-1]
        assert strictly_below(coverage.factors[first_factor], y, x)  # x ⊐ y
        assert strictly_below(coverage.factors[last_factor], xp, yp)  # x' ⊏ y'

    def test_describe(self):
        _, inversion = analyze_inversions(
            minimize(parse("R(x), S(x,y), S(xp,yp), T(yp)"))
        )
        assert "->" in inversion.describe()


class TestFigureOne:
    """Figure 1: spurious inversions removed by coverage hygiene."""

    def test_row1_strictness_interrupts_inversion(self):
        q = minimize(parse(
            "R(x), S1(x,y,y), S1(u,v,w), S2(u,v,w), S2(xp,xp,yp), T(yp)"
        ))
        assert not has_inversion(q)

    def test_row2_minimization_removes_inversion(self):
        q = minimize(parse(
            "R(x1,x2), S(x1,x2,y,y), S(x1,x1,x2,x2), S(xp,xp,yp,yp), T(yp)"
        ))
        assert not has_inversion(q)

    def test_row3_redundant_cover_removed(self):
        q = minimize(parse(
            "R(x1,x2), S(x1,x2,y,y), S(x1,x2,x1,x2), S(xp,xp,y1p,y2p), "
            "T(y1p,y2p)"
        ))
        assert not has_inversion(q)
