"""Scatter-vs-inline parity for `ServerPool.estimate_lineages`.

The contract under test: a Monte Carlo lineage batch returns the SAME
``(estimate, half_width)`` tuples — exact equality, not statistical —
no matter where it runs (``workers=0`` inline, shared-memory scatter,
pickle-fallback scatter, adaptive front-inline) because every path
seeds a per-lineage sampler identically.  Around that core: the flat-
buffer round trip, the worker-side structural cache (including the
reweight-after-update and miss-retry protocols), the adaptive policy's
decisions, and the inline mode's lock discipline.
"""

import threading

import numpy as np
import pytest

from repro.core import parse
from repro.db import ProbabilisticDatabase
from repro.engines.montecarlo import MonteCarloEngine
from repro.lineage.grounding import ground_lineage
from repro.lineage.packed import PackedLineage
from repro.obs.metrics import MetricsRegistry
from repro.serve import ScatterCache, ServerPool, SessionConfig
from repro.serve.transfer import pack_arrays, release_segment, unpack_arrays

CONFIG = SessionConfig(mc_samples=2_000, mc_seed=1234)


def scatter_db(n=10):
    return ProbabilisticDatabase.from_dict({
        "R": {(i,): 0.2 + 0.05 * (i % 10) for i in range(n)},
        "S": {
            (i, j): 0.1 + 0.03 * ((i + j) % 20)
            for i in range(n) for j in range(4)
        },
        "T": {(j,): 0.3 + 0.1 * (j % 5) for j in range(4)},
    })


def scatter_lineages(db, n=5):
    """n structurally distinct unsafe lineages over ``db``."""
    texts = ["R(x), S(x,y)", "R(x), S(x,y), T(y)", "S(x,y), T(y)"]
    return {
        f"q{i}": ground_lineage(parse(texts[i % len(texts)]), db)
        for i in range(n)
    }


# ----------------------------------------------------------------------
# Flat-buffer round trip
# ----------------------------------------------------------------------


class TestBuffers:
    def test_round_trip_preserves_structure_and_estimates(self):
        db = scatter_db()
        lineage = ground_lineage(parse("R(x), S(x,y)"), db)
        packed = PackedLineage.of(lineage)
        clone = PackedLineage.from_buffers(packed.to_buffers())
        assert clone.n_events == packed.n_events
        assert clone.n_clauses == packed.n_clauses
        assert np.array_equal(clone.clause_starts, packed.clause_starts)
        assert np.array_equal(clone.weights, packed.weights)
        assert clone.total == packed.total
        engine = MonteCarloEngine(samples=2_000, seed=7)
        assert engine.estimate_packed(clone) == engine.estimate_packed(packed)
        assert engine.estimate_packed(clone) == engine.estimate_lineage(
            lineage
        )

    def test_from_buffers_copies(self):
        db = scatter_db()
        packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        buffers = packed.to_buffers()
        clone = PackedLineage.from_buffers(buffers)
        buffers["weights"][:] = 0.0
        assert clone.weights.sum() > 0.0

    def test_hashes(self):
        db = scatter_db()
        lineage = ground_lineage(parse("R(x), S(x,y)"), db)
        packed = PackedLineage.of(lineage)
        clone = PackedLineage.from_buffers(packed.to_buffers())
        assert clone.shape_hash() == packed.shape_hash()
        assert clone.weight_hash() == packed.weight_hash()
        other = PackedLineage.of(ground_lineage(parse("S(x,y), T(y)"), db))
        assert other.shape_hash() != packed.shape_hash()
        clone.reweight(packed.weights * 0.5)
        assert clone.shape_hash() == packed.shape_hash()
        assert clone.weight_hash() != packed.weight_hash()

    def test_reweight_matches_fresh_pack(self):
        db = scatter_db()
        lineage = ground_lineage(parse("R(x), S(x,y)"), db)
        packed = PackedLineage.of(lineage)
        clone = PackedLineage.from_buffers(packed.to_buffers())
        clone.reweight(packed.weights * 0.5)
        reference = PackedLineage.from_buffers(
            {**packed.to_buffers(), "weights": packed.weights * 0.5}
        )
        engine = MonteCarloEngine(samples=2_000, seed=7)
        assert engine.estimate_packed(clone) == engine.estimate_packed(
            reference
        )

    def test_reweight_rejects_wrong_shape(self):
        db = scatter_db()
        packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        with pytest.raises(ValueError):
            packed.reweight(np.zeros(packed.n_events + 1))


# ----------------------------------------------------------------------
# Transport and the worker-side cache
# ----------------------------------------------------------------------


class TestTransport:
    @pytest.mark.parametrize("transport", ["shm", "pickle", "auto"])
    def test_round_trip(self, transport):
        arrays = [
            np.arange(7, dtype=np.int32),
            np.array([0.25, 0.5], dtype=np.float64),
            np.ones((3, 2), dtype=np.uint8),
        ]
        payload, segment = pack_arrays(arrays, transport)
        try:
            out = unpack_arrays(payload)
        finally:
            release_segment(segment)
        assert len(out) == len(arrays)
        for sent, received in zip(arrays, out):
            assert received.dtype == sent.dtype
            assert np.array_equal(received, sent)

    def test_empty_message(self):
        payload, segment = pack_arrays([], "auto")
        assert segment is None
        assert unpack_arrays(payload) == []

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            pack_arrays([], "carrier-pigeon")


class TestScatterCache:
    def test_hit_and_weight_mismatch(self):
        db = scatter_db()
        packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        cache = ScatterCache(capacity=4)
        cache.put("shape", "w1", packed)
        assert cache.get("shape", "w1") is packed
        assert cache.get("shape", "w2") is None  # stale weights: a miss
        assert cache.get("other", "w1") is None

    def test_reweight_refresh(self):
        db = scatter_db()
        packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        cache = ScatterCache(capacity=4)
        cache.put("shape", "w1", packed)
        new_weights = packed.weights * 0.5
        refreshed = cache.get("shape", "w2", new_weights)
        assert refreshed is packed
        assert np.array_equal(refreshed.weights, new_weights)
        assert cache.get("shape", "w2") is packed  # hash updated in place

    def test_lru_eviction_and_zero_capacity(self):
        db = scatter_db()
        packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        cache = ScatterCache(capacity=1)
        cache.put("a", "w", packed)
        cache.put("b", "w", packed)
        assert cache.get("a", "w") is None
        assert cache.get("b", "w") is packed
        disabled = ScatterCache(capacity=0)
        disabled.put("a", "w", packed)
        assert len(disabled) == 0


# ----------------------------------------------------------------------
# Pool-level parity
# ----------------------------------------------------------------------


class TestPoolParity:
    @pytest.fixture(scope="class")
    def inline_results(self):
        db = scatter_db()
        lineages = scatter_lineages(db)
        with ServerPool(scatter_db(), workers=0, config=CONFIG) as pool:
            return lineages, pool.estimate_lineages(lineages)

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_scatter_matches_inline_exactly(self, inline_results, transport):
        lineages, expected = inline_results
        with ServerPool(
            scatter_db(), workers=2, config=CONFIG,
            scatter_policy="always", scatter_transport=transport,
        ) as pool:
            first = pool.estimate_lineages(lineages)
            second = pool.estimate_lineages(lineages)  # cached round
        assert first == expected
        assert second == expected

    def test_adaptive_inline_matches_workers0(self, inline_results):
        lineages, expected = inline_results
        with ServerPool(
            scatter_db(), workers=2, config=CONFIG,
            scatter_policy="adaptive",
        ) as pool:
            results = pool.estimate_lineages(lineages)
            decision = pool.last_scatter_decision
        assert results == expected
        assert decision["choice"] in ("inline", "scatter")

    def test_samples_override_parity(self, inline_results):
        lineages, _ = inline_results
        with ServerPool(scatter_db(), workers=0, config=CONFIG) as pool:
            expected = pool.estimate_lineages(lineages, samples=500)
        with ServerPool(
            scatter_db(), workers=2, config=CONFIG, scatter_policy="always",
        ) as pool:
            scattered = pool.estimate_lineages(lineages, samples=500)
        assert scattered == expected

    def test_trivial_lineages_short_circuit(self):
        db = scatter_db()
        base = ground_lineage(parse("R(x), S(x,y)"), db)
        certain = type(base)(
            base.clauses, dict(base.weights), certainly_true=True
        )
        impossible = type(base)(frozenset(), {})
        batch = {"sure": certain, "no": impossible, "mc": base}
        with ServerPool(scatter_db(), workers=0, config=CONFIG) as pool:
            expected = pool.estimate_lineages(batch)
        with ServerPool(
            scatter_db(), workers=1, config=CONFIG, scatter_policy="always",
        ) as pool:
            results = pool.estimate_lineages(batch)
        assert results == expected
        assert results["sure"] == (1.0, 0.0)
        assert results["no"] == (0.0, 0.0)


class TestWorkerCacheProtocol:
    def test_update_broadcast_reweights_not_stale(self):
        """After an update, cached structures must re-estimate with the
        NEW weights (shipped as a weights-only refresh), not replay the
        stale cached marginals."""
        db = scatter_db()
        with ServerPool(
            db, workers=1, config=CONFIG, scatter_policy="always",
        ) as pool:
            before = pool.estimate_lineages(
                {"q": ground_lineage(parse("R(x), S(x,y)"), pool.db)}
            )
            pool.update("R", (0,), 0.95)  # probability-only change
            lineage = ground_lineage(parse("R(x), S(x,y)"), pool.db)
            after = pool.estimate_lineages({"q": lineage})
            snapshot = pool.metrics_snapshot()
        engine = MonteCarloEngine(
            samples=CONFIG.mc_samples, seed=CONFIG.mc_seed
        )
        assert after["q"] == engine.estimate_lineage(lineage)
        assert after["q"] != before["q"]
        items = snapshot["repro_pool_scatter_items_total"]["values"]
        assert items.get(("weights",), 0) >= 1

    def test_cache_miss_retry_recovers(self):
        """A front whose cache model is stale (worker evicted) gets a
        miss reply and silently retries with full buffers."""
        config = SessionConfig(mc_samples=2_000, mc_seed=1234, scatter_cache=1)
        db = scatter_db()
        lineages = {
            "a": ground_lineage(parse("R(x), S(x,y)"), db),
            "b": ground_lineage(parse("S(x,y), T(y)"), db),
        }
        with ServerPool(scatter_db(), workers=0, config=config) as pool:
            expected = pool.estimate_lineages(lineages)
        with ServerPool(
            scatter_db(), workers=1, config=config, scatter_policy="always",
        ) as pool:
            first = pool.estimate_lineages(lineages)
            # The worker's capacity-1 LRU kept only one structure; the
            # front believes both are cached, so one ship must miss.
            second = pool.estimate_lineages(lineages)
            snapshot = pool.metrics_snapshot()
        assert first == expected
        assert second == expected
        items = snapshot["repro_pool_scatter_items_total"]["values"]
        assert items.get(("full",), 0) >= 3  # 2 initial + >=1 miss retry

    def test_shipped_paths_progress_full_to_cached(self):
        db = scatter_db()
        lineages = scatter_lineages(db, n=3)
        with ServerPool(
            scatter_db(), workers=1, config=CONFIG, scatter_policy="always",
        ) as pool:
            pool.estimate_lineages(lineages)
            pool.estimate_lineages(lineages)
            snapshot = pool.metrics_snapshot()
        items = snapshot["repro_pool_scatter_items_total"]["values"]
        assert items.get(("full",), 0) == 3
        assert items.get(("cached",), 0) == 3


class TestAdaptivePolicy:
    def test_choice_thresholds(self):
        db = scatter_db()
        packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        with ServerPool(db.copy(), workers=2, config=CONFIG) as pool:
            tiny = [("k", packed, 1_000)]
            choice, _est, _workers = pool._scatter_choice(tiny)
            assert choice == "inline"
            # Estimated compute far beyond any dispatch overhead (and
            # beyond the single-core front-hog bound): must scatter.
            huge = [("k", packed, 10**12)]
            choice, estimated, _workers = pool._scatter_choice(huge)
            assert choice == "scatter"
            assert estimated > 1.0

    def test_forced_policies(self):
        db = scatter_db()
        packed = PackedLineage.of(ground_lineage(parse("R(x), S(x,y)"), db))
        items = [("k", packed, 10**12)]
        with ServerPool(
            db.copy(), workers=2, config=CONFIG, scatter_policy="never",
        ) as pool:
            assert pool._scatter_choice(items)[0] == "inline"
        with ServerPool(
            db.copy(), workers=2, config=CONFIG, scatter_policy="always",
        ) as pool:
            assert pool._scatter_choice([("k", packed, 1)])[0] == "scatter"

    def test_rejects_unknown_policy_and_transport(self):
        db = scatter_db()
        with pytest.raises(ValueError):
            ServerPool(db, workers=0, scatter_policy="sometimes")
        with pytest.raises(ValueError):
            ServerPool(db, workers=0, scatter_transport="osmosis")

    def test_decision_recorded(self):
        db = scatter_db()
        lineages = scatter_lineages(db, n=2)
        with ServerPool(db.copy(), workers=2, config=CONFIG) as pool:
            pool.estimate_lineages(lineages)
            decision = pool.last_scatter_decision
        assert decision is not None
        assert decision["packed_items"] == 2
        assert decision["legacy_items"] == 0
        assert decision["estimated_seconds"] >= 0.0


class TestInlineMode:
    def test_estimation_does_not_hold_session_lock(self):
        """workers=0: a slow lineage batch must not block concurrent
        evaluate traffic (the engine is copied out, sampling runs
        outside the session lock)."""
        db = scatter_db()
        lineage = ground_lineage(parse("R(x), S(x,y)"), db)
        with ServerPool(db, workers=0, config=CONFIG) as pool:
            engine = pool._session.router.monte_carlo
            started, release = threading.Event(), threading.Event()

            def blocking_estimate(lineages, parallel_map=None):
                started.set()
                assert release.wait(10), "estimate never released"
                return {key: (0.5, 0.1) for key in lineages}

            engine.estimate_lineages = blocking_estimate
            worker = threading.Thread(
                target=pool.estimate_lineages, args=({"q": lineage},)
            )
            worker.start()
            try:
                assert started.wait(5), "estimate never started"
                # The batch is parked inside the (patched) estimator;
                # evaluate must still get the session lock and answer.
                assert 0.0 <= pool.evaluate("R(x), S(x,y)") <= 1.0
            finally:
                release.set()
                worker.join(10)
            assert not worker.is_alive()

    def test_samples_override_keeps_metrics_registry(self):
        """The satellite bug: a samples override used to rebuild the
        engine without its registry, losing sample metrics for exactly
        the overridden calls."""
        db = scatter_db()
        lineage = ground_lineage(parse("R(x), S(x,y)"), db)
        with ServerPool(db, workers=0, config=CONFIG) as pool:
            pool.estimate_lineages({"q": lineage}, samples=321)
            snapshot = pool.metrics_snapshot()
        series = snapshot["repro_mc_samples_total"]["values"]
        assert sum(series.values()) >= 321

    def test_reconfigured_preserves_everything(self):
        registry = MetricsRegistry()
        engine = MonteCarloEngine(
            samples=1_000, method="naive", seed=9, backend="numpy",
            metrics=registry,
        )
        clone = engine.reconfigured(samples=50)
        assert clone.samples == 50
        assert clone.method == "naive"
        assert clone.seed == 9
        assert clone.backend == "numpy"
        assert clone._registry is registry
        unchanged = engine.reconfigured()
        assert unchanged.samples == 1_000
