"""Tests for the Equation (3) safe-plan engine."""

import pytest

from repro.core import parse
from repro.db import ProbabilisticDatabase, random_database_for_query
from repro.engines import (
    BruteForceEngine,
    LineageEngine,
    SafePlanEngine,
    UnsupportedQueryError,
)

plan = SafePlanEngine()
brute = BruteForceEngine()
lineage = LineageEngine()


class TestPreconditions:
    def test_rejects_self_join(self):
        db = ProbabilisticDatabase()
        with pytest.raises(UnsupportedQueryError):
            plan.probability(parse("R(x,y), R(y,z)"), db)

    def test_rejects_non_hierarchical(self):
        db = ProbabilisticDatabase()
        with pytest.raises(UnsupportedQueryError):
            plan.probability(parse("R(x), S(x,y), T(y)"), db)


class TestEquationThree:
    def test_closed_form_qhier(self):
        # p(q) = 1 - Π_a (1 - p(R(a)) (1 - Π_b (1 - p(S(a,b)))))
        db = ProbabilisticDatabase.from_dict(
            {
                "R": {(1,): 0.5, (2,): 0.3},
                "S": {(1, 10): 0.4, (1, 11): 0.6, (2, 10): 0.9},
            }
        )
        q = parse("R(x), S(x,y)")
        expected = 1 - (1 - 0.5 * (1 - 0.6 * 0.4)) * (1 - 0.3 * 0.9)
        assert plan.probability(q, db) == pytest.approx(expected)

    def test_ground_query(self):
        db = ProbabilisticDatabase.from_dict({"R": {(1,): 0.5}, "S": {(2,): 0.4}})
        assert plan.probability(parse("R(1), S(2)"), db) == pytest.approx(0.2)
        assert plan.probability(parse("R(9)"), db) == 0.0

    def test_repeated_ground_atom_counts_once(self):
        db = ProbabilisticDatabase.from_dict({"R": {(1,): 0.5}})
        assert plan.probability(parse("R(1), R(1)"), db) == pytest.approx(0.5)

    def test_unsatisfiable_predicates(self):
        db = ProbabilisticDatabase.from_dict({"R": {(1, 2): 1.0}})
        assert plan.probability(parse("R(x,y), x < y, y < x"), db) == 0.0

    def test_independent_components_multiply(self):
        db = ProbabilisticDatabase.from_dict(
            {"R": {(1,): 0.5}, "T": {(7,): 0.25}}
        )
        assert plan.probability(parse("R(x), T(y)"), db) == pytest.approx(0.125)

    def test_negated_ground_subgoal(self):
        db = ProbabilisticDatabase.from_dict({"R": {(1,): 0.5}, "S": {(1,): 0.4}})
        assert plan.probability(parse("R(x), not S(1)"), db) == pytest.approx(
            0.5 * 0.6
        )

    def test_predicates_restrict_matches(self):
        db = ProbabilisticDatabase.from_dict(
            {"S": {(1, 10): 0.5, (1, 20): 0.5}}
        )
        q = parse("S(x, y), y < 15")
        assert plan.probability(q, db) == pytest.approx(0.5)


class TestAgreement:
    @pytest.mark.parametrize(
        "text",
        [
            "R(x), S(x,y)",
            "R(x), S(x,y), T(x,y,z)",
            "R(x,y), S(y)",
            "R(x), S(x,y), U(v)",
            "R(x), S(x,y), x < y",
        ],
    )
    def test_matches_oracles(self, text):
        q = parse(text)
        for seed in range(3):
            db = random_database_for_query(q, 3, density=0.5, seed=seed)
            p_plan = plan.probability(q, db)
            p_lineage = lineage.probability(q, db)
            assert p_plan == pytest.approx(p_lineage, abs=1e-10)

    def test_matches_bruteforce_small(self):
        q = parse("R(x), S(x,y)")
        db = random_database_for_query(q, 2, density=0.8, seed=1)
        assert plan.probability(q, db) == pytest.approx(
            brute.probability(q, db), abs=1e-10
        )
