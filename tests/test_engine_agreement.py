"""Integration: all exact engines agree on random instances.

The lineage-WMC oracle anchors everything; the brute-force engine
validates the oracle itself on tiny instances; safe-plan and lifted
must match wherever their preconditions hold.
"""

import pytest

from repro.core import parse
from repro.db import random_database_for_query
from repro.engines import (
    BruteForceEngine,
    CompiledEngine,
    LiftedEngine,
    LineageEngine,
    RouterEngine,
    SafePlanEngine,
)
from repro.lineage.grounding import ground_lineage
from repro.lineage.wmc import exact_probability
from repro.queries import zoo

brute = BruteForceEngine()
lineage = LineageEngine()
lifted = LiftedEngine()
plan = SafePlanEngine()

SAFE_NO_SELFJOIN = [
    "R(x), S(x,y)",
    "R(x,y), S(y)",
    "R(x), S(x,y), T(x,y,z)",
    "R(x), U(v), S(x, w)",
]
SAFE_SELFJOIN = [
    "R(x,y), R(y,x)",
    "P(x), R(x,y), R(xp,yp), S(xp)",
    "R(x), S(x,y), S(xp,yp), T(xp)",
    "R(x,y,y,x), R(x,y,x,z)",
]
UNSAFE = [
    "R(x), S(x,y), T(y)",
    "R(x,y), R(y,z)",
    "R(x), S(x,y), S(y,x)",
    "R(x), S(x,y), S(xp,yp), T(yp)",
]


@pytest.mark.parametrize("text", SAFE_NO_SELFJOIN)
def test_oracle_vs_bruteforce(text):
    q = parse(text)
    db = random_database_for_query(q, 2, density=0.7, seed=42)
    if db.tuple_count() > 18:
        pytest.skip("instance too large for world enumeration")
    assert lineage.probability(q, db) == pytest.approx(
        brute.probability(q, db), abs=1e-10
    )


@pytest.mark.parametrize("text", SAFE_NO_SELFJOIN)
@pytest.mark.parametrize("seed", range(3))
def test_plan_vs_oracle(text, seed):
    q = parse(text)
    db = random_database_for_query(q, 3, density=0.5, seed=seed)
    assert plan.probability(q, db) == pytest.approx(
        lineage.probability(q, db), abs=1e-9
    )


@pytest.mark.parametrize("text", SAFE_SELFJOIN)
@pytest.mark.parametrize("seed", range(3))
def test_lifted_vs_oracle(text, seed):
    q = parse(text)
    db = random_database_for_query(q, 3, density=0.5, seed=seed)
    assert lifted.probability(q, db) == pytest.approx(
        lineage.probability(q, db), abs=1e-9
    )


@pytest.mark.parametrize("text", UNSAFE)
def test_unsafe_oracle_vs_bruteforce(text):
    q = parse(text)
    db = random_database_for_query(q, 2, density=0.6, seed=3)
    if db.tuple_count() > 18:
        pytest.skip("instance too large for world enumeration")
    assert lineage.probability(q, db) == pytest.approx(
        brute.probability(q, db), abs=1e-10
    )


@pytest.mark.parametrize("text", SAFE_NO_SELFJOIN + SAFE_SELFJOIN + UNSAFE)
def test_router_always_close_to_oracle(text):
    q = parse(text)
    db = random_database_for_query(q, 3, density=0.5, seed=9)
    router = RouterEngine(mc_samples=40_000, mc_seed=5)
    p_router = router.probability(q, db)
    p_exact = lineage.probability(q, db)
    tolerance = 1e-9 if router.history[-1].safe else 0.05
    assert p_router == pytest.approx(p_exact, abs=tolerance)


# ----------------------------------------------------------------------
# CompiledEngine: both circuit backends must match the WMC oracle
# ----------------------------------------------------------------------

ALL_QUERIES = SAFE_NO_SELFJOIN + SAFE_SELFJOIN + UNSAFE


@pytest.mark.parametrize("mode", ["obdd", "dnnf"])
@pytest.mark.parametrize("text", ALL_QUERIES)
@pytest.mark.parametrize("seed", range(3))
def test_compiled_vs_oracle_random_sweep(mode, text, seed):
    """Property-style sweep: compiled circuits agree with the oracle."""
    q = parse(text)
    db = random_database_for_query(q, 3, density=0.5, seed=seed)
    engine = CompiledEngine(mode=mode)
    want = exact_probability(ground_lineage(q, db))
    assert engine.probability(q, db) == pytest.approx(want, abs=1e-9)


@pytest.mark.parametrize("mode", ["obdd", "dnnf"])
@pytest.mark.parametrize("entry", zoo(), ids=lambda entry: entry.name)
def test_compiled_vs_oracle_on_zoo(mode, entry):
    """Every zoo query: CompiledEngine matches the oracle to 1e-9.

    Grounding/compilation is cheap even for entries whose *analysis*
    is slow, so the whole zoo is covered, over several instances.
    """
    engine = CompiledEngine(mode=mode)
    for domain, density, seed in ((2, 0.8, 7), (3, 0.5, 11)):
        db = random_database_for_query(
            entry.query, domain, density=density, seed=seed
        )
        want = exact_probability(ground_lineage(entry.query, db))
        assert engine.probability(entry.query, db) == pytest.approx(
            want, abs=1e-9
        )


@pytest.mark.parametrize("ordering", ["lineage", "min-width", "hierarchy", "best"])
def test_compiled_obdd_orderings_agree(ordering):
    q = parse("R(x), S(x,y), T(y)")
    db = random_database_for_query(q, 4, density=0.5, seed=13)
    engine = CompiledEngine(mode="obdd", ordering=ordering)
    want = exact_probability(ground_lineage(q, db))
    assert engine.probability(q, db) == pytest.approx(want, abs=1e-9)


def test_compiled_engine_reuses_cached_circuit():
    q = parse("R(x), S(x,y), T(y)")
    db = random_database_for_query(q, 3, density=0.5, seed=4)
    engine = CompiledEngine()
    engine.probability(q, db)
    assert not engine.last_report.cached
    engine.probability(q, db)
    assert engine.last_report.cached
    assert engine.cache.hits == 1


def test_probabilities_in_unit_interval():
    for text in SAFE_NO_SELFJOIN + SAFE_SELFJOIN + UNSAFE:
        q = parse(text)
        db = random_database_for_query(q, 3, density=0.5, seed=1)
        p = lineage.probability(q, db)
        assert 0.0 <= p <= 1.0
