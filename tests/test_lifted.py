"""Tests for the lifted engine: safety decisions and exact values."""

import pytest

from repro.core import parse
from repro.db import ProbabilisticDatabase, random_database_for_query
from repro.engines import (
    LiftedEngine,
    LineageEngine,
    UnsafeQueryError,
    UnsupportedQueryError,
    is_safe_query,
    may_share_tuple,
    queries_independent,
)
from repro.core.atoms import atom
from repro.core.predicates import comparison

lifted = LiftedEngine()
lineage = LineageEngine()


class TestIndependencePrimitives:
    def test_may_share_plain(self):
        assert may_share_tuple(atom("R", "x", "y"), (), atom("R", "u", "v"), ())

    def test_constants_block_sharing(self):
        assert not may_share_tuple(atom("R", 1, "y"), (), atom("R", 2, "v"), ())

    def test_order_predicates_block_sharing(self):
        assert not may_share_tuple(
            atom("R", "x", "y"), (comparison("x", "<", "y"),),
            atom("R", "u", "v"), (comparison("v", "<", "u"),),
        )

    def test_different_relations_never_share(self):
        assert not may_share_tuple(atom("R", "x"), (), atom("S", "u"), ())

    def test_queries_independent_symbol_disjoint(self):
        assert queries_independent(parse("R(x)"), parse("S(y)"))

    def test_queries_dependent_same_symbol(self):
        assert not queries_independent(parse("R(x,y)"), parse("R(u,v)"))

    def test_order_split_queries_independent(self):
        q1 = parse("R(x,y), x < y")
        q2 = parse("R(u,v), v < u")
        assert queries_independent(q1, q2)


class TestSafetyDecision:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("R(x), S(x,y)", True),
            ("R(x), S(x,y), T(y)", False),
            ("R(x,y), R(y,x)", True),
            ("R(x), S(x,y), S(y,x)", False),
            ("R(x,y), R(y,z)", False),
            ("P(x), R(x,y), R(xp,yp), S(xp)", True),
            ("R(x), S(x,y), S(xp,yp), T(xp)", True),
            ("R(x), S(x,y), S(xp,yp), T(yp)", False),  # H0
            ("R(x,y,y,x), R(x,y,x,z)", True),
            ("R(x,y), S(x,y), S(xp,yp), T(yp)", True),  # Example 3.5 q1
        ],
    )
    def test_agrees_with_paper(self, text, expected):
        assert is_safe_query(parse(text)).safe is expected

    def test_unsafe_report_has_witness(self):
        report = is_safe_query(parse("R(x), S(x,y), T(y)"))
        assert not report.safe
        assert report.stuck_on

    def test_rejects_unrestricted(self):
        with pytest.raises(UnsupportedQueryError):
            is_safe_query(parse("not R(x)"))


class TestExactValues:
    def test_unsafe_raises(self):
        q = parse("R(x), S(x,y), T(y)")
        db = ProbabilisticDatabase.from_dict(
            {"R": {(1,): 0.5}, "S": {(1, 2): 0.5}, "T": {(2,): 0.5}}
        )
        with pytest.raises(UnsafeQueryError):
            lifted.probability(q, db)

    def test_symmetric_selfjoin_value(self):
        # R(x,y), R(y,x): handled through the ranking split.
        db = ProbabilisticDatabase.from_dict(
            {"R": {(1, 2): 0.5, (2, 1): 0.4, (3, 3): 0.9}}
        )
        q = parse("R(x,y), R(y,x)")
        expected = 1 - (1 - 0.5 * 0.4) * (1 - 0.9)
        assert lifted.probability(q, db) == pytest.approx(expected)

    def test_ground_with_predicates(self):
        db = ProbabilisticDatabase.from_dict({"R": {(1, 2): 0.5}})
        assert lifted.probability(parse("R(1,2), 1 < 2"), db) == pytest.approx(0.5)
        assert lifted.probability(parse("R(1,2), 2 < 1"), db) == 0.0

    @pytest.mark.parametrize(
        "text",
        [
            "R(x), S(x,y)",
            "R(x,y), R(y,x)",
            "P(x), R(x,y), R(xp,yp), S(xp)",
            "R(x), S(x,y), S(xp,yp), T(xp)",
            "R(x,y,y,x), R(x,y,x,z)",
            "R(x,y), S(x,y), S(xp,yp), T(yp)",
        ],
    )
    def test_matches_oracle_on_random_instances(self, text):
        q = parse(text)
        for seed in range(3):
            db = random_database_for_query(q, 3, density=0.55, seed=seed)
            assert lifted.probability(q, db) == pytest.approx(
                lineage.probability(q, db), abs=1e-9
            )

    def test_rule_counts_populated(self):
        report = is_safe_query(parse("R(x), S(x,y)"))
        assert report.rule_counts.get("separator", 0) >= 1
