"""The headline reproduction test: every paper query classifies as claimed.

Figures 1 and 2 plus every worked example form the paper's evaluation;
this module asserts our classifier and the lifted engine's safety
decision against the paper's claims (the disputed footnote entry is
checked for its *documented* behaviour instead).
"""

import pytest

from repro.analysis import Verdict
from repro.engines import is_safe_query
from repro.queries import fast_entries, get, zoo


FAST = [e for e in fast_entries() if not e.disputed]
SLOW = [e for e in zoo() if e.slow and not e.disputed]


@pytest.mark.parametrize("entry", FAST, ids=lambda e: e.name)
def test_fast_entries_match_paper(entry):
    result = entry.classify()
    assert result.is_safe == entry.claimed_ptime, (
        f"{entry.name} ({entry.source}): paper claims "
        f"{'PTIME' if entry.claimed_ptime else '#P-hard'}, classifier says "
        f"{result.verdict.value} [{result.reason.name}]"
    )


@pytest.mark.slow
@pytest.mark.parametrize("entry", SLOW, ids=lambda e: e.name)
def test_slow_entries_match_paper(entry):
    result = entry.classify()
    assert result.is_safe == entry.claimed_ptime


@pytest.mark.parametrize(
    "entry",
    [e for e in FAST if not e.query.has_self_join() or len(e.query.atoms) <= 4],
    ids=lambda e: e.name,
)
def test_lifted_engine_agrees(entry):
    """The lifted engine's safety decision matches the classifier."""
    report = is_safe_query(entry.query)
    assert report.safe == entry.claimed_ptime, (
        f"{entry.name}: lifted engine says safe={report.safe}, paper claims "
        f"{'PTIME' if entry.claimed_ptime else '#P-hard'}"
    )


def test_disputed_entry_documented():
    """The footnote-1 5-ary hard claim: our implementation of the
    paper's formal definitions finds a strict inversion-free coverage,
    so the classifier answers PTIME.  This test pins that documented
    behaviour (see EXPERIMENTS.md for the analysis)."""
    entry = get("footnote1_5ary_hard")
    assert entry.disputed
    result = entry.classify()
    assert result.verdict is Verdict.PTIME


def test_zoo_integrity():
    entries = zoo()
    assert len(entries) >= 20
    names = [e.name for e in entries]
    assert len(names) == len(set(names))
    for entry in entries:
        assert entry.query.atoms, entry.name
        assert entry.source, entry.name


def test_hk_family_in_zoo():
    assert not get("H0").claimed_ptime
    assert not get("H1").claimed_ptime
    assert not get("H2").claimed_ptime
