"""Cache correctness of the serving layer (`repro.serve`).

The invalidation matrix: for every query of the zoo and every kind of
database change — probability-only update, boundary overwrite,
structural insert, new relation — the session's warm path must agree
with a fresh router to 1e-9.  Plus the cache-behaviour contracts:
result hits on unchanged data, reweights (no recompilation) on
probability-only changes, regrounds on structural ones, and
cross-query batching of same-shape circuits.
"""

import json

import pytest

from repro.cli import main
from repro.core import parse
from repro.db import ProbabilisticDatabase, random_database_for_query
from repro.engines import RouterEngine
from repro.lineage.wmc import exact_probability
from repro.lineage.grounding import ground_lineage
from repro.serve import QuerySession

#: The query zoo for the matrix: every routing tier is represented
#: (hierarchical safe plans, safe self-joins, #P-hard residuals).
ZOO = [
    "R(x), S(x,y)",
    "R(x,y), S(y)",
    "R(x), S(x,y), T(x,y,z)",
    "R(x,y), R(y,x)",
    "P(x), R(x,y), R(xp,yp), S(xp)",
    "R(x), S(x,y), T(y)",
    "R(x,y), R(y,z)",
    "R(x), S(x,y), S(y,x)",
]

ANSWER_ZOO = [
    "Q(x) :- R(x), S(x,y)",
    "Q(x) :- R(x), S(x,y), T(y)",
    "Q(y) :- R(x), S(x,y), T(y)",
    "Q(x) :- R(x,y), R(y,z)",
    "Q(x,y) :- R(x,y), S(y)",
]


def fresh_probability(query, db):
    return RouterEngine(exact_fallback=True).probability(query, db)


def fresh_answers(query, db):
    return RouterEngine(exact_fallback=True).answers(query, db)


def interior_tuple(db, relations):
    """Some (relation, row) whose marginal is strictly inside (0, 1)."""
    for name in relations:
        for row, probability in db.relation(name).items():
            if 0 < probability < 1:
                return name, row
    raise AssertionError("no interior tuple in the instance")


def assert_same_ranking(got, want):
    assert len(got) == len(want)
    for (answer_g, value_g), (answer_w, value_w) in zip(got, want):
        assert answer_g == answer_w
        assert value_g == pytest.approx(value_w, abs=1e-9)


@pytest.mark.parametrize("text", ZOO)
def test_invalidation_matrix_boolean(text):
    query = parse(text)
    db = random_database_for_query(query, 3, density=0.6, seed=11)
    session = QuerySession(db, exact_fallback=True)

    # Cold path agrees with a fresh engine.
    assert session.evaluate(query) == pytest.approx(
        fresh_probability(query, db), abs=1e-9
    )

    # Unchanged database: pure result-cache hit.
    hits = session.stats.result_hits
    value = session.evaluate(query)
    assert session.stats.result_hits == hits + 1
    assert value == pytest.approx(fresh_probability(query, db), abs=1e-9)

    # Probability-only update: no re-grounding for unsafe tiers.
    name, row = interior_tuple(db, query.relations)
    regrounds = session.stats.regrounds
    session.update(name, row, 0.415)
    assert session.evaluate(query) == pytest.approx(
        fresh_probability(query, db), abs=1e-9
    )
    assert session.stats.regrounds == regrounds

    # Structural insert into a relation the query mentions.
    first = query.relations[0]
    arity = db.relation(first).arity
    db.add(first, tuple(900 + i for i in range(arity)), 0.5)
    assert session.evaluate(query) == pytest.approx(
        fresh_probability(query, db), abs=1e-9
    )

    # Boundary overwrite (interior -> certain) is structural.
    name, row = interior_tuple(db, query.relations)
    session.update(name, row, 1.0)
    assert session.evaluate(query) == pytest.approx(
        fresh_probability(query, db), abs=1e-9
    )

    # A new, unrelated relation does not invalidate anything.
    hits = session.stats.result_hits
    db.add("ZZZ_unrelated", (1,), 0.5)
    session.evaluate(query)
    assert session.stats.result_hits == hits + 1


@pytest.mark.parametrize("text", ANSWER_ZOO)
def test_invalidation_matrix_answers(text):
    query = parse(text)
    db = random_database_for_query(query, 3, density=0.6, seed=23)
    session = QuerySession(db, exact_fallback=True)

    assert_same_ranking(session.answers(query), fresh_answers(query, db))

    hits = session.stats.result_hits
    assert_same_ranking(session.answers(query), fresh_answers(query, db))
    assert session.stats.result_hits == hits + 1

    # Interleaved: re-weight, evaluate, insert, evaluate, re-weight...
    name, row = interior_tuple(db, query.relations)
    session.update(name, row, 0.515)
    assert_same_ranking(session.answers(query), fresh_answers(query, db))

    first = query.relations[0]
    arity = db.relation(first).arity
    db.add(first, tuple(800 + i for i in range(arity)), 0.45)
    assert_same_ranking(session.answers(query), fresh_answers(query, db))

    name, row = interior_tuple(db, query.relations)
    session.update(name, row, 0.0)  # boundary: kills matches, structural
    assert_same_ranking(session.answers(query), fresh_answers(query, db))


def test_probability_update_keeps_the_circuit():
    query = parse("R(x), S(x,y), T(y)")  # unsafe: compiled tier
    db = random_database_for_query(query, 4, density=0.7, seed=5)
    session = QuerySession(db, exact_fallback=True)
    session.evaluate(query)
    assert session.stats.regrounds == 1
    cache = session.router.compiled.cache
    misses = cache.misses
    name, row = interior_tuple(db, query.relations)
    for probability in (0.11, 0.52, 0.93 - 1e-9):
        session.update(name, row, probability)
        assert session.evaluate(query) == pytest.approx(
            fresh_probability(query, db), abs=1e-9
        )
    assert session.stats.regrounds == 1  # never re-grounded
    assert session.stats.reweights == 3
    assert cache.misses == misses  # and never recompiled


def test_structural_insert_triggers_reground():
    query = parse("R(x), S(x,y), T(y)")
    db = random_database_for_query(query, 4, density=0.7, seed=6)
    session = QuerySession(db, exact_fallback=True)
    session.evaluate(query)
    db.add("R", (901,), 0.5)
    session.evaluate(query)
    assert session.stats.regrounds == 2


def _mirror_db():
    """Disjoint relation pairs (R/S/T vs R2/S2/T2) with isomorphic
    instances, so the two non-hierarchical queries below share one
    canonical circuit."""
    mirror = {}
    for prefix, offset in (("", 0.0), ("2", 0.02)):
        mirror["R" + prefix] = {(i,): 0.3 + offset for i in range(4)}
        mirror["S" + prefix] = {
            (i, j): 0.5 + offset for i in range(4) for j in range(2)
        }
        mirror["T" + prefix] = {(j,): 0.7 + offset for j in range(2)}
    return ProbabilisticDatabase.from_dict(mirror)


def test_same_shape_queries_share_one_batched_sweep():
    # Two queries over disjoint relations with isomorphic lineages:
    # they canonicalize onto one circuit and evaluate as one matrix.
    db = _mirror_db()
    session = QuerySession(db, exact_fallback=True)
    queries = [parse("R(x), S(x,y), T(y)"), parse("R2(x), S2(x,y), T2(y)")]
    values = session.evaluate_many(queries)
    assert session.stats.batched_sweeps == 1
    assert session.stats.batched_rows == 2
    for query, value in zip(queries, values):
        assert value == pytest.approx(fresh_probability(query, db), abs=1e-9)


def test_isomorphic_queries_share_a_prepared_entry():
    query = parse("R(x), S(x,y)")
    db = random_database_for_query(query, 3, density=0.6, seed=2)
    session = QuerySession(db, exact_fallback=True)
    session.evaluate("R(x), S(x,y)")
    session.evaluate("R(a), S(a,b)")  # renaming of the same query
    assert session.stats.prepared == 1
    assert session.stats.prepare_hits >= 1


def test_prepared_cache_is_an_lru():
    db = ProbabilisticDatabase.from_dict({
        "R": {(1,): 0.5}, "S": {(1, 2): 0.5}, "T": {(2,): 0.5},
    })
    session = QuerySession(db, max_prepared=2, exact_fallback=True)
    for text in ("R(x)", "S(x,y)", "T(x)"):
        session.evaluate(text)
    assert len(session._prepared) == 2
    assert session.evaluate("R(x)") == pytest.approx(0.5)  # re-prepared


def test_answers_k_truncates_the_cached_ranking():
    query = parse("Q(x) :- R(x), S(x,y)")
    db = random_database_for_query(query, 4, density=0.8, seed=9)
    session = QuerySession(db, exact_fallback=True)
    full = session.answers(query)
    hits = session.stats.result_hits
    top2 = session.answers(query, k=2)
    assert session.stats.result_hits == hits + 1  # k served from cache
    assert top2 == full[:2]
    reference = RouterEngine(exact_fallback=True).answers(query, db, k=2)
    assert_same_ranking(top2, reference)


def test_caller_mutation_cannot_poison_the_answers_cache():
    query = parse("Q(x) :- R(x), S(x,y)")
    db = random_database_for_query(query, 4, density=0.8, seed=9)
    session = QuerySession(db, exact_fallback=True)
    first = session.answers(query)
    first.reverse()  # caller abuse must not reach the cache
    second = session.answers(query)
    assert second is not first
    assert_same_ranking(second, fresh_answers(query, db))


def test_boolean_query_through_answers_api():
    query = parse("R(x), S(x,y)")
    db = random_database_for_query(query, 3, density=0.7, seed=4)
    session = QuerySession(db, exact_fallback=True)
    [ranked] = session.answers_many([query])
    assert ranked == [((), pytest.approx(session.evaluate(query)))]


def test_answers_many_batches_its_boolean_members():
    db = _mirror_db()
    session = QuerySession(db, exact_fallback=True)
    queries = [parse("R(x), S(x,y), T(y)"), parse("R2(x), S2(x,y), T2(y)")]
    rankings = session.answers_many(queries)
    assert session.stats.batched_sweeps == 1  # one sweep, two rows
    assert session.stats.batched_rows == 2
    for query, ranked in zip(queries, rankings):
        assert ranked == [((), pytest.approx(
            fresh_probability(query, db), abs=1e-9
        ))]


def test_mc_fallback_refreshes_on_update():
    query = parse("R(x), S(x,y), T(y)")
    db = random_database_for_query(query, 5, density=0.7, seed=7)
    # compile_budget=0: every compilation fails fast, forcing the
    # Monte Carlo tier through the session's cached-lineage path.
    session = QuerySession(
        db, compile_budget=0, mc_samples=30_000, mc_seed=123
    )
    exact = exact_probability(ground_lineage(query, db))
    first = session.evaluate(query)
    assert 0.0 <= first <= 1.0
    assert first == pytest.approx(exact, abs=0.05)
    assert session.stats.fallbacks == 1
    name, row = interior_tuple(db, query.relations)
    session.update(name, row, 0.35)
    regrounds = session.stats.regrounds
    second = session.evaluate(query)
    assert session.stats.regrounds == regrounds  # lineage reused
    assert second == pytest.approx(
        exact_probability(ground_lineage(query, db)), abs=0.05
    )


def test_session_uses_injected_router():
    query = parse("R(x), S(x,y)")
    db = random_database_for_query(query, 3, density=0.7, seed=3)
    router = RouterEngine(exact_fallback=True, compile_budget=5_000)
    session = QuerySession(db, router)
    assert session.router is router
    assert session.evaluate(query) == pytest.approx(
        fresh_probability(query, db), abs=1e-9
    )


def test_session_rejects_router_plus_router_config():
    db = ProbabilisticDatabase.from_dict({"R": {(1,): 0.5}})
    router = RouterEngine()
    with pytest.raises(ValueError, match="exact_fallback"):
        QuerySession(db, router, exact_fallback=True)


def test_update_rejects_out_of_range_probability():
    db = ProbabilisticDatabase.from_dict({"R": {(1,): 0.5}})
    session = QuerySession(db)
    with pytest.raises(ValueError):
        session.update("R", (1,), 1.5)


def test_serve_cli_replays_a_workload(tmp_path, capsys):
    database = tmp_path / "db.json"
    database.write_text(json.dumps({
        "R": [[[1], 0.5], [[2], 0.6]],
        "S": [[[1, 10], 0.7], [[2, 10], 0.4]],
        "T": [[[10], 0.8]],
    }))
    requests = tmp_path / "requests.json"
    requests.write_text(json.dumps([
        {"op": "evaluate", "query": "R(x), S(x,y), T(y)"},
        {"op": "update", "relation": "R", "row": [1], "probability": 0.9},
        {"op": "evaluate", "query": "R(x), S(x,y), T(y)"},
        {"op": "answers", "query": "Q(x) :- R(x), S(x,y), T(y)", "top": 1},
        {"op": "batch", "queries": ["R(x), S(x,y)"]},
    ]))
    code = main(["serve", str(database), "--requests", str(requests),
                 "--exact"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("evaluate 'R(x), S(x,y), T(y)'") == 2
    assert "update R(1,) <- 0.9" in out
    assert "1 answers" in out
    assert "session: prepared" in out


def test_serve_cli_rejects_unknown_op(tmp_path, capsys):
    database = tmp_path / "db.json"
    database.write_text(json.dumps({"R": [[[1], 0.5]]}))
    requests = tmp_path / "requests.json"
    requests.write_text(json.dumps([{"op": "explode"}]))
    code = main(["serve", str(database), "--requests", str(requests)])
    assert code == 2
    assert "unknown op" in capsys.readouterr().err


@pytest.mark.parametrize("request_obj, fragment", [
    ({"op": "evaluate"}, "missing the 'query' field"),
    ({"op": "answers", "query": "Q(x) :- R(x)", "top": "3"},
     "top must be a non-negative integer"),
    ({"op": "answers", "query": "Q(x) :- R(x)", "top": -2},
     "top must be a non-negative integer"),
    ({"op": "batch", "queries": ["R(x)", 42]}, "query strings"),
    ({"op": "update", "relation": "R", "row": [1], "probability": "x"},
     "must be a number"),
    ({"op": "update", "relation": "R", "row": 1, "probability": 0.5},
     "array of scalars"),
])
def test_serve_cli_validates_request_fields(tmp_path, capsys, request_obj,
                                            fragment):
    database = tmp_path / "db.json"
    database.write_text(json.dumps({"R": [[[1], 0.5]]}))
    requests = tmp_path / "requests.json"
    requests.write_text(json.dumps([request_obj]))
    code = main(["serve", str(database), "--requests", str(requests)])
    assert code == 2
    err = capsys.readouterr().err
    assert "request 1" in err and fragment in err


def test_serve_cli_duplicate_rows_need_the_flag(tmp_path, capsys):
    database = tmp_path / "db.json"
    database.write_text('{"R": [[[1], 0.5], [[1], 0.7]]}')
    requests = tmp_path / "requests.json"
    requests.write_text(json.dumps([
        {"op": "evaluate", "query": "R(x)"},
    ]))
    assert main(["serve", str(database), "--requests", str(requests)]) == 2
    assert "duplicate row" in capsys.readouterr().err
    assert main(["serve", str(database), "--requests", str(requests),
                 "--allow-duplicates"]) == 0
    assert "p = 0.7" in capsys.readouterr().out


def test_stats_describe_mentions_the_counters():
    db = ProbabilisticDatabase.from_dict({"R": {(1,): 0.5}})
    session = QuerySession(db, exact_fallback=True)
    session.evaluate("R(x)")
    session.evaluate("R(x)")
    text = session.stats.describe()
    assert "cached" in text and "reweighted" in text


# ----------------------------------------------------------------------
# Malformed workload files must fail loudly (and name the culprit)
# ----------------------------------------------------------------------


def _write_serve_files(tmp_path, requests_text):
    database = tmp_path / "db.json"
    database.write_text(json.dumps({"R": [[[1], 0.5]]}))
    requests = tmp_path / "requests.json"
    requests.write_text(requests_text)
    return database, requests


def test_serve_cli_non_string_query_reports_the_request(tmp_path, capsys):
    # Used to escape as a TypeError traceback; must be a clean exit 2.
    database, requests = _write_serve_files(
        tmp_path, json.dumps([{"op": "evaluate", "query": 42}])
    )
    assert main(["serve", str(database), "--requests", str(requests)]) == 2
    err = capsys.readouterr().err
    assert "request 1" in err
    assert "query must be a string" in err
    assert '"query": 42' in err  # the offending request is echoed


def test_serve_cli_accepts_json_lines(tmp_path, capsys):
    database, requests = _write_serve_files(
        tmp_path,
        '{"op": "evaluate", "query": "R(x)"}\n'
        "\n"
        '{"op": "update", "relation": "R", "row": [1], "probability": 0.9}\n'
        '{"op": "evaluate", "query": "R(x)"}\n',
    )
    assert main(["serve", str(database), "--requests", str(requests)]) == 0
    out = capsys.readouterr().out
    assert "p = 0.5000000000" in out and "p = 0.9000000000" in out


def test_serve_cli_jsonl_error_names_the_line(tmp_path, capsys):
    database, requests = _write_serve_files(
        tmp_path,
        '{"op": "evaluate", "query": "R(x)"}\n'
        '{"op": "evaluate" "query"}\n',
    )
    assert main(["serve", str(database), "--requests", str(requests)]) == 2
    err = capsys.readouterr().err
    assert "line 2" in err
    assert 'offending line: {"op": "evaluate" "query"}' in err


def test_serve_cli_jsonl_bad_request_names_the_line(tmp_path, capsys):
    database, requests = _write_serve_files(
        tmp_path,
        '{"op": "evaluate", "query": "R(x)"}\n'
        '{"op": "evaluate", "query": "R(x,"}\n',
    )
    assert main(["serve", str(database), "--requests", str(requests)]) == 2
    assert "line 2" in capsys.readouterr().err


def test_serve_cli_empty_and_non_list_files(tmp_path, capsys):
    database, requests = _write_serve_files(tmp_path, "")
    assert main(["serve", str(database), "--requests", str(requests)]) == 2
    assert "empty request file" in capsys.readouterr().err
    requests.write_text('["R(x)"]')
    assert main(["serve", str(database), "--requests", str(requests)]) == 2
    assert '"op" key' in capsys.readouterr().err


def test_serve_cli_needs_requests_xor_listen(tmp_path, capsys):
    database = tmp_path / "db.json"
    database.write_text(json.dumps({"R": [[[1], 0.5]]}))
    assert main(["serve", str(database)]) == 2
    assert "exactly one of" in capsys.readouterr().err
    assert main(["serve", str(database), "--requests", "x.json",
                 "--listen", "8080"]) == 2
    assert "exactly one of" in capsys.readouterr().err


def test_serve_cli_listen_rejects_bad_address(tmp_path, capsys):
    database = tmp_path / "db.json"
    database.write_text(json.dumps({"R": [[[1], 0.5]]}))
    assert main(["serve", str(database), "--listen", "nope"]) == 2
    assert "[HOST:]PORT" in capsys.readouterr().err
    assert main(["serve", str(database), "--listen", "8080",
                 "--workers", "-2"]) == 2
    assert "--workers" in capsys.readouterr().err
