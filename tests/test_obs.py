"""The observability spine: registry, merge, quantiles, exposition.

Pins the properties the serving stack depends on:

* histogram merge is element-wise and therefore associative and
  commutative — worker snapshots can fold together in any order;
* quantile estimates are exact on distributions the bucket layout can
  represent, and saturate at the last finite bound on overflow;
* counters survive a multi-thread increment hammer without losing
  events;
* ``render_prometheus`` emits valid text exposition format 0.0.4
  (checked by a tiny line-level parser, and end-to-end through a
  live ``GET /metrics`` scrape).
"""

import math
import re
import threading
import urllib.request

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    merge_snapshots,
    quantile_from_buckets,
    render_prometheus,
)
from repro.obs.trace import NULL_TRACER, Tracer


# ----------------------------------------------------------------------
# Registry and metric basics
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_counts_and_rejects_negative(self):
        registry = MetricsRegistry()
        requests = registry.counter("t_total", "help", ("tier",))
        requests.labels("safe").inc()
        requests.labels("safe").inc(2)
        requests.labels("mc").inc()
        snap = registry.snapshot()
        assert snap["t_total"]["values"][("safe",)] == 3
        assert snap["t_total"]["values"][("mc",)] == 1
        with pytest.raises(ValueError):
            requests.labels("safe").inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t_level", "help")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert registry.snapshot()["t_level"]["values"][()] == 4.0

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("t_total", "help", ("tier",))
        second = registry.counter("t_total", "help", ("tier",))
        assert first is second

    def test_reregistration_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "help")
        with pytest.raises(ValueError, match="re-registered"):
            registry.gauge("t_total", "help")
        with pytest.raises(ValueError, match="re-registered"):
            registry.counter("t_total", "help", ("tier",))

    def test_label_arity_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", "help", ("a", "b"))
        with pytest.raises(ValueError, match="expects labels"):
            family.labels("only-one")

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("t_total", "help", ("tier",))
        counter.labels("safe").inc()
        counter.inc()
        histogram = registry.histogram("t_seconds", "help")
        histogram.observe(0.5)
        assert registry.snapshot() == {}
        assert NULL_REGISTRY.snapshot() == {}

    def test_counter_thread_hammer(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "help", ("tier",))
        histogram = registry.histogram("t_seconds", "help")
        child = counter.labels("safe")
        per_thread = 10_000

        def hammer():
            for _ in range(per_thread):
                child.inc()
                histogram.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap["t_total"]["values"][("safe",)] == 4 * per_thread
        assert snap["t_seconds"]["values"][()]["count"] == 4 * per_thread


# ----------------------------------------------------------------------
# Histograms: quantiles and merge algebra
# ----------------------------------------------------------------------


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_quantile_on_known_distribution(self):
        # One observation per bucket of (1, 2, 3, 4): the q-quantile
        # interpolates to exact bucket boundaries.
        histogram = Histogram((1.0, 2.0, 3.0, 4.0))
        for value in (0.5, 1.5, 2.5, 3.5):
            histogram.observe(value)
        assert histogram.quantile(0.25) == pytest.approx(1.0)
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        assert histogram.quantile(0.75) == pytest.approx(3.0)
        assert histogram.quantile(1.0) == pytest.approx(4.0)

    def test_quantile_interpolates_within_bucket(self):
        # 100 observations all landing in the single (0, 1] bucket:
        # the median interpolates to the bucket midpoint.
        histogram = Histogram((1.0,))
        for _ in range(100):
            histogram.observe(0.3)
        assert histogram.quantile(0.5) == pytest.approx(0.5)
        assert histogram.quantile(0.9) == pytest.approx(0.9)

    def test_quantile_uniform_distribution(self):
        # Uniform on (0, 10s] over the default buckets: estimates must
        # land within one bucket of the true quantile.
        histogram = Histogram(DEFAULT_LATENCY_BUCKETS)
        n = 10_000
        for i in range(n):
            histogram.observe(10.0 * (i + 1) / n)
        for q in (0.5, 0.95, 0.99):
            estimate = histogram.quantile(q)
            true = 10.0 * q
            # Bucket resolution: the estimate must fall in the same
            # bucket as the true quantile (bounds straddle it).
            assert estimate <= 10.0
            assert abs(estimate - true) <= 2.6  # widest bucket is 2.5s

    def test_quantile_overflow_saturates(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(50.0)
        histogram.observe(60.0)
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(0.99) == 2.0

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram((1.0,)).quantile(0.5))
        with pytest.raises(ValueError):
            Histogram((1.0,)).quantile(1.5)

    def test_quantile_from_buckets_matches_live(self):
        histogram = Histogram((0.001, 0.01, 0.1, 1.0))
        for value in (0.0005, 0.005, 0.005, 0.05, 0.5, 2.0):
            histogram.observe(value)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert quantile_from_buckets(
                histogram.counts, histogram.bounds, q
            ) == pytest.approx(histogram.quantile(q), nan_ok=True)


def _make_snapshot(seed_values):
    registry = MetricsRegistry()
    counter = registry.counter("m_total", "help", ("tier",))
    histogram = registry.histogram(
        "m_seconds", "help", ("stage",), buckets=(0.001, 0.01, 0.1, 1.0)
    )
    gauge = registry.gauge("m_level", "help")
    for tier, value in seed_values:
        counter.labels(tier).inc()
        histogram.labels("stage-" + tier).observe(value)
        gauge.inc(value)
    return registry.snapshot()


class TestMerge:
    def test_merge_is_order_independent(self):
        a = _make_snapshot([("safe", 0.0005), ("mc", 0.5), ("mc", 0.05)])
        b = _make_snapshot([("safe", 0.002), ("safe", 0.9)])
        c = _make_snapshot([("lifted", 0.008), ("mc", 5.0)])
        orderings = [
            merge_snapshots(a, b, c),
            merge_snapshots(c, b, a),
            merge_snapshots(b, a, c),
            merge_snapshots(a, merge_snapshots(b, c)),
            merge_snapshots(merge_snapshots(a, b), c),
        ]
        for other in orderings[1:]:
            assert other == orderings[0]

    def test_merge_sums_counters_and_buckets(self):
        a = _make_snapshot([("safe", 0.0005)])
        b = _make_snapshot([("safe", 0.0005), ("safe", 0.5)])
        merged = merge_snapshots(a, b)
        assert merged["m_total"]["values"][("safe",)] == 3
        hist = merged["m_seconds"]["values"][("stage-safe",)]
        assert hist["count"] == 3
        assert sum(hist["counts"]) == 3
        assert hist["sum"] == pytest.approx(0.501)

    def test_merge_rejects_mismatched_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("m_seconds", "help", buckets=(1.0, 2.0))
        other = MetricsRegistry()
        other.histogram("m_seconds", "help", buckets=(5.0,))
        with pytest.raises(ValueError, match="mismatched"):
            merge_snapshots(registry.snapshot(), other.snapshot())

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots() == {}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_LABEL = r"[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                 # metric name
    r"(\{" + _LABEL + r"(," + _LABEL + r")*\})?"  # optional labels
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN|[+-]Inf)$"  # value
)


def assert_valid_prometheus(text):
    """A tiny exposition-format validator: every line is a comment or
    a well-formed sample; histogram buckets are cumulative and end at
    the ``+Inf`` bucket == ``_count``."""
    assert text.endswith("\n")
    buckets = {}  # series key -> list of cumulative counts
    counts = {}
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        name_part, _, value = line.rpartition(" ")
        if "_bucket{" in name_part:
            series = re.sub(r'(,?le="[^"]*")', "", name_part)
            series = series.replace("{}", "")
            buckets.setdefault(series, []).append(float(value))
        elif name_part.split("{")[0].endswith("_count"):
            counts[name_part.replace("_count", "_bucket", 1)] = float(value)
    for series, cumulative in buckets.items():
        assert cumulative == sorted(cumulative), (
            f"non-cumulative buckets in {series}"
        )
        assert series in counts
        assert cumulative[-1] == counts[series]


class TestRender:
    def test_render_is_valid_exposition(self):
        snap = _make_snapshot([("safe", 0.0005), ("mc", 0.5)])
        text = render_prometheus(snap)
        assert_valid_prometheus(text)
        assert '# TYPE m_total counter' in text
        assert '# TYPE m_seconds histogram' in text
        assert 'm_total{tier="safe"} 1' in text
        assert 'm_seconds_bucket{stage="stage-mc",le="+Inf"} 1' in text
        assert 'm_seconds_count{stage="stage-mc"} 1' in text

    def test_render_escapes_labels(self):
        registry = MetricsRegistry()
        registry.counter("m_total", "help", ("why",)).labels(
            'a "quoted\\path"\nnewline'
        ).inc()
        text = render_prometheus(registry.snapshot())
        assert r'why="a \"quoted\\path\"\nnewline"' in text
        assert_valid_prometheus(text)

    def test_render_empty_snapshot(self):
        assert render_prometheus({}) == ""

    def test_merged_render_round_trip(self):
        a = _make_snapshot([("safe", 0.0005)])
        b = _make_snapshot([("safe", 0.02), ("mc", 0.5)])
        text = render_prometheus(merge_snapshots(a, b))
        assert_valid_prometheus(text)
        assert 'm_total{tier="safe"} 2' in text


# ----------------------------------------------------------------------
# Tracing spans
# ----------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_is_noop(self):
        with NULL_TRACER.span("anything", key="value") as span:
            span.annotate(more="attrs")
        assert NULL_TRACER.export() == []

    def test_span_nesting(self):
        tracer = Tracer(enabled=True)
        with tracer.span("request", shape="R(v0)"):
            with tracer.span("ground"):
                pass
            with tracer.span("compile") as span:
                span.annotate(nodes=17)
        (root,) = tracer.export()
        assert root["name"] == "request"
        assert root["attributes"] == {"shape": "R(v0)"}
        assert [child["name"] for child in root["children"]] == [
            "ground", "compile",
        ]
        assert root["children"][1]["attributes"] == {"nodes": 17}
        assert root["seconds"] >= root["children"][0]["seconds"]

    def test_roots_are_bounded(self):
        tracer = Tracer(enabled=True, max_roots=4)
        for index in range(10):
            with tracer.span(f"span-{index}"):
                pass
        exported = tracer.export()
        assert [span["name"] for span in exported] == [
            "span-6", "span-7", "span-8", "span-9",
        ]
        tracer.clear()
        assert tracer.export() == []

    def test_separate_threads_do_not_nest(self):
        tracer = Tracer(enabled=True)
        done = threading.Event()

        def other_thread():
            with tracer.span("other"):
                pass
            done.set()

        with tracer.span("main"):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert done.is_set()
        names = {span["name"] for span in tracer.export()}
        assert names == {"main", "other"}
        for span in tracer.export():
            assert "children" not in span


# ----------------------------------------------------------------------
# End-to-end: instrumented session, pool merge, live /metrics scrape
# ----------------------------------------------------------------------


def _make_db():
    from repro.db.database import ProbabilisticDatabase

    return ProbabilisticDatabase.from_dict({
        "R": {(1,): 0.5, (2,): 0.3},
        "S": {(1, 2): 0.4, (2, 2): 0.8},
        "T": {(2,): 0.7},
    })


class TestInstrumentation:
    def test_session_shares_registry_with_router(self):
        from repro.serve.session import QuerySession

        from repro.core.parser import parse

        session = QuerySession(_make_db())
        assert session.metrics is session.router.metrics
        session.evaluate("R(x), S(x,y)")       # safe tier
        session.evaluate("R(x), S(x,y), T(y)")  # unsafe tier
        # A direct router call lands in the same shared registry.
        session.router.probability(parse("R(x), S(x,y)"), session.db)
        snap = session.metrics.snapshot()
        decisions = snap["repro_router_decisions_total"]["values"]
        assert sum(decisions.values()) >= 1
        stages = snap["repro_session_stage_seconds"]["values"]
        assert ("prepare",) in stages
        results = snap["repro_session_results_total"]["values"]
        assert results[("safe",)] == 1
        text = render_prometheus(snap)
        assert_valid_prometheus(text)

    def test_session_rejects_router_plus_metrics(self):
        from repro.engines.router import RouterEngine
        from repro.serve.session import QuerySession

        with pytest.raises(ValueError, match="pre-built router"):
            QuerySession(
                _make_db(), RouterEngine(), metrics=MetricsRegistry()
            )

    def test_slow_query_log(self):
        from repro.serve.session import QuerySession

        session = QuerySession(_make_db(), slow_query_threshold=0.0)
        session.evaluate("R(x), S(x,y)")
        assert len(session.slow_queries) == 1
        entry = session.slow_queries[0]
        assert entry["kind"] == "evaluate"
        assert entry["seconds"] > 0.0
        snap = session.metrics.snapshot()
        assert snap["repro_session_slow_queries_total"]["values"][()] == 1

    def test_inline_pool_snapshot_merges_front_and_session(self):
        from repro.serve.pool import ServerPool

        with ServerPool(_make_db(), workers=0) as pool:
            pool.evaluate("R(x), S(x,y)")
            pool.answers("Q(x) :- R(x), S(x,y)")
            snap = pool.metrics_snapshot()
        assert snap["repro_pool_requests_total"]["values"][("evaluate",)] == 1
        assert snap["repro_pool_requests_total"]["values"][("answers",)] == 1
        # Front and session metrics land in one snapshot.
        assert "repro_session_stage_seconds" in snap
        assert snap["repro_pool_inflight_requests"]["values"][()] == 0.0
        assert_valid_prometheus(render_prometheus(snap))

    def test_pool_disabled_metrics(self):
        from repro.serve.pool import ServerPool, SessionConfig

        config = SessionConfig(metrics_enabled=False)
        with ServerPool(_make_db(), workers=0, config=config) as pool:
            pool.evaluate("R(x), S(x,y)")
            assert pool.metrics_snapshot() == {}

    def test_http_metrics_scrape(self):
        from repro.serve.pool import ServerPool
        from repro.serve.server import BackgroundServer

        lines = []
        with BackgroundServer(
            ServerPool(_make_db(), workers=0), access_log=lines.append
        ) as server:
            import json

            for _ in range(2):
                urllib.request.urlopen(urllib.request.Request(
                    server.url + "/evaluate",
                    data=json.dumps({"query": "R(x), S(x,y)"}).encode(),
                    method="POST",
                ), timeout=60).read()
            reply = urllib.request.urlopen(
                server.url + "/metrics", timeout=60
            )
            content_type = reply.headers["Content-Type"]
            text = reply.read().decode("utf-8")
        assert content_type.startswith("text/plain")
        assert_valid_prometheus(text)
        assert 'repro_http_requests_total{method="POST",path="/evaluate",status="200"} 2' in text
        assert "repro_http_request_seconds_bucket" in text
        assert "repro_router_decisions_total" in text
        assert "repro_session_stage_seconds_bucket" in text
        # One access-log line per completed request (the scrape itself
        # included).
        assert lines[0].startswith("POST /evaluate 200 ")
        assert lines[1].startswith("POST /evaluate 200 ")
        assert lines[2].startswith("GET /metrics 200 ")
        assert all(line.endswith("ms") for line in lines)
